//! Facade crate re-exporting the DLB workspace.
#![forbid(unsafe_code)]
pub use dlb_analyze as analyze;
pub use dlb_apps as apps;
pub use dlb_baselines as baselines;
pub use dlb_compiler as compiler;
pub use dlb_core as core;
pub use dlb_sim as sim;
