//! Seeded-loop property tests for the network model and kernel messaging
//! invariants. (Formerly proptest; rewritten as deterministic PCG-driven
//! loops so the suite runs with zero external dependencies.)

use dlb_sim::{ActorId, CpuWork, NetConfig, NodeConfig, Pcg32, SimBuilder, SimDuration};

const CASES: usize = 16;

/// Per-(src,dst) FIFO holds for arbitrary message sizes, even when small
/// messages could physically overtake large ones.
#[test]
fn fifo_with_mixed_sizes() {
    let mut rng = Pcg32::new(0x51f0);
    for _ in 0..CASES {
        let n_msgs = rng.gen_index(1, 20);
        let sizes: Vec<u64> = (0..n_msgs).map(|_| rng.gen_range(1, 100_000)).collect();
        let n = sizes.len() as u64;
        let mut b = SimBuilder::<u64>::new().net(NetConfig {
            latency: SimDuration::from_micros(50),
            bandwidth: 1_000_000,
            send_cpu_per_msg: CpuWork::ZERO,
            send_cpu_per_byte_ns: 0,
            recv_cpu_per_msg: CpuWork::ZERO,
        });
        let n0 = b.add_node(NodeConfig::default());
        let n1 = b.add_node(NodeConfig::default());
        let dst = ActorId(1);
        b.spawn(n0, "src", move |ctx| {
            for (i, sz) in sizes.iter().enumerate() {
                ctx.send(dst, i as u64, *sz);
            }
        });
        b.spawn(n1, "dst", move |ctx| {
            for i in 0..n {
                let env = ctx.recv();
                assert_eq!(env.msg, i, "message overtook an earlier one");
            }
        });
        b.run();
    }
}

/// Transfer time is monotone in bytes and inversely monotone in bandwidth.
#[test]
fn transfer_time_monotone() {
    let mut rng = Pcg32::new(0x51f1);
    for _ in 0..256 {
        let bytes = rng.gen_range(0, 10_000_000);
        let extra = rng.gen_range(0, 10_000_000);
        let bw = rng.gen_range(1_000, 1_000_000_000);
        let slow = NetConfig {
            bandwidth: bw,
            ..NetConfig::default()
        };
        let fast = NetConfig {
            bandwidth: bw * 2,
            ..NetConfig::default()
        };
        assert!(slow.transfer_time(bytes + extra) >= slow.transfer_time(bytes));
        assert!(fast.transfer_time(bytes) <= slow.transfer_time(bytes));
    }
}

/// Messages between many pairs are all delivered exactly once
/// (conservation), regardless of topology and sizes.
#[test]
fn message_conservation() {
    let mut rng = Pcg32::new(0x51f2);
    for _ in 0..CASES {
        let n_actors = rng.gen_index(2, 6);
        let n_msgs = rng.gen_index(1, 30);
        let seed = rng.gen_range(0, 1000);
        let mut b = SimBuilder::<u32>::new();
        let nodes: Vec<_> = (0..n_actors)
            .map(|_| b.add_node(NodeConfig::default()))
            .collect();
        // Everyone sends a deterministic pseudo-random set of messages to
        // the next actor in the ring, then receives what its predecessor
        // sent.
        for (i, node) in nodes.into_iter().enumerate() {
            let next = ActorId((i + 1) % n_actors);
            b.spawn(node, format!("a{i}"), move |ctx| {
                let mine = (seed as usize + i) % n_msgs + 1;
                let preds = (seed as usize + (i + n_actors - 1) % n_actors) % n_msgs + 1;
                for k in 0..mine {
                    ctx.send(next, k as u32, 64);
                }
                for _ in 0..preds {
                    ctx.recv();
                }
            });
        }
        let report = b.run();
        let sent: u64 = report.actors.iter().map(|a| a.msgs_sent).sum();
        let recv: u64 = report.actors.iter().map(|a| a.msgs_received).sum();
        assert_eq!(sent, recv);
    }
}
