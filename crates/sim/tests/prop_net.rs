//! Property tests for the network model and kernel messaging invariants.

use dlb_sim::{ActorId, CpuWork, NetConfig, NodeConfig, SimBuilder, SimDuration};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Per-(src,dst) FIFO holds for arbitrary message sizes, even when
    /// small messages could physically overtake large ones.
    #[test]
    fn fifo_with_mixed_sizes(sizes in proptest::collection::vec(1u64..100_000, 1..20)) {
        let n = sizes.len() as u64;
        let mut b = SimBuilder::<u64>::new().net(NetConfig {
            latency: SimDuration::from_micros(50),
            bandwidth: 1_000_000,
            send_cpu_per_msg: CpuWork::ZERO,
            send_cpu_per_byte_ns: 0,
            recv_cpu_per_msg: CpuWork::ZERO,
        });
        let n0 = b.add_node(NodeConfig::default());
        let n1 = b.add_node(NodeConfig::default());
        let dst = ActorId(1);
        let sizes2 = sizes.clone();
        b.spawn(n0, "src", move |ctx| {
            for (i, sz) in sizes2.iter().enumerate() {
                ctx.send(dst, i as u64, *sz);
            }
        });
        b.spawn(n1, "dst", move |ctx| {
            for i in 0..n {
                let env = ctx.recv();
                assert_eq!(env.msg, i, "message overtook an earlier one");
            }
        });
        b.run();
    }

    /// Transfer time is monotone in bytes and inversely monotone in
    /// bandwidth.
    #[test]
    fn transfer_time_monotone(
        bytes in 0u64..10_000_000,
        extra in 0u64..10_000_000,
        bw in 1_000u64..1_000_000_000,
    ) {
        let slow = NetConfig { bandwidth: bw, ..NetConfig::default() };
        let fast = NetConfig { bandwidth: bw * 2, ..NetConfig::default() };
        prop_assert!(slow.transfer_time(bytes + extra) >= slow.transfer_time(bytes));
        prop_assert!(fast.transfer_time(bytes) <= slow.transfer_time(bytes));
    }

    /// Messages between many pairs are all delivered exactly once
    /// (conservation), regardless of topology and sizes.
    #[test]
    fn message_conservation(
        n_actors in 2usize..6,
        n_msgs in 1usize..30,
        seed in 0u64..1000,
    ) {
        let mut b = SimBuilder::<u32>::new();
        let nodes: Vec<_> = (0..n_actors).map(|_| b.add_node(NodeConfig::default())).collect();
        // Everyone sends a deterministic pseudo-random set of messages to
        // the next actor in the ring, then receives what its predecessor
        // sent.
        for (i, node) in nodes.into_iter().enumerate() {
            let next = ActorId((i + 1) % n_actors);
            b.spawn(node, format!("a{i}"), move |ctx| {
                let mine = (seed as usize + i) % n_msgs + 1;
                let preds = (seed as usize + (i + n_actors - 1) % n_actors) % n_msgs + 1;
                for k in 0..mine {
                    ctx.send(next, k as u32, 64);
                }
                for _ in 0..preds {
                    ctx.recv();
                }
            });
        }
        let report = b.run();
        let sent: u64 = report.actors.iter().map(|a| a.msgs_sent).sum();
        let recv: u64 = report.actors.iter().map(|a| a.msgs_received).sum();
        prop_assert_eq!(sent, recv);
    }
}
