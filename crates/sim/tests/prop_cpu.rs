//! Property tests for the quantum-scheduler CPU model and load models.

use dlb_sim::cpu::{advance, NodeConfig};
use dlb_sim::{CpuWork, LoadModel, SimDuration, SimTime};
use proptest::prelude::*;

fn arb_load() -> impl Strategy<Value = LoadModel> {
    prop_oneof![
        Just(LoadModel::Dedicated),
        (0u32..4).prop_map(LoadModel::Constant),
        (1u64..30, 1u32..4).prop_flat_map(|(period_s, tasks)| {
            (0..=period_s).prop_map(move |duty_s| LoadModel::Oscillating {
                period: SimDuration::from_secs(period_s),
                duty: SimDuration::from_secs(duty_s),
                tasks,
            })
        }),
        proptest::collection::vec((0u64..60_000_000, 0u32..4), 0..6).prop_map(|mut v| {
            v.sort_by_key(|&(t, _)| t);
            LoadModel::Trace(v.into_iter().map(|(t, k)| (SimTime(t), k)).collect())
        }),
    ]
}

fn node(load: LoadModel, quantum_us: u64) -> NodeConfig {
    NodeConfig {
        speed: 1.0,
        quantum: SimDuration::from_micros(quantum_us),
        load,
    }
}

proptest! {
    /// Splitting a computation into two back-to-back advances finishes at
    /// exactly the same instant as one combined advance, with the same
    /// loaded-CPU accounting.
    #[test]
    fn advance_composes(
        load in arb_load(),
        quantum_us in 1_000u64..500_000,
        start in 0u64..10_000_000,
        total_us in 1u64..5_000_000,
        split_frac in 0.0f64..1.0,
    ) {
        let cfg = node(load, quantum_us);
        let start = SimTime(start);
        let split = ((total_us as f64 * split_frac) as u64).min(total_us);
        let whole = advance(&cfg, start, CpuWork::from_micros(total_us));
        let a = advance(&cfg, start, CpuWork::from_micros(split));
        let b = advance(&cfg, a.finish, CpuWork::from_micros(total_us - split));
        prop_assert_eq!(b.finish, whole.finish);
        prop_assert_eq!(a.cpu_while_loaded + b.cpu_while_loaded, whole.cpu_while_loaded);
    }

    /// More work never finishes earlier, and nonzero work takes nonzero time.
    #[test]
    fn advance_monotone(
        load in arb_load(),
        quantum_us in 1_000u64..500_000,
        start in 0u64..10_000_000,
        w1 in 1u64..3_000_000,
        extra in 0u64..3_000_000,
    ) {
        let cfg = node(load, quantum_us);
        let start = SimTime(start);
        let a = advance(&cfg, start, CpuWork::from_micros(w1));
        let b = advance(&cfg, start, CpuWork::from_micros(w1 + extra));
        prop_assert!(a.finish > start);
        prop_assert!(b.finish >= a.finish);
    }

    /// Elapsed time is at least the dedicated time and at most
    /// (max_tasks + 1) × dedicated + one full scheduling cycle of slack.
    #[test]
    fn advance_bounded_by_sharing(
        k in 0u32..4,
        quantum_us in 1_000u64..500_000,
        start in 0u64..10_000_000,
        work_us in 1u64..5_000_000,
    ) {
        let cfg = node(LoadModel::Constant(k), quantum_us);
        let start = SimTime(start);
        let a = advance(&cfg, start, CpuWork::from_micros(work_us));
        let elapsed = (a.finish - start).micros();
        prop_assert!(elapsed >= work_us);
        let cycle = (k as u64 + 1) * quantum_us;
        let upper = work_us.div_ceil(quantum_us).max(1) * cycle + cycle;
        prop_assert!(elapsed <= upper, "elapsed {} > upper {}", elapsed, upper);
    }

    /// Loaded-CPU accounting never exceeds the work done nor the loaded time.
    #[test]
    fn loaded_cpu_bounded(
        load in arb_load(),
        quantum_us in 1_000u64..500_000,
        start in 0u64..10_000_000,
        work_us in 1u64..5_000_000,
    ) {
        let cfg = node(load.clone(), quantum_us);
        let start = SimTime(start);
        let a = advance(&cfg, start, CpuWork::from_micros(work_us));
        prop_assert!(a.cpu_while_loaded.micros() <= work_us);
        let loaded = load.loaded_integral(start, a.finish);
        prop_assert!(a.cpu_while_loaded <= loaded);
    }

    /// The loaded-time integral is additive over adjacent intervals and
    /// bounded by the interval length.
    #[test]
    fn loaded_integral_additive(
        load in arb_load(),
        a in 0u64..50_000_000,
        d1 in 0u64..20_000_000,
        d2 in 0u64..20_000_000,
    ) {
        let t0 = SimTime(a);
        let t1 = SimTime(a + d1);
        let t2 = SimTime(a + d1 + d2);
        let whole = load.loaded_integral(t0, t2);
        let parts = load.loaded_integral(t0, t1) + load.loaded_integral(t1, t2);
        prop_assert_eq!(whole, parts);
        prop_assert!(whole.micros() <= d1 + d2);
    }

    /// tasks_at agrees with next_change: k is constant on [t, next_change).
    #[test]
    fn next_change_consistent(
        load in arb_load(),
        t in 0u64..50_000_000,
        probe_frac in 0.0f64..1.0,
    ) {
        let t = SimTime(t);
        let k = load.tasks_at(t);
        if let Some(c) = load.next_change(t) {
            prop_assert!(c > t);
            prop_assert_ne!(load.tasks_at(c), k);
            let span = c.micros() - t.micros();
            let probe = SimTime(t.micros() + ((span - 1) as f64 * probe_frac) as u64);
            prop_assert_eq!(load.tasks_at(probe), k);
        }
    }

    /// On a dedicated node, elapsed equals dedicated work regardless of
    /// quantum or start time.
    #[test]
    fn dedicated_identity(
        quantum_us in 1_000u64..500_000,
        start in 0u64..10_000_000,
        work_us in 0u64..5_000_000,
    ) {
        let cfg = node(LoadModel::Dedicated, quantum_us);
        let a = advance(&cfg, SimTime(start), CpuWork::from_micros(work_us));
        prop_assert_eq!(a.finish, SimTime(start + work_us));
        prop_assert_eq!(a.cpu_while_loaded, SimDuration::ZERO);
    }
}
