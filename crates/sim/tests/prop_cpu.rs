//! Seeded-loop property tests for the quantum-scheduler CPU model and load
//! models. (Formerly proptest; rewritten as deterministic PCG-driven loops
//! so the suite runs with zero external dependencies.)

#![allow(clippy::unusual_byte_groupings)] // seeds are mnemonic hex words

use dlb_sim::cpu::{advance, NodeConfig};
use dlb_sim::{CpuWork, LoadModel, Pcg32, SimDuration, SimTime};

const CASES: usize = 256;

fn arb_load(rng: &mut Pcg32) -> LoadModel {
    match rng.gen_index(0, 4) {
        0 => LoadModel::Dedicated,
        1 => LoadModel::Constant(rng.gen_range(0, 4) as u32),
        2 => {
            let period_s = rng.gen_range(1, 30);
            let tasks = rng.gen_range(1, 4) as u32;
            let duty_s = rng.gen_range(0, period_s + 1);
            LoadModel::Oscillating {
                period: SimDuration::from_secs(period_s),
                duty: SimDuration::from_secs(duty_s),
                tasks,
            }
        }
        _ => {
            let n = rng.gen_index(0, 6);
            let mut v: Vec<(u64, u32)> = (0..n)
                .map(|_| (rng.gen_range(0, 60_000_000), rng.gen_range(0, 4) as u32))
                .collect();
            v.sort_by_key(|&(t, _)| t);
            LoadModel::Trace(v.into_iter().map(|(t, k)| (SimTime(t), k)).collect())
        }
    }
}

fn node(load: LoadModel, quantum_us: u64) -> NodeConfig {
    NodeConfig {
        speed: 1.0,
        quantum: SimDuration::from_micros(quantum_us),
        load,
    }
}

/// Splitting a computation into two back-to-back advances finishes at
/// exactly the same instant as one combined advance, with the same
/// loaded-CPU accounting.
#[test]
fn advance_composes() {
    let mut rng = Pcg32::new(0xc0de_0);
    for _ in 0..CASES {
        let load = arb_load(&mut rng);
        let quantum_us = rng.gen_range(1_000, 500_000);
        let start = SimTime(rng.gen_range(0, 10_000_000));
        let total_us = rng.gen_range(1, 5_000_000);
        let split_frac = rng.next_f64();
        let cfg = node(load, quantum_us);
        let split = ((total_us as f64 * split_frac) as u64).min(total_us);
        let whole = advance(&cfg, start, CpuWork::from_micros(total_us));
        let a = advance(&cfg, start, CpuWork::from_micros(split));
        let b = advance(&cfg, a.finish, CpuWork::from_micros(total_us - split));
        assert_eq!(b.finish, whole.finish);
        assert_eq!(
            a.cpu_while_loaded + b.cpu_while_loaded,
            whole.cpu_while_loaded
        );
    }
}

/// More work never finishes earlier, and nonzero work takes nonzero time.
#[test]
fn advance_monotone() {
    let mut rng = Pcg32::new(0xc0de_1);
    for _ in 0..CASES {
        let load = arb_load(&mut rng);
        let quantum_us = rng.gen_range(1_000, 500_000);
        let start = SimTime(rng.gen_range(0, 10_000_000));
        let w1 = rng.gen_range(1, 3_000_000);
        let extra = rng.gen_range(0, 3_000_000);
        let cfg = node(load, quantum_us);
        let a = advance(&cfg, start, CpuWork::from_micros(w1));
        let b = advance(&cfg, start, CpuWork::from_micros(w1 + extra));
        assert!(a.finish > start);
        assert!(b.finish >= a.finish);
    }
}

/// Elapsed time is at least the dedicated time and at most
/// (max_tasks + 1) × dedicated + one full scheduling cycle of slack.
#[test]
fn advance_bounded_by_sharing() {
    let mut rng = Pcg32::new(0xc0de_2);
    for _ in 0..CASES {
        let k = rng.gen_range(0, 4) as u32;
        let quantum_us = rng.gen_range(1_000, 500_000);
        let start = SimTime(rng.gen_range(0, 10_000_000));
        let work_us = rng.gen_range(1, 5_000_000);
        let cfg = node(LoadModel::Constant(k), quantum_us);
        let a = advance(&cfg, start, CpuWork::from_micros(work_us));
        let elapsed = (a.finish - start).micros();
        assert!(elapsed >= work_us);
        let cycle = (k as u64 + 1) * quantum_us;
        let upper = work_us.div_ceil(quantum_us).max(1) * cycle + cycle;
        assert!(elapsed <= upper, "elapsed {elapsed} > upper {upper}");
    }
}

/// Loaded-CPU accounting never exceeds the work done nor the loaded time.
#[test]
fn loaded_cpu_bounded() {
    let mut rng = Pcg32::new(0xc0de_3);
    for _ in 0..CASES {
        let load = arb_load(&mut rng);
        let quantum_us = rng.gen_range(1_000, 500_000);
        let start = SimTime(rng.gen_range(0, 10_000_000));
        let work_us = rng.gen_range(1, 5_000_000);
        let cfg = node(load.clone(), quantum_us);
        let a = advance(&cfg, start, CpuWork::from_micros(work_us));
        assert!(a.cpu_while_loaded.micros() <= work_us);
        let loaded = load.loaded_integral(start, a.finish);
        assert!(a.cpu_while_loaded <= loaded);
    }
}

/// The loaded-time integral is additive over adjacent intervals and bounded
/// by the interval length.
#[test]
fn loaded_integral_additive() {
    let mut rng = Pcg32::new(0xc0de_4);
    for _ in 0..CASES {
        let load = arb_load(&mut rng);
        let a = rng.gen_range(0, 50_000_000);
        let d1 = rng.gen_range(0, 20_000_000);
        let d2 = rng.gen_range(0, 20_000_000);
        let t0 = SimTime(a);
        let t1 = SimTime(a + d1);
        let t2 = SimTime(a + d1 + d2);
        let whole = load.loaded_integral(t0, t2);
        let parts = load.loaded_integral(t0, t1) + load.loaded_integral(t1, t2);
        assert_eq!(whole, parts);
        assert!(whole.micros() <= d1 + d2);
    }
}

/// tasks_at agrees with next_change: k is constant on [t, next_change).
#[test]
fn next_change_consistent() {
    let mut rng = Pcg32::new(0xc0de_5);
    for _ in 0..CASES {
        let load = arb_load(&mut rng);
        let t = SimTime(rng.gen_range(0, 50_000_000));
        let probe_frac = rng.next_f64();
        let k = load.tasks_at(t);
        if let Some(c) = load.next_change(t) {
            assert!(c > t);
            assert_ne!(load.tasks_at(c), k);
            let span = c.micros() - t.micros();
            let probe = SimTime(t.micros() + ((span - 1) as f64 * probe_frac) as u64);
            assert_eq!(load.tasks_at(probe), k);
        }
    }
}

/// On a dedicated node, elapsed equals dedicated work regardless of quantum
/// or start time.
#[test]
fn dedicated_identity() {
    let mut rng = Pcg32::new(0xc0de_6);
    for _ in 0..CASES {
        let quantum_us = rng.gen_range(1_000, 500_000);
        let start = rng.gen_range(0, 10_000_000);
        let work_us = rng.gen_range(0, 5_000_000);
        let cfg = node(LoadModel::Dedicated, quantum_us);
        let a = advance(&cfg, SimTime(start), CpuWork::from_micros(work_us));
        assert_eq!(a.finish, SimTime(start + work_us));
        assert_eq!(a.cpu_while_loaded, SimDuration::ZERO);
    }
}
