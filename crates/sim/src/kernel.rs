//! Deterministic discrete-event kernel.
//!
//! Actors are ordinary blocking Rust closures, each run on its own OS
//! thread, but the kernel only ever lets **one** actor run at a time and
//! hands control back and forth explicitly, so a simulation is a
//! deterministic sequential program: same inputs ⇒ same event order ⇒ same
//! results, regardless of host scheduling.
//!
//! An actor interacts with virtual time through its [`ActorCtx`]:
//! [`ActorCtx::advance_work`] charges CPU work to the node's quantum
//! scheduler, [`ActorCtx::send`]/[`ActorCtx::recv`] exchange messages over
//! the simulated network, and [`ActorCtx::sleep`] waits for virtual time to
//! pass. All blocking calls *yield* to the kernel, which advances the
//! virtual clock to the next event.
//!
//! A [`crate::fault::FaultPlan`] attached via [`SimBuilder::fault_plan`]
//! injects message drops/duplicates/jitter and node crashes/freezes at
//! deterministic points in the event order; [`SimReport::trace_hash`] folds
//! every processed event into a hash so two runs can be compared for
//! trace equality.

use crate::cpu::{self, NodeConfig};
use crate::fault::{FaultPlan, FaultRuntime, FaultStats};
use crate::net::{Envelope, NetConfig};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceKind};
use crate::work::CpuWork;
use std::cell::Cell;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard, Once};

/// Identifies an actor within a simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActorId(pub usize);

/// Identifies a node (one CPU + its load model) within a simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// Per-actor message counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ActorMetrics {
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_received: u64,
    pub bytes_received: u64,
}

/// Per-node CPU accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeMetrics {
    /// Local CPU time consumed by the application actor (dedicated micros).
    pub app_cpu: SimDuration,
    /// Portion of `app_cpu` consumed while competing tasks were runnable.
    pub app_cpu_while_loaded: SimDuration,
}

/// Everything measured during a run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Virtual time at which the last live actor finished.
    pub end_time: SimTime,
    pub actors: Vec<ActorMetrics>,
    pub nodes: Vec<NodeMetrics>,
    pub node_configs: Vec<NodeConfig>,
    pub events_processed: u64,
    /// What the fault layer did (all zeros when no plan was attached).
    pub fault: FaultStats,
    /// FNV-1a fold over every processed event `(time, kind, actors, bytes)`.
    /// Two runs with identical inputs (and identical fault plan + seed)
    /// produce identical hashes.
    pub trace_hash: u64,
    /// The recorded event trace ([`crate::trace`] format), empty unless
    /// [`SimBuilder::record_trace`] was enabled.
    pub trace: Vec<TraceEvent>,
}

impl SimReport {
    /// CPU time consumed by competing tasks on `node` over the whole run —
    /// the simulation's `getrusage` analog. Competing tasks are always
    /// hungry, so they consume every cycle the application does not use
    /// while the node is loaded.
    pub fn competing_cpu(&self, node: NodeId) -> SimDuration {
        let cfg = &self.node_configs[node.0];
        let loaded = cfg.load.loaded_integral(SimTime::ZERO, self.end_time);
        loaded.saturating_sub(self.nodes[node.0].app_cpu_while_loaded)
    }

    /// Available CPU time on `node` per the paper's efficiency formula:
    /// elapsed time minus CPU time spent on competing tasks.
    pub fn available_cpu(&self, node: NodeId) -> SimDuration {
        (self.end_time - SimTime::ZERO).saturating_sub(self.competing_cpu(node))
    }
}

enum EventKind<M> {
    Wake { actor: ActorId, epoch: u64 },
    Deliver { dst: ActorId, env: Envelope<M> },
    Crash { node: NodeId },
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ActorState {
    /// Parked, waiting for a Wake with the matching epoch.
    Waiting {
        epoch: u64,
        wake_on_msg: bool,
    },
    /// Currently holding the execution token.
    Running,
    Done,
    Panicked,
    /// The node fail-stopped; the actor never runs again.
    Crashed,
}

// ---------------------------------------------------------------------------
// Quiet shutdown unwind: when the kernel tears down (simulation finished or
// a crash fault orphaned a parked actor), still-parked actor threads see
// their control channel close. They must exit their blocking closure, and
// unwinding is the only way out of arbitrary user code — but that unwind is
// expected, not an error. A thread-local flag plus a sentinel payload keeps
// it silent and stops it from masking real panics at join time.
// ---------------------------------------------------------------------------

thread_local! {
    static SHUTDOWN_UNWIND: Cell<bool> = const { Cell::new(false) };
}

struct ShutdownUnwind;

fn shutdown_unwind() -> ! {
    SHUTDOWN_UNWIND.with(|c| c.set(true));
    std::panic::panic_any(ShutdownUnwind)
}

fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SHUTDOWN_UNWIND.with(|c| c.get()) {
                return; // expected teardown unwind; stay quiet
            }
            prev(info);
        }));
    });
}

/// Message tagger for traced sends/deliveries: maps a message to the
/// stable tag rendered after the fixed `EV` fields (None = untagged).
type TagFn<M> = Box<dyn Fn(&M) -> Option<String> + Send>;

/// Event narration: echo to stderr (`DLB_TRACE_EVENTS`), record into the
/// report ([`SimBuilder::record_trace`]), or both. Inactive = zero cost.
struct Tracer<M> {
    tag: Option<TagFn<M>>,
    echo: bool,
    record: bool,
    events: Vec<TraceEvent>,
}

impl<M> Tracer<M> {
    fn active(&self) -> bool {
        self.echo || self.record
    }

    fn tag_of(&self, msg: &M) -> Option<String> {
        self.tag.as_ref().and_then(|f| f(msg))
    }

    fn emit(&mut self, time: SimTime, kind: TraceKind) {
        let ev = TraceEvent { time, kind };
        if self.echo {
            eprintln!("{}", ev.render());
        }
        if self.record {
            self.events.push(ev);
        }
    }
}

struct Inner<M> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Event<M>>,
    mailboxes: Vec<VecDeque<Envelope<M>>>,
    states: Vec<ActorState>,
    epochs: Vec<u64>,
    nodes: Vec<NodeConfig>,
    net: NetConfig,
    /// Per-sender time at which its outgoing link becomes free.
    link_free: Vec<SimTime>,
    /// Per ordered (src,dst) pair: latest arrival so far, for FIFO delivery.
    last_arrival: Vec<SimTime>,
    /// Node each actor runs on.
    actor_nodes: Vec<NodeId>,
    /// Actor on each node (if any).
    node_actor: Vec<Option<ActorId>>,
    /// Nodes that have fail-stopped.
    crashed_nodes: Vec<bool>,
    actor_metrics: Vec<ActorMetrics>,
    node_metrics: Vec<NodeMetrics>,
    events_processed: u64,
    max_events: u64,
    panicked: Option<ActorId>,
    fault: Option<FaultRuntime>,
    trace_hash: u64,
    tracer: Tracer<M>,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl<M> Inner<M> {
    fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    fn pair_index(&self, src: ActorId, dst: ActorId) -> usize {
        src.0 * self.states.len() + dst.0
    }

    fn hash_mix(&mut self, v: u64) {
        self.trace_hash ^= v;
        self.trace_hash = self.trace_hash.wrapping_mul(FNV_PRIME);
    }

    fn hash_event(&mut self, ev: &Event<M>) {
        self.hash_mix(ev.time.0);
        match &ev.kind {
            EventKind::Wake { actor, .. } => {
                self.hash_mix(1);
                self.hash_mix(actor.0 as u64);
            }
            EventKind::Deliver { dst, env } => {
                self.hash_mix(2);
                self.hash_mix(dst.0 as u64);
                self.hash_mix(env.src as u64);
                self.hash_mix(env.bytes);
            }
            EventKind::Crash { node } => {
                self.hash_mix(3);
                self.hash_mix(node.0 as u64);
            }
        }
    }
}

struct Shared<M> {
    inner: Mutex<Inner<M>>,
}

impl<M> Shared<M> {
    /// Lock, shrugging off poison: an actor panic mid-critical-section is
    /// already recorded via `panicked`, and the kernel still needs the state
    /// to shut down cleanly.
    fn lock(&self) -> MutexGuard<'_, Inner<M>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Handle an actor uses to interact with the simulation.
pub struct ActorCtx<M: Send + Clone + 'static> {
    id: ActorId,
    node: NodeId,
    shared: Arc<Shared<M>>,
    go_rx: Receiver<()>,
    yield_tx: Sender<ActorId>,
}

impl<M: Send + Clone + 'static> ActorCtx<M> {
    /// This actor's id (assigned in spawn order, starting at 0).
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// The node this actor runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.lock().now
    }

    /// The OS scheduling quantum of this actor's node. The runtime is
    /// allowed to know this (it is an OS parameter, not a load measurement);
    /// the paper's frequency rule requires the period to be ≥ 5 quanta.
    pub fn os_quantum(&self) -> SimDuration {
        self.shared.lock().nodes[self.node.0].quantum
    }

    /// Number of actors in the simulation.
    pub fn actor_count(&self) -> usize {
        self.shared.lock().states.len()
    }

    fn park(&self, wake_on_msg: bool, wake_at: Option<SimTime>) {
        {
            let mut inner = self.shared.lock();
            let epoch = self.epoch_bump(&mut inner);
            inner.states[self.id.0] = ActorState::Waiting { epoch, wake_on_msg };
            if let Some(t) = wake_at {
                debug_assert!(t >= inner.now);
                inner.push_event(
                    t,
                    EventKind::Wake {
                        actor: self.id,
                        epoch,
                    },
                );
            }
        }
        if self.yield_tx.send(self.id).is_err() {
            shutdown_unwind();
        }
        if self.go_rx.recv().is_err() {
            shutdown_unwind();
        }
    }

    fn epoch_bump(&self, inner: &mut Inner<M>) -> u64 {
        inner.epochs[self.id.0] += 1;
        inner.epochs[self.id.0]
    }

    /// Consume `work` of CPU on this actor's node, advancing virtual time
    /// according to the node's speed, quantum, and competing load.
    pub fn advance_work(&self, work: CpuWork) {
        if work.is_zero() {
            return;
        }
        let finish = {
            let mut inner = self.shared.lock();
            let cfg = inner.nodes[self.node.0].clone();
            let adv = cpu::advance(&cfg, inner.now, work);
            let nm = &mut inner.node_metrics[self.node.0];
            nm.app_cpu += work.dedicated_duration(cfg.speed);
            nm.app_cpu_while_loaded += adv.cpu_while_loaded;
            adv.finish
        };
        self.park(false, Some(finish));
        // A freeze window may defer the wake past `finish`; time never runs
        // backwards, so the actor simply resumes late.
        debug_assert!(self.now() >= finish);
    }

    /// Wait for `d` of virtual time to pass without consuming CPU.
    pub fn sleep(&self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        let wake = self.now() + d;
        self.park(false, Some(wake));
    }

    /// Send `msg` (`bytes` on the wire) to `dst`. Charges the configured
    /// marshalling CPU to this actor, then hands the message to the network.
    /// Delivery is asynchronous; per-(src,dst) order is FIFO — including
    /// under jitter and duplication faults.
    pub fn send(&self, dst: ActorId, msg: M, bytes: u64) {
        let send_cpu = {
            let inner = self.shared.lock();
            assert!(dst.0 < inner.states.len(), "send to unknown actor");
            inner.net.send_cpu(bytes)
        };
        self.advance_work(send_cpu);
        let mut inner = self.shared.lock();
        let now = inner.now;
        let start = now.max(inner.link_free[self.id.0]);
        let xfer = inner.net.transfer_time(bytes);
        inner.link_free[self.id.0] = start + xfer;
        inner.actor_metrics[self.id.0].msgs_sent += 1;
        inner.actor_metrics[self.id.0].bytes_sent += bytes;

        // Trace the send before any fault draw: a dropped message still
        // shows its send, which is what trace-conformance replay needs to
        // see the sender's protocol action.
        if inner.tracer.active() {
            let tag = inner.tracer.tag_of(&msg);
            inner.tracer.emit(
                now,
                TraceKind::Send {
                    src: self.id.0,
                    dst: dst.0,
                    bytes,
                    tag,
                },
            );
        }

        // Fault draws happen per send in event order, so the RNG stream is
        // a deterministic function of the message sequence.
        let mut extra = SimDuration::ZERO;
        let mut duplicate = false;
        let src_node = inner.actor_nodes[self.id.0].0;
        let dst_node = inner.actor_nodes[dst.0].0;
        if let Some(f) = inner.fault.as_mut() {
            // Partition check first, and with no RNG draw: a severed link is
            // deterministic, so adding or removing a partition window does
            // not perturb the fault RNG stream of unrelated links.
            if f.plan.partitioned(src_node, dst_node, now) {
                f.stats.partition_dropped += 1;
                return;
            }
            let lf = f.plan.link_faults(src_node, dst_node);
            if !lf.is_quiet() {
                if f.rng.chance(lf.drop_p) {
                    // Lost in the network: the sender paid CPU and link time
                    // but no delivery is scheduled.
                    f.stats.msgs_dropped += 1;
                    return;
                }
                if lf.jitter_p > 0.0 && f.rng.chance(lf.jitter_p) {
                    extra = SimDuration(f.rng.gen_range(0, lf.max_jitter.0.max(1) + 1));
                    f.stats.msgs_delayed += 1;
                }
                if f.rng.chance(lf.dup_p) {
                    duplicate = true;
                    f.stats.msgs_duplicated += 1;
                }
            }
        }

        // Jitter is applied *before* the FIFO clamp: a delayed message holds
        // up everything behind it instead of being overtaken.
        let mut arrival = start + xfer + inner.net.latency + extra;
        let pair = inner.pair_index(self.id, dst);
        arrival = arrival.max(inner.last_arrival[pair]);
        inner.last_arrival[pair] = arrival;
        if duplicate {
            let copy = Envelope {
                src: self.id.0,
                msg: msg.clone(),
                bytes,
            };
            let dup_arrival = arrival + SimDuration(1);
            inner.last_arrival[pair] = dup_arrival;
            inner.push_event(
                arrival,
                EventKind::Deliver {
                    dst,
                    env: Envelope {
                        src: self.id.0,
                        msg,
                        bytes,
                    },
                },
            );
            inner.push_event(dup_arrival, EventKind::Deliver { dst, env: copy });
        } else {
            inner.push_event(
                arrival,
                EventKind::Deliver {
                    dst,
                    env: Envelope {
                        src: self.id.0,
                        msg,
                        bytes,
                    },
                },
            );
        }
    }

    fn take_from_mailbox(
        &self,
        inner: &mut Inner<M>,
        pred: &mut dyn FnMut(&M) -> bool,
    ) -> Option<Envelope<M>> {
        let mb = &mut inner.mailboxes[self.id.0];
        let idx = mb.iter().position(|env| pred(&env.msg))?;
        let env = mb.remove(idx).expect("index valid");
        inner.actor_metrics[self.id.0].msgs_received += 1;
        inner.actor_metrics[self.id.0].bytes_received += env.bytes;
        Some(env)
    }

    fn charge_recv(&self) {
        let cost = self.shared.lock().net.recv_cpu_per_msg;
        self.advance_work(cost);
    }

    /// Receive the next message (FIFO per sender), blocking in virtual time.
    pub fn recv(&self) -> Envelope<M> {
        self.recv_match(|_| true)
    }

    /// Receive the first queued message matching `pred`, blocking until one
    /// arrives.
    pub fn recv_match(&self, mut pred: impl FnMut(&M) -> bool) -> Envelope<M> {
        loop {
            let got = {
                let mut inner = self.shared.lock();
                self.take_from_mailbox(&mut inner, &mut pred)
            };
            if let Some(env) = got {
                self.charge_recv();
                return env;
            }
            self.park(true, None);
        }
    }

    /// Non-blocking receive of the first queued message matching `pred`.
    pub fn try_recv_match(&self, mut pred: impl FnMut(&M) -> bool) -> Option<Envelope<M>> {
        let got = {
            let mut inner = self.shared.lock();
            self.take_from_mailbox(&mut inner, &mut pred)
        };
        if got.is_some() {
            self.charge_recv();
        }
        got
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.try_recv_match(|_| true)
    }

    /// Receive a message matching `pred`, or return `None` once virtual time
    /// reaches `deadline`.
    pub fn recv_match_deadline(
        &self,
        mut pred: impl FnMut(&M) -> bool,
        deadline: SimTime,
    ) -> Option<Envelope<M>> {
        loop {
            let (got, now) = {
                let mut inner = self.shared.lock();
                let got = self.take_from_mailbox(&mut inner, &mut pred);
                (got, inner.now)
            };
            if let Some(env) = got {
                self.charge_recv();
                return Some(env);
            }
            if now >= deadline {
                return None;
            }
            self.park(true, Some(deadline));
        }
    }

    /// Receive any message or time out at `deadline`.
    pub fn recv_deadline(&self, deadline: SimTime) -> Option<Envelope<M>> {
        self.recv_match_deadline(|_| true, deadline)
    }
}

/// Drops a "panicked" notification to the kernel if the actor unwinds, so
/// the kernel can stop and propagate the panic instead of hanging. Quiet
/// shutdown unwinds (kernel teardown, crashed nodes) are not panics.
struct PanicGuard<M: Send + Clone + 'static> {
    id: ActorId,
    shared: Arc<Shared<M>>,
    yield_tx: Sender<ActorId>,
}

impl<M: Send + Clone + 'static> Drop for PanicGuard<M> {
    fn drop(&mut self) {
        let panicking = std::thread::panicking();
        let quiet = SHUTDOWN_UNWIND.with(|c| c.get());
        {
            let mut inner = self.shared.lock();
            if panicking && !quiet {
                inner.states[self.id.0] = ActorState::Panicked;
                inner.panicked = Some(self.id);
            } else if !panicking {
                inner.states[self.id.0] = ActorState::Done;
            }
            // Quiet unwind: leave the state (Waiting/Crashed) as recorded.
        }
        let _ = self.yield_tx.send(self.id);
    }
}

type ActorFn<M> = Box<dyn FnOnce(ActorCtx<M>) + Send + 'static>;

/// Builder for a simulation: declare nodes, spawn actors, then [`SimBuilder::run`].
pub struct SimBuilder<M: Send + Clone + 'static> {
    nodes: Vec<NodeConfig>,
    net: NetConfig,
    actors: Vec<(NodeId, String, ActorFn<M>)>,
    node_used: Vec<bool>,
    max_events: u64,
    fault: Option<FaultPlan>,
    tag: Option<TagFn<M>>,
    record_trace: bool,
}

impl<M: Send + Clone + 'static> Default for SimBuilder<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Send + Clone + 'static> SimBuilder<M> {
    pub fn new() -> Self {
        SimBuilder {
            nodes: Vec::new(),
            net: NetConfig::default(),
            actors: Vec::new(),
            node_used: Vec::new(),
            max_events: 200_000_000,
            fault: None,
            tag: None,
            record_trace: false,
        }
    }

    /// Set the network model (default: [`NetConfig::default`]).
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Safety valve against runaway simulations (default 2·10⁸ events).
    pub fn max_events(mut self, n: u64) -> Self {
        self.max_events = n;
        self
    }

    /// Attach a deterministic fault plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Install a message tagger for the event trace: traced `SEND`/`DELIVER`
    /// lines carry `f(msg)` as their tag (None = untagged). Only consulted
    /// while tracing is active.
    pub fn trace_tag(mut self, f: impl Fn(&M) -> Option<String> + Send + 'static) -> Self {
        self.tag = Some(Box::new(f));
        self
    }

    /// Record the event trace into [`SimReport::trace`] (default off). The
    /// `DLB_TRACE_EVENTS` env var independently echoes the same lines to
    /// stderr.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, cfg: NodeConfig) -> NodeId {
        self.nodes.push(cfg);
        self.node_used.push(false);
        NodeId(self.nodes.len() - 1)
    }

    /// Spawn an actor on `node`. Exactly one actor may run per node: the CPU
    /// model charges all of a node's application CPU to a single process.
    pub fn spawn(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        f: impl FnOnce(ActorCtx<M>) + Send + 'static,
    ) -> ActorId {
        assert!(node.0 < self.nodes.len(), "unknown node");
        assert!(
            !self.node_used[node.0],
            "node {} already has an actor; the CPU model supports one application process per node",
            node.0
        );
        self.node_used[node.0] = true;
        self.actors.push((node, name.into(), Box::new(f)));
        ActorId(self.actors.len() - 1)
    }

    /// Run the simulation to completion and return its report.
    ///
    /// Panics if an actor panics (the panic is propagated), if the
    /// simulation deadlocks (all actors blocked with no pending events), or
    /// if the event budget is exhausted. Crashed nodes do not count as
    /// deadlocked or panicked: their actors are torn down quietly.
    pub fn run(self) -> SimReport {
        install_quiet_panic_hook();
        let n_actors = self.actors.len();
        assert!(n_actors > 0, "no actors spawned");
        let names: Vec<String> = self.actors.iter().map(|(_, n, _)| n.clone()).collect();
        let actor_nodes: Vec<NodeId> = self.actors.iter().map(|(n, _, _)| *n).collect();
        let mut node_actor: Vec<Option<ActorId>> = vec![None; self.nodes.len()];
        for (i, (n, _, _)) in self.actors.iter().enumerate() {
            node_actor[n.0] = Some(ActorId(i));
        }

        let mut inner = Inner {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            mailboxes: (0..n_actors).map(|_| VecDeque::new()).collect(),
            states: vec![
                ActorState::Waiting {
                    epoch: 0,
                    wake_on_msg: false
                };
                n_actors
            ],
            epochs: vec![0; n_actors],
            nodes: self.nodes.clone(),
            net: self.net,
            link_free: vec![SimTime::ZERO; n_actors],
            last_arrival: vec![SimTime::ZERO; n_actors * n_actors],
            actor_nodes,
            node_actor,
            crashed_nodes: vec![false; self.nodes.len()],
            actor_metrics: vec![ActorMetrics::default(); n_actors],
            node_metrics: vec![NodeMetrics::default(); self.nodes.len()],
            events_processed: 0,
            max_events: self.max_events,
            panicked: None,
            fault: self.fault.map(FaultRuntime::new),
            trace_hash: FNV_OFFSET,
            tracer: Tracer {
                tag: self.tag,
                echo: std::env::var_os("DLB_TRACE_EVENTS").is_some(),
                record: self.record_trace,
                events: Vec::new(),
            },
        };
        // Seed: wake every actor at t = 0, in spawn order.
        for (i, _) in self.actors.iter().enumerate() {
            inner.push_event(
                SimTime::ZERO,
                EventKind::Wake {
                    actor: ActorId(i),
                    epoch: 0,
                },
            );
        }
        // Schedule fail-stops.
        if let Some(f) = &inner.fault {
            let crashes = f.plan.crashes();
            for (node, t) in crashes {
                assert!(
                    node < self.nodes.len(),
                    "fault plan crashes unknown node {node}"
                );
                inner.push_event(t, EventKind::Crash { node: NodeId(node) });
            }
        }
        let shared = Arc::new(Shared {
            inner: Mutex::new(inner),
        });

        let (yield_tx, yield_rx) = channel::<ActorId>();
        let mut go_txs: Vec<SyncSender<()>> = Vec::with_capacity(n_actors);
        let mut handles = Vec::with_capacity(n_actors);
        for (i, (node, name, f)) in self.actors.into_iter().enumerate() {
            let (go_tx, go_rx) = sync_channel::<()>(1);
            go_txs.push(go_tx);
            let ctx = ActorCtx {
                id: ActorId(i),
                node,
                shared: Arc::clone(&shared),
                go_rx,
                yield_tx: yield_tx.clone(),
            };
            let guard_shared = Arc::clone(&shared);
            let guard_tx = yield_tx.clone();
            let builder = std::thread::Builder::new().name(format!("sim-{i}-{name}"));
            handles.push(
                builder
                    .spawn(move || {
                        let _guard = PanicGuard {
                            id: ActorId(i),
                            shared: guard_shared,
                            yield_tx: guard_tx,
                        };
                        // Wait for the first wake.
                        if ctx.go_rx.recv().is_err() {
                            shutdown_unwind();
                        }
                        f(ctx);
                    })
                    .expect("spawn actor thread"),
            );
        }
        drop(yield_tx);

        // Kernel loop.
        loop {
            let next = {
                let mut inner = shared.lock();
                if inner.panicked.is_some() {
                    break;
                }
                // Once every actor has finished (or crashed), stop without
                // draining stale events (e.g. deadline wakes scheduled past
                // the end of the run) so they cannot inflate `end_time`.
                if inner
                    .states
                    .iter()
                    .all(|s| matches!(s, ActorState::Done | ActorState::Crashed))
                {
                    break;
                }
                match inner.heap.pop() {
                    Some(ev) => {
                        // Freeze windows: events targeting a frozen node are
                        // deferred to the thaw time, preserving their order.
                        let target_node = match &ev.kind {
                            EventKind::Wake { actor, .. } => Some(inner.actor_nodes[actor.0].0),
                            EventKind::Deliver { dst, .. } => Some(inner.actor_nodes[dst.0].0),
                            EventKind::Crash { .. } => None,
                        };
                        let thaw = target_node.and_then(|n| {
                            inner
                                .fault
                                .as_ref()
                                .and_then(|f| f.plan.thaw_time(n, ev.time))
                        });
                        if let Some(t) = thaw {
                            if let Some(f) = inner.fault.as_mut() {
                                f.stats.freeze_deferrals += 1;
                            }
                            inner.push_event(t, ev.kind);
                            continue;
                        }
                        inner.events_processed += 1;
                        assert!(
                            inner.events_processed <= inner.max_events,
                            "event budget exhausted ({} events): probable livelock",
                            inner.max_events
                        );
                        debug_assert!(ev.time >= inner.now, "time went backwards");
                        inner.now = inner.now.max(ev.time);
                        inner.hash_event(&ev);
                        if inner.tracer.active() {
                            let kind = match &ev.kind {
                                EventKind::Wake { actor, .. } => TraceKind::Wake { actor: actor.0 },
                                EventKind::Deliver { dst, env } => TraceKind::Deliver {
                                    src: env.src,
                                    dst: dst.0,
                                    bytes: env.bytes,
                                    tag: inner.tracer.tag_of(&env.msg),
                                },
                                EventKind::Crash { node } => TraceKind::Crash { node: node.0 },
                            };
                            inner.tracer.emit(ev.time, kind);
                        }
                        Some(ev)
                    }
                    None => None,
                }
            };
            let Some(ev) = next else {
                // Heap empty: everyone must be done (or crashed).
                let inner = shared.lock();
                let stuck: Vec<String> = inner
                    .states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !matches!(s, ActorState::Done | ActorState::Crashed))
                    .map(|(i, s)| format!("{} ({:?})", names[i], s))
                    .collect();
                assert!(
                    stuck.is_empty(),
                    "simulation deadlock at {}: no events pending but actors blocked: {}",
                    inner.now,
                    stuck.join(", ")
                );
                break;
            };
            match ev.kind {
                EventKind::Wake { actor, epoch } => {
                    let run = {
                        let mut inner = shared.lock();
                        match inner.states[actor.0] {
                            ActorState::Waiting { epoch: e, .. } if e == epoch => {
                                inner.states[actor.0] = ActorState::Running;
                                true
                            }
                            _ => false, // stale wake, or actor crashed
                        }
                    };
                    if run {
                        go_txs[actor.0].send(()).expect("actor thread gone");
                        // Wait for the actor to yield, finish, or panic.
                        yield_rx.recv().expect("all actors gone");
                    }
                }
                EventKind::Deliver { dst, env } => {
                    let mut inner = shared.lock();
                    if inner.crashed_nodes[inner.actor_nodes[dst.0].0] {
                        if let Some(f) = inner.fault.as_mut() {
                            f.stats.deliveries_to_crashed += 1;
                        }
                        continue;
                    }
                    inner.mailboxes[dst.0].push_back(env);
                    if let ActorState::Waiting {
                        epoch,
                        wake_on_msg: true,
                    } = inner.states[dst.0]
                    {
                        let now = inner.now;
                        inner.push_event(now, EventKind::Wake { actor: dst, epoch });
                    }
                }
                EventKind::Crash { node } => {
                    let mut inner = shared.lock();
                    inner.crashed_nodes[node.0] = true;
                    if let Some(f) = inner.fault.as_mut() {
                        f.stats.crashed_nodes.push(node.0);
                    }
                    if let Some(a) = inner.node_actor[node.0] {
                        if !matches!(inner.states[a.0], ActorState::Done) {
                            inner.states[a.0] = ActorState::Crashed;
                        }
                        // Anything queued for it will never be read.
                        inner.mailboxes[a.0].clear();
                    }
                }
            }
        }

        // Drop our go senders so any still-parked actor unwinds quietly
        // instead of hanging, then join every thread, propagating the first
        // real panic (shutdown unwinds are filtered out).
        drop(go_txs);
        let mut panic_payload = None;
        for h in handles {
            if let Err(p) = h.join() {
                if !p.is::<ShutdownUnwind>() && panic_payload.is_none() {
                    panic_payload = Some(p);
                }
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }

        let mut inner = shared.lock();
        let trace = std::mem::take(&mut inner.tracer.events);
        SimReport {
            end_time: inner.now,
            actors: inner.actor_metrics.clone(),
            nodes: inner.node_metrics.clone(),
            node_configs: inner.nodes.clone(),
            events_processed: inner.events_processed,
            fault: inner
                .fault
                .as_ref()
                .map(|f| f.stats.clone())
                .unwrap_or_default(),
            trace_hash: inner.trace_hash,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, LinkFaults};
    use crate::load::LoadModel;

    fn two_node_builder() -> (SimBuilder<u64>, NodeId, NodeId) {
        let mut b = SimBuilder::<u64>::new().net(NetConfig::ideal());
        let n0 = b.add_node(NodeConfig::default());
        let n1 = b.add_node(NodeConfig::default());
        (b, n0, n1)
    }

    #[test]
    fn ping_pong() {
        let (mut b, n0, n1) = two_node_builder();
        let a1 = ActorId(1);
        b.spawn(n0, "ping", move |ctx| {
            ctx.send(a1, 42, 8);
            let reply = ctx.recv();
            assert_eq!(reply.msg, 43);
            assert_eq!(reply.src, 1);
        });
        b.spawn(n1, "pong", move |ctx| {
            let m = ctx.recv();
            assert_eq!(m.msg, 42);
            ctx.send(ActorId(m.src), m.msg + 1, 8);
        });
        let report = b.run();
        assert_eq!(report.actors[0].msgs_sent, 1);
        assert_eq!(report.actors[0].msgs_received, 1);
        assert_eq!(report.actors[1].msgs_received, 1);
        assert!(!report.fault.any());
    }

    #[test]
    fn record_trace_captures_sends_and_deliveries() {
        let (mut b, n0, n1) = two_node_builder();
        let a1 = ActorId(1);
        b = b
            .record_trace(true)
            .trace_tag(|m: &u64| (*m == 42).then(|| "answer".to_string()));
        b.spawn(n0, "ping", move |ctx| {
            ctx.send(a1, 42, 8);
            let _ = ctx.recv();
        });
        b.spawn(n1, "pong", move |ctx| {
            let m = ctx.recv();
            ctx.send(ActorId(m.src), m.msg + 1, 8);
        });
        let report = b.run();
        let sends: Vec<_> = report
            .trace
            .iter()
            .filter_map(|ev| match &ev.kind {
                TraceKind::Send { src, dst, tag, .. } => Some((*src, *dst, tag.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            sends,
            vec![(0, 1, Some("answer".to_string())), (1, 0, None)]
        );
        let delivers = report
            .trace
            .iter()
            .filter(|ev| matches!(ev.kind, TraceKind::Deliver { .. }))
            .count();
        assert_eq!(delivers, 2);
        // The trace round-trips through the stable text format.
        let text = crate::trace::render_trace(&report.trace);
        assert_eq!(crate::trace::parse_trace(&text).unwrap(), report.trace);
    }

    #[test]
    fn trace_off_by_default() {
        let (mut b, n0, n1) = two_node_builder();
        let a1 = ActorId(1);
        b.spawn(n0, "src", move |ctx| ctx.send(a1, 1, 8));
        b.spawn(n1, "dst", |ctx| {
            ctx.recv();
        });
        assert!(b.run().trace.is_empty());
    }

    #[test]
    fn advance_work_advances_time() {
        let mut b = SimBuilder::<()>::new().net(NetConfig::ideal());
        let n = b.add_node(NodeConfig::default());
        b.spawn(n, "worker", |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.advance_work(CpuWork::from_secs_f64(2.0));
            assert_eq!(ctx.now(), SimTime(2_000_000));
        });
        let report = b.run();
        assert_eq!(report.end_time, SimTime(2_000_000));
        assert_eq!(report.nodes[0].app_cpu, SimDuration::from_secs(2));
    }

    #[test]
    fn competing_load_stretches_time() {
        let mut b = SimBuilder::<()>::new().net(NetConfig::ideal());
        let n = b.add_node(NodeConfig::with_load(LoadModel::Constant(1)));
        b.spawn(n, "worker", |ctx| {
            ctx.advance_work(CpuWork::from_secs_f64(1.0));
        });
        let report = b.run();
        // 1 s of CPU at 50% availability: finishes during slot at ~1.9s
        // (slots [0,.1) [.2,.3) ... 10 slots, last ends at 1.9s).
        assert_eq!(report.end_time, SimTime(1_900_000));
        assert_eq!(
            report.nodes[0].app_cpu_while_loaded,
            SimDuration::from_secs(1)
        );
        // Competing task got the rest.
        assert_eq!(
            report.competing_cpu(NodeId(0)),
            SimDuration::from_micros(900_000)
        );
    }

    #[test]
    fn sleep_passes_time_without_cpu() {
        let mut b = SimBuilder::<()>::new().net(NetConfig::ideal());
        let n = b.add_node(NodeConfig::default());
        b.spawn(n, "sleeper", |ctx| {
            ctx.sleep(SimDuration::from_secs(5));
            assert_eq!(ctx.now(), SimTime(5_000_000));
        });
        let report = b.run();
        assert_eq!(report.nodes[0].app_cpu, SimDuration::ZERO);
    }

    #[test]
    fn network_latency_and_bandwidth() {
        let mut b = SimBuilder::<u32>::new().net(NetConfig {
            latency: SimDuration::from_millis(1),
            bandwidth: 1_000_000, // 1 byte/us
            send_cpu_per_msg: CpuWork::ZERO,
            send_cpu_per_byte_ns: 0,
            recv_cpu_per_msg: CpuWork::ZERO,
        });
        let n0 = b.add_node(NodeConfig::default());
        let n1 = b.add_node(NodeConfig::default());
        let a1 = ActorId(1);
        b.spawn(n0, "src", move |ctx| {
            ctx.send(a1, 7, 1000); // 1000 us transfer + 1000 us latency
        });
        b.spawn(n1, "dst", |ctx| {
            let env = ctx.recv();
            assert_eq!(env.msg, 7);
            assert_eq!(ctx.now(), SimTime(2_000));
        });
        b.run();
    }

    #[test]
    fn fifo_per_pair() {
        let (mut b, n0, n1) = two_node_builder();
        let a1 = ActorId(1);
        b.spawn(n0, "src", move |ctx| {
            for i in 0..10u64 {
                ctx.send(a1, i, 1);
            }
        });
        b.spawn(n1, "dst", |ctx| {
            for i in 0..10u64 {
                assert_eq!(ctx.recv().msg, i);
            }
        });
        b.run();
    }

    #[test]
    fn selective_receive() {
        let (mut b, n0, n1) = two_node_builder();
        let a1 = ActorId(1);
        b.spawn(n0, "src", move |ctx| {
            ctx.send(a1, 1, 1);
            ctx.send(a1, 2, 1);
            ctx.send(a1, 3, 1);
        });
        b.spawn(n1, "dst", |ctx| {
            // Pull out-of-order by predicate; the rest stays queued.
            assert_eq!(ctx.recv_match(|&m| m == 2).msg, 2);
            assert_eq!(ctx.recv().msg, 1);
            assert_eq!(ctx.recv().msg, 3);
        });
        b.run();
    }

    #[test]
    fn recv_deadline_times_out() {
        let mut b = SimBuilder::<()>::new().net(NetConfig::ideal());
        let n = b.add_node(NodeConfig::default());
        b.spawn(n, "waiter", |ctx| {
            let got = ctx.recv_deadline(SimTime(500));
            assert!(got.is_none());
            assert_eq!(ctx.now(), SimTime(500));
        });
        b.run();
    }

    #[test]
    fn recv_deadline_gets_message_first() {
        let (mut b, n0, n1) = two_node_builder();
        let a1 = ActorId(1);
        b.spawn(n0, "src", move |ctx| {
            ctx.sleep(SimDuration::from_micros(100));
            ctx.send(a1, 9, 1);
        });
        b.spawn(n1, "dst", |ctx| {
            let got = ctx.recv_deadline(SimTime(1_000_000));
            assert_eq!(got.unwrap().msg, 9);
            assert!(ctx.now() < SimTime(1_000_000));
        });
        b.run();
    }

    #[test]
    fn try_recv_nonblocking() {
        let mut b = SimBuilder::<u8>::new().net(NetConfig::ideal());
        let n = b.add_node(NodeConfig::default());
        b.spawn(n, "solo", |ctx| {
            assert!(ctx.try_recv().is_none());
        });
        b.run();
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run_once = || {
            let mut b = SimBuilder::<u64>::new();
            let mut slaves = Vec::new();
            let master_node = b.add_node(NodeConfig::default());
            for i in 0..4 {
                let n = b.add_node(NodeConfig::with_load(if i == 0 {
                    LoadModel::Constant(1)
                } else {
                    LoadModel::Dedicated
                }));
                slaves.push(n);
            }
            let master = b.spawn(master_node, "master", move |ctx| {
                for _ in 0..4 {
                    let env = ctx.recv();
                    ctx.send(ActorId(env.src), env.msg * 2, 16);
                }
            });
            for (i, n) in slaves.into_iter().enumerate() {
                b.spawn(n, format!("slave{i}"), move |ctx| {
                    ctx.advance_work(CpuWork::from_millis(50 * (i as u64 + 1)));
                    ctx.send(master, i as u64, 16);
                    let env = ctx.recv();
                    assert_eq!(env.msg, i as u64 * 2);
                    ctx.advance_work(CpuWork::from_millis(10));
                });
            }
            let r = b.run();
            (r.end_time, r.events_processed, r.trace_hash)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn actor_panic_propagates() {
        let mut b = SimBuilder::<()>::new();
        let n = b.add_node(NodeConfig::default());
        b.spawn(n, "bomb", |_ctx| panic!("boom"));
        b.run();
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_detected() {
        let mut b = SimBuilder::<()>::new();
        let n = b.add_node(NodeConfig::default());
        b.spawn(n, "hung", |ctx| {
            let _ = ctx.recv(); // nobody will ever send
        });
        b.run();
    }

    #[test]
    #[should_panic(expected = "already has an actor")]
    fn one_actor_per_node() {
        let mut b = SimBuilder::<()>::new();
        let n = b.add_node(NodeConfig::default());
        b.spawn(n, "a", |_| {});
        b.spawn(n, "b", |_| {});
    }

    #[test]
    fn send_charges_cpu() {
        let mut b = SimBuilder::<()>::new().net(NetConfig {
            latency: SimDuration::ZERO,
            bandwidth: u64::MAX,
            send_cpu_per_msg: CpuWork::from_micros(500),
            send_cpu_per_byte_ns: 0,
            recv_cpu_per_msg: CpuWork::ZERO,
        });
        let n0 = b.add_node(NodeConfig::default());
        let n1 = b.add_node(NodeConfig::default());
        let a1 = ActorId(1);
        b.spawn(n0, "src", move |ctx| {
            ctx.send(a1, (), 0);
            assert_eq!(ctx.now(), SimTime(500));
        });
        b.spawn(n1, "dst", |ctx| {
            ctx.recv();
        });
        let report = b.run();
        assert_eq!(report.nodes[0].app_cpu, SimDuration::from_micros(500));
    }

    // --- fault injection ---------------------------------------------------

    #[test]
    fn drop_fault_loses_message() {
        let (mut b, n0, n1) = two_node_builder();
        let a1 = ActorId(1);
        b.spawn(n0, "src", move |ctx| {
            ctx.send(a1, 5, 8);
        });
        b.spawn(n1, "dst", |ctx| {
            assert!(ctx.recv_deadline(SimTime(1_000_000)).is_none());
        });
        let report = b.fault_plan(FaultPlan::new(1).drop_all(1.0)).run();
        assert_eq!(report.fault.msgs_dropped, 1);
        assert_eq!(report.actors[0].msgs_sent, 1);
        assert_eq!(report.actors[1].msgs_received, 0);
    }

    #[test]
    fn dup_fault_delivers_twice() {
        let (mut b, n0, n1) = two_node_builder();
        let a1 = ActorId(1);
        b.spawn(n0, "src", move |ctx| {
            ctx.send(a1, 5, 8);
        });
        b.spawn(n1, "dst", |ctx| {
            assert_eq!(ctx.recv().msg, 5);
            assert_eq!(ctx.recv().msg, 5);
        });
        let report = b.fault_plan(FaultPlan::new(1).dup_all(1.0)).run();
        assert_eq!(report.fault.msgs_duplicated, 1);
        assert_eq!(report.actors[1].msgs_received, 2);
    }

    #[test]
    fn jitter_preserves_fifo() {
        let (mut b, n0, n1) = two_node_builder();
        let a1 = ActorId(1);
        b.spawn(n0, "src", move |ctx| {
            for i in 0..20u64 {
                ctx.send(a1, i, 1);
            }
        });
        b.spawn(n1, "dst", |ctx| {
            for i in 0..20u64 {
                assert_eq!(ctx.recv().msg, i, "jitter must not reorder a pair");
            }
        });
        let report = b
            .fault_plan(FaultPlan::new(7).jitter_all(1.0, SimDuration::from_millis(50)))
            .run();
        assert_eq!(report.fault.msgs_delayed, 20);
    }

    #[test]
    fn crash_stops_actor_and_discards_mail() {
        let (mut b, n0, n1) = two_node_builder();
        let a1 = ActorId(1);
        b.spawn(n0, "survivor", move |ctx| {
            ctx.advance_work(CpuWork::from_millis(100));
            // Sent after the crash: discarded, not delivered.
            ctx.send(a1, 1, 8);
            ctx.advance_work(CpuWork::from_millis(100));
        });
        b.spawn(n1, "victim", |ctx| loop {
            ctx.sleep(SimDuration::from_millis(10));
        });
        let report = b
            .fault_plan(FaultPlan::new(0).crash(1, SimTime(50_000)))
            .run();
        assert_eq!(report.fault.crashed_nodes, vec![1]);
        assert_eq!(report.fault.deliveries_to_crashed, 1);
        assert_eq!(report.end_time, SimTime(200_000));
    }

    #[test]
    fn freeze_defers_delivery() {
        let (mut b, n0, n1) = two_node_builder();
        let a1 = ActorId(1);
        b.spawn(n0, "src", move |ctx| {
            ctx.sleep(SimDuration::from_millis(15));
            ctx.send(a1, 3, 8);
        });
        b.spawn(n1, "dst", |ctx| {
            let env = ctx.recv();
            assert_eq!(env.msg, 3);
            assert!(ctx.now() >= SimTime(50_000), "delivery deferred to thaw");
        });
        let report = b
            .fault_plan(FaultPlan::new(0).freeze(1, SimTime(10_000), SimTime(50_000)))
            .run();
        assert!(report.fault.freeze_deferrals >= 1);
    }

    #[test]
    fn fault_determinism_same_seed_same_trace() {
        let run_once = |seed: u64| {
            let mut b = SimBuilder::<u64>::new();
            let n0 = b.add_node(NodeConfig::default());
            let n1 = b.add_node(NodeConfig::default());
            let a1 = ActorId(1);
            b.spawn(n0, "src", move |ctx| {
                for i in 0..50u64 {
                    ctx.send(a1, i, 16);
                    ctx.advance_work(CpuWork::from_micros(200));
                }
            });
            b.spawn(n1, "dst", |ctx| {
                while ctx
                    .recv_deadline(ctx.now() + SimDuration::from_millis(20))
                    .is_some()
                {}
            });
            let plan = FaultPlan::new(seed)
                .drop_all(0.2)
                .dup_all(0.1)
                .jitter_all(0.3, SimDuration::from_micros(500));
            let r = b.fault_plan(plan).run();
            (r.trace_hash, r.end_time, r.fault.clone())
        };
        assert_eq!(run_once(11), run_once(11));
        let (h_a, _, _) = run_once(11);
        let (h_b, _, _) = run_once(12);
        assert_ne!(h_a, h_b, "different seeds should give different traces");
    }

    #[test]
    fn per_link_faults_override_default() {
        let mut b = SimBuilder::<u64>::new().net(NetConfig::ideal());
        let n0 = b.add_node(NodeConfig::default());
        let n1 = b.add_node(NodeConfig::default());
        let n2 = b.add_node(NodeConfig::default());
        let (a1, a2) = (ActorId(1), ActorId(2));
        b.spawn(n0, "src", move |ctx| {
            ctx.send(a1, 1, 8); // link 0->1 drops everything
            ctx.send(a2, 2, 8); // default link is clean
        });
        b.spawn(n1, "lossy", |ctx| {
            assert!(ctx.recv_deadline(SimTime(1_000_000)).is_none());
        });
        b.spawn(n2, "clean", |ctx| {
            assert_eq!(ctx.recv().msg, 2);
        });
        let plan = FaultPlan::new(3).link(
            0,
            1,
            LinkFaults {
                drop_p: 1.0,
                ..Default::default()
            },
        );
        let report = b.fault_plan(plan).run();
        assert_eq!(report.fault.msgs_dropped, 1);
    }
}
