//! Units of CPU work.
//!
//! The runtime charges computation to the virtual CPU in units of
//! *reference-node CPU microseconds*: the amount of dedicated CPU time the
//! work would take on a node with speed factor 1.0. A node with speed 2.0
//! executes the same [`CpuWork`] in half the dedicated time; competing load
//! (see [`crate::load`]) then stretches dedicated time into elapsed time.

use crate::time::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// An amount of computation, in reference-node CPU microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CpuWork(pub u64);

impl CpuWork {
    pub const ZERO: CpuWork = CpuWork(0);

    /// Work equal to `us` microseconds of dedicated CPU on a speed-1.0 node.
    #[inline]
    pub const fn from_micros(us: u64) -> CpuWork {
        CpuWork(us)
    }

    /// Work equal to `ms` milliseconds of dedicated CPU on a speed-1.0 node.
    #[inline]
    pub const fn from_millis(ms: u64) -> CpuWork {
        CpuWork(ms * 1_000)
    }

    /// Work equal to `s` seconds of dedicated CPU on a speed-1.0 node.
    #[inline]
    pub fn from_secs_f64(s: f64) -> CpuWork {
        assert!(s >= 0.0 && s.is_finite(), "work must be finite and >= 0");
        CpuWork((s * 1e6).round() as u64)
    }

    /// Work for `flops` floating point operations on a machine that sustains
    /// `mflops` MFLOP/s (the paper's Sun 4/330 nodes sustain roughly 1 MFLOP/s
    /// on these kernels).
    #[inline]
    pub fn from_flops(flops: f64, mflops: f64) -> CpuWork {
        assert!(mflops > 0.0, "mflops must be positive");
        CpuWork::from_secs_f64(flops / (mflops * 1e6))
    }

    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Dedicated duration this work takes on a node with the given speed
    /// factor (rounded up so a nonzero amount of work always takes time).
    #[inline]
    pub fn dedicated_duration(self, speed: f64) -> SimDuration {
        assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
        if self.0 == 0 {
            return SimDuration::ZERO;
        }
        let us = (self.0 as f64 / speed).ceil() as u64;
        SimDuration::from_micros(us.max(1))
    }
}

impl Add for CpuWork {
    type Output = CpuWork;
    #[inline]
    fn add(self, rhs: CpuWork) -> CpuWork {
        CpuWork(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for CpuWork {
    #[inline]
    fn add_assign(&mut self, rhs: CpuWork) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for CpuWork {
    type Output = CpuWork;
    #[inline]
    fn mul(self, rhs: u64) -> CpuWork {
        CpuWork(self.0.saturating_mul(rhs))
    }
}

impl Sum for CpuWork {
    fn sum<I: Iterator<Item = CpuWork>>(iter: I) -> CpuWork {
        iter.fold(CpuWork::ZERO, Add::add)
    }
}

impl fmt::Debug for CpuWork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}cpu-s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flops_calibration() {
        // 2*500^3 flops at 1 MFLOP/s = 250 seconds (paper's sequential MM scale).
        let w = CpuWork::from_flops(2.0 * 500f64.powi(3), 1.0);
        assert_eq!(w.micros(), 250_000_000);
    }

    #[test]
    fn dedicated_duration_scales_with_speed() {
        let w = CpuWork::from_secs_f64(1.0);
        assert_eq!(w.dedicated_duration(1.0).micros(), 1_000_000);
        assert_eq!(w.dedicated_duration(2.0).micros(), 500_000);
        assert_eq!(w.dedicated_duration(0.5).micros(), 2_000_000);
    }

    #[test]
    fn nonzero_work_takes_time() {
        assert_eq!(CpuWork(1).dedicated_duration(1000.0).micros(), 1);
        assert_eq!(CpuWork::ZERO.dedicated_duration(1.0), SimDuration::ZERO);
    }

    #[test]
    fn sums_and_scaling() {
        let total: CpuWork = (0..4).map(|_| CpuWork::from_micros(10)).sum();
        assert_eq!(total.micros(), 40);
        assert_eq!((CpuWork::from_micros(7) * 3).micros(), 21);
    }
}
