//! Bounded exhaustive state-space exploration for protocol models.
//!
//! The runtime's fault-tolerance protocols (sequence-numbered restores,
//! ack watermarks, re-sends) were previously validated only by example-based
//! chaos tests. This module provides the other half: a small explicit-state
//! model checker that enumerates *every* interleaving of a pure transition
//! system up to a bound, plus a seeded random-walk mode (driven by the same
//! [`Pcg32`] the rest of the simulator uses) for probing beyond the
//! exhaustive horizon. Counterexamples come back as action traces that
//! replay deterministically.
//!
//! The transition system itself lives with the code it models (e.g.
//! `dlb-core`'s protocol rules); this module only knows how to walk it.

use crate::rng::Pcg32;
use std::collections::BTreeMap;

/// A pure transition system: states, enabled actions, and invariants.
///
/// `State` must be `Ord` so the explorer can canonicalize and deduplicate
/// visited states; implementors should keep states small and normalized
/// (sorted collections, no floats).
pub trait TransitionSystem {
    type State: Clone + Ord;
    type Action: Clone + std::fmt::Debug;

    /// The single initial state.
    fn initial(&self) -> Self::State;

    /// All actions enabled in `state`. An empty vector means the state is
    /// terminal: accepting if [`TransitionSystem::is_accepting`], a
    /// deadlock otherwise.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Apply `action` to `state`. Must be deterministic and total for any
    /// action returned by [`TransitionSystem::actions`] on the same state.
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// Check safety invariants; `Some(description)` reports a violation.
    fn violation(&self, state: &Self::State) -> Option<String>;

    /// Whether a state with no enabled actions is a legitimate end state
    /// (quiescence) rather than a deadlock.
    fn is_accepting(&self, state: &Self::State) -> bool;
}

/// Why an exploration stopped reporting a state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every reachable state within the bounds satisfies the invariants and
    /// every terminal state is accepting.
    Ok,
    /// A state violated a safety invariant.
    Violation,
    /// A non-accepting state had no enabled actions.
    Deadlock,
}

/// A counterexample: the action sequence from the initial state to the bad
/// state, rendered via each action's `Debug` form. Replaying the actions in
/// order through [`TransitionSystem::apply`] reproduces the state exactly.
#[derive(Clone, Debug)]
pub struct Trace {
    pub steps: Vec<String>,
    /// Invariant-violation detail (empty for deadlocks).
    pub detail: String,
}

/// Everything an exploration produced.
#[derive(Clone, Debug)]
pub struct Exploration {
    pub verdict: Verdict,
    /// Distinct states visited.
    pub states: usize,
    /// Depth of the deepest state expanded.
    pub depth: usize,
    /// True if the state or depth bound cut the search short, so `Ok` only
    /// certifies the explored prefix.
    pub truncated: bool,
    /// Counterexample for `Violation` / `Deadlock`.
    pub trace: Option<Trace>,
}

impl Exploration {
    pub fn ok(&self) -> bool {
        self.verdict == Verdict::Ok
    }
}

/// Exhaustively explore `sys` breadth-first up to `max_depth` actions and
/// `max_states` distinct states. The first invariant violation or deadlock
/// (shallowest, by BFS order) stops the search and yields its trace.
pub fn explore<S: TransitionSystem>(sys: &S, max_depth: usize, max_states: usize) -> Exploration {
    // Arena of visited states with back-pointers for trace reconstruction.
    struct NodeRec {
        parent: Option<(usize, String)>,
        depth: usize,
    }
    let mut arena: Vec<NodeRec> = Vec::new();
    let mut index: BTreeMap<S::State, usize> = BTreeMap::new();
    let mut states: Vec<S::State> = Vec::new();

    let init = sys.initial();
    arena.push(NodeRec {
        parent: None,
        depth: 0,
    });
    index.insert(init.clone(), 0);
    states.push(init);

    let rebuild = |arena: &[NodeRec], mut at: usize, detail: String| {
        let mut steps = Vec::new();
        while let Some((p, a)) = &arena[at].parent {
            steps.push(a.clone());
            at = *p;
        }
        steps.reverse();
        Trace { steps, detail }
    };

    let mut truncated = false;
    let mut max_seen_depth = 0;
    let mut frontier = 0usize; // BFS by arena order: arena only ever appends.
    while frontier < states.len() {
        let at = frontier;
        frontier += 1;
        let depth = arena[at].depth;
        max_seen_depth = max_seen_depth.max(depth);

        if let Some(detail) = sys.violation(&states[at]) {
            return Exploration {
                verdict: Verdict::Violation,
                states: states.len(),
                depth: max_seen_depth,
                truncated,
                trace: Some(rebuild(&arena, at, detail)),
            };
        }
        let actions = sys.actions(&states[at]);
        if actions.is_empty() {
            if !sys.is_accepting(&states[at]) {
                return Exploration {
                    verdict: Verdict::Deadlock,
                    states: states.len(),
                    depth: max_seen_depth,
                    truncated,
                    trace: Some(rebuild(&arena, at, String::new())),
                };
            }
            continue;
        }
        if depth >= max_depth {
            truncated = true;
            continue;
        }
        for a in actions {
            let next = sys.apply(&states[at], &a);
            if index.contains_key(&next) {
                continue;
            }
            if states.len() >= max_states {
                truncated = true;
                continue;
            }
            let id = states.len();
            index.insert(next.clone(), id);
            states.push(next);
            arena.push(NodeRec {
                parent: Some((at, format!("{a:?}"))),
                depth: depth + 1,
            });
        }
    }

    Exploration {
        verdict: Verdict::Ok,
        states: states.len(),
        depth: max_seen_depth,
        truncated,
        trace: None,
    }
}

/// Seeded random walks: `walks` runs of up to `depth` uniformly-chosen
/// actions each. Far cheaper than [`explore`] per state and reaches depths
/// the exhaustive bound cannot; the same `seed` always reproduces the same
/// walks, so a reported trace is replayable by re-running with that seed.
pub fn random_walks<S: TransitionSystem>(
    sys: &S,
    seed: u64,
    walks: u32,
    depth: usize,
) -> Exploration {
    let mut rng = Pcg32::with_stream(seed, 0x51ed);
    let mut states_seen = 0usize;
    let mut max_depth = 0usize;
    for _ in 0..walks {
        let mut state = sys.initial();
        let mut steps: Vec<String> = Vec::new();
        for d in 0..depth {
            if let Some(detail) = sys.violation(&state) {
                return Exploration {
                    verdict: Verdict::Violation,
                    states: states_seen,
                    depth: max_depth.max(d),
                    truncated: true,
                    trace: Some(Trace { steps, detail }),
                };
            }
            let actions = sys.actions(&state);
            if actions.is_empty() {
                if !sys.is_accepting(&state) {
                    return Exploration {
                        verdict: Verdict::Deadlock,
                        states: states_seen,
                        depth: max_depth.max(d),
                        truncated: true,
                        trace: Some(Trace {
                            steps,
                            detail: String::new(),
                        }),
                    };
                }
                break;
            }
            let a = &actions[rng.gen_index(0, actions.len())];
            steps.push(format!("{a:?}"));
            state = sys.apply(&state, a);
            states_seen += 1;
            max_depth = max_depth.max(d + 1);
        }
    }
    Exploration {
        verdict: Verdict::Ok,
        states: states_seen,
        depth: max_depth,
        truncated: true, // sampling never certifies the full space
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that must stay below a limit; `Bump` increments, `Reset`
    /// clears. With `limit` unreachable within the depth bound, exploration
    /// is clean; otherwise it finds the shortest bump sequence.
    struct Counter {
        limit: u32,
        stuck_at: Option<u32>,
    }

    impl TransitionSystem for Counter {
        type State = u32;
        type Action = &'static str;

        fn initial(&self) -> u32 {
            0
        }
        fn actions(&self, s: &u32) -> Vec<&'static str> {
            if Some(*s) == self.stuck_at {
                return Vec::new(); // deadlock: not accepting, no moves
            }
            vec!["bump", "reset"]
        }
        fn apply(&self, s: &u32, a: &&'static str) -> u32 {
            match *a {
                "bump" => s + 1,
                _ => 0,
            }
        }
        fn violation(&self, s: &u32) -> Option<String> {
            (*s >= self.limit).then(|| format!("counter reached {s}"))
        }
        fn is_accepting(&self, _: &u32) -> bool {
            false
        }
    }

    #[test]
    fn finds_shortest_violation() {
        let sys = Counter {
            limit: 3,
            stuck_at: None,
        };
        let ex = explore(&sys, 10, 10_000);
        assert_eq!(ex.verdict, Verdict::Violation);
        let t = ex.trace.unwrap();
        assert_eq!(t.steps, vec!["\"bump\""; 3]);
        assert!(t.detail.contains("3"));
    }

    #[test]
    fn clean_within_bound_is_truncated_ok() {
        let sys = Counter {
            limit: 100,
            stuck_at: None,
        };
        let ex = explore(&sys, 5, 10_000);
        assert_eq!(ex.verdict, Verdict::Ok);
        assert!(ex.truncated, "depth bound must mark the result partial");
        assert_eq!(ex.states, 6); // counter values 0..=5; resets dedup to 0
    }

    #[test]
    fn detects_deadlock() {
        let sys = Counter {
            limit: 100,
            stuck_at: Some(2),
        };
        let ex = explore(&sys, 10, 10_000);
        assert_eq!(ex.verdict, Verdict::Deadlock);
        assert_eq!(ex.trace.unwrap().steps.len(), 2);
    }

    #[test]
    fn random_walks_reproduce_with_seed() {
        let sys = Counter {
            limit: 4,
            stuck_at: None,
        };
        let a = random_walks(&sys, 7, 50, 20);
        let b = random_walks(&sys, 7, 50, 20);
        assert_eq!(a.verdict, b.verdict);
        match (&a.trace, &b.trace) {
            (Some(x), Some(y)) => assert_eq!(x.steps, y.steps),
            (None, None) => {}
            _ => panic!("seeded walks diverged"),
        }
    }
}
