//! Small deterministic PRNG (PCG-XSH-RR 64/32).
//!
//! The simulator must be hermetic — no external crates — and bit-for-bit
//! reproducible across platforms, so we carry our own generator instead of
//! depending on `rand`. PCG32 has a 64-bit state, excellent statistical
//! quality for simulation purposes, and a trivially portable
//! implementation. It seeds fault injection ([`crate::fault::FaultPlan`]),
//! input generation in `dlb-apps`, and the seeded-loop property tests.

/// Permuted congruential generator, 64-bit state / 32-bit output.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;
const PCG_DEFAULT_STREAM: u64 = 1442695040888963407;

impl Pcg32 {
    /// Seeded generator on the default stream.
    pub fn new(seed: u64) -> Pcg32 {
        Pcg32::with_stream(seed, PCG_DEFAULT_STREAM)
    }

    /// Seeded generator on a caller-chosen stream; distinct streams with the
    /// same seed produce independent sequences.
    pub fn with_stream(seed: u64, stream: u64) -> Pcg32 {
        let inc = (stream << 1) | 1;
        let mut rng = Pcg32 { state: 0, inc };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[-1, 1)`.
    pub fn next_f64_signed(&mut self) -> f64 {
        self.next_f64() * 2.0 - 1.0
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping is fine for simulation use;
        // bias is bounded by span / 2^64.
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn gen_index(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo as u64, hi as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Pcg32::new(42);
        let mut b = Pcg32::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3, "different seeds should diverge");
    }

    #[test]
    fn streams_differ() {
        let mut a = Pcg32::with_stream(7, 1);
        let mut b = Pcg32::with_stream(7, 2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3, "different streams should diverge");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = Pcg32::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
