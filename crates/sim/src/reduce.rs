//! State-space reductions for the explicit-state explorer: symmetry
//! (orbit canonicalization), partial-order (ample sets), and 64-bit state
//! fingerprinting.
//!
//! The naive [`crate::explore::explore`] enumerates every interleaving of
//! every concretely-named process, which caps the checkable width of a
//! protocol model at a handful of slaves. The three reductions here close
//! the gap to runtime widths (16 slaves / deputies):
//!
//! * **Symmetry** ([`Symmetric`]): slaves with identical roles are
//!   interchangeable, so the explorer visits one canonical representative
//!   per permutation orbit. `canonical` must return a state *in the orbit
//!   of its input* (i.e. reachable by an admissible relabeling); any
//!   imperfection in which representative is chosen costs deduplication,
//!   never soundness — two states merge only if one is literally a
//!   relabeling of the other.
//! * **Partial order** ([`Ample`]): commuting independent actions (e.g.
//!   an acknowledgement delivery that only advances a sender watermark)
//!   need only one interleaving. `ample` returns a nonempty subset of the
//!   enabled actions to expand; returning the full set opts out.
//! * **Fingerprinting** ([`ReduceConfig::fingerprint`]): the visited set
//!   stores 64-bit FNV-1a hashes of canonical states instead of the states
//!   themselves, cutting the dominant memory cost at wide frontiers. A
//!   hash collision silently merges two distinct states (possible missed
//!   bug, never a false alarm); the exact mode is the escape hatch.
//!
//! Counterexample traces from a symmetry-reduced run are sequences of
//! actions valid from each *canonical* state: replay them by applying the
//! action and then re-canonicalizing after every step.

use crate::explore::{Exploration, Trace, TransitionSystem, Verdict};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::hash::{Hash, Hasher};

/// Deterministic 64-bit FNV-1a [`Hasher`] used for state fingerprints, so
/// fingerprints (unlike `std`'s randomly-keyed defaults) are stable across
/// runs and replayable.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64(0xcbf29ce484222325)
    }
}

impl Hasher for Fnv64 {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of a (canonical) state.
pub fn fingerprint<T: Hash>(value: &T) -> u64 {
    let mut h = Fnv64::default();
    value.hash(&mut h);
    h.finish()
}

/// A transition system whose states can be canonicalized under a symmetry
/// group (typically: permutations of interchangeable slave/deputy indices).
pub trait Symmetric: TransitionSystem {
    /// Map `state` to the canonical representative of its orbit. Must
    /// return a state reachable from `state` by an admissible relabeling —
    /// in particular `canonical(canonical(s)) == canonical(s)` and the
    /// invariants ([`TransitionSystem::violation`],
    /// [`TransitionSystem::is_accepting`]) must be permutation-invariant.
    fn canonical(&self, state: &Self::State) -> Self::State;
}

/// A transition system that can name an ample subset of its enabled
/// actions: expanding only the subset must preserve every invariant
/// verdict (the actions left out commute with the chosen ones and stay
/// enabled until taken).
pub trait Ample: TransitionSystem {
    /// Select the subset of `enabled` to expand from `state`. Must be
    /// nonempty whenever `enabled` is; returning `enabled` unchanged opts
    /// out of the reduction for this state.
    fn ample(&self, state: &Self::State, enabled: Vec<Self::Action>) -> Vec<Self::Action>;
}

/// Bounds and toggles for [`explore_reduced`].
#[derive(Clone, Copy, Debug)]
pub struct ReduceConfig {
    pub max_depth: usize,
    pub max_states: usize,
    /// Canonicalize every state via [`Symmetric::canonical`].
    pub symmetry: bool,
    /// Expand only [`Ample::ample`] subsets.
    pub ample: bool,
    /// Store 64-bit fingerprints in the visited set instead of full states
    /// (exact mode is the collision-free escape hatch).
    pub fingerprint: bool,
}

impl Default for ReduceConfig {
    fn default() -> ReduceConfig {
        ReduceConfig {
            max_depth: 64,
            max_states: 2_000_000,
            symmetry: true,
            ample: true,
            fingerprint: true,
        }
    }
}

/// Counters the reductions expose for benchmarking and capacity planning.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReduceStats {
    /// States whose actions were expanded.
    pub expanded: usize,
    /// Enabled actions skipped by the ample-set reduction.
    pub pruned_actions: usize,
    /// Approximate bytes held by the visited set at the end of the search
    /// (8 per fingerprint; a shallow size estimate per exact state).
    pub visited_bytes: usize,
}

enum Visited<T: Ord + Hash> {
    Exact(BTreeSet<T>),
    Finger(HashSet<u64>),
}

impl<T: Ord + Hash + Clone> Visited<T> {
    /// Insert; true if the state was new.
    fn insert(&mut self, state: &T) -> bool {
        match self {
            Visited::Exact(set) => set.insert(state.clone()),
            Visited::Finger(set) => set.insert(fingerprint(state)),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            Visited::Exact(set) => set.len() * std::mem::size_of::<T>(),
            Visited::Finger(set) => set.len() * std::mem::size_of::<u64>(),
        }
    }
}

/// Exhaustive BFS with the configured reductions applied. Same contract as
/// [`crate::explore::explore`]: the shallowest violation or deadlock found
/// stops the search and yields its trace (replay with re-canonicalization
/// after each step when symmetry is on).
pub fn explore_reduced<S>(sys: &S, cfg: &ReduceConfig) -> (Exploration, ReduceStats)
where
    S: Symmetric + Ample,
    S::State: Hash,
{
    struct NodeRec {
        parent: Option<(usize, String)>,
        depth: usize,
    }
    let canon = |s: S::State| -> S::State {
        if cfg.symmetry {
            sys.canonical(&s)
        } else {
            s
        }
    };

    let mut stats = ReduceStats::default();
    let mut visited: Visited<S::State> = if cfg.fingerprint {
        Visited::Finger(HashSet::new())
    } else {
        Visited::Exact(BTreeSet::new())
    };
    // Arena of back-pointers for every state ever admitted; full states
    // live only in the BFS frontier (the whole point of fingerprinting).
    let mut arena: Vec<NodeRec> = vec![NodeRec {
        parent: None,
        depth: 0,
    }];
    let mut frontier: VecDeque<(usize, S::State)> = VecDeque::new();
    let init = canon(sys.initial());
    visited.insert(&init);
    frontier.push_back((0, init));
    let mut admitted = 1usize;

    let rebuild = |arena: &[NodeRec], mut at: usize, detail: String| {
        let mut steps = Vec::new();
        while let Some((p, a)) = &arena[at].parent {
            steps.push(a.clone());
            at = *p;
        }
        steps.reverse();
        Trace { steps, detail }
    };
    let done = |verdict,
                admitted,
                depth,
                truncated,
                trace,
                mut stats: ReduceStats,
                v: &Visited<S::State>| {
        stats.visited_bytes = v.bytes();
        (
            Exploration {
                verdict,
                states: admitted,
                depth,
                truncated,
                trace,
            },
            stats,
        )
    };

    let mut truncated = false;
    let mut max_seen_depth = 0usize;
    while let Some((at, state)) = frontier.pop_front() {
        let depth = arena[at].depth;
        max_seen_depth = max_seen_depth.max(depth);

        if let Some(detail) = sys.violation(&state) {
            let trace = Some(rebuild(&arena, at, detail));
            return done(
                Verdict::Violation,
                admitted,
                max_seen_depth,
                truncated,
                trace,
                stats,
                &visited,
            );
        }
        let mut actions = sys.actions(&state);
        if actions.is_empty() {
            if !sys.is_accepting(&state) {
                let trace = Some(rebuild(&arena, at, String::new()));
                return done(
                    Verdict::Deadlock,
                    admitted,
                    max_seen_depth,
                    truncated,
                    trace,
                    stats,
                    &visited,
                );
            }
            continue;
        }
        if depth >= cfg.max_depth {
            truncated = true;
            continue;
        }
        if cfg.ample {
            let full = actions.len();
            actions = sys.ample(&state, actions);
            debug_assert!(!actions.is_empty(), "ample set must be nonempty");
            stats.pruned_actions += full - actions.len();
        }
        stats.expanded += 1;
        for a in actions {
            let next = canon(sys.apply(&state, &a));
            if !visited.insert(&next) {
                continue;
            }
            if admitted >= cfg.max_states {
                truncated = true;
                continue;
            }
            let id = arena.len();
            arena.push(NodeRec {
                parent: Some((at, format!("{a:?}"))),
                depth: depth + 1,
            });
            frontier.push_back((id, next));
            admitted += 1;
        }
    }

    done(
        Verdict::Ok,
        admitted,
        max_seen_depth,
        truncated,
        None,
        stats,
        &visited,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tokens on N symmetric pegs: `Add(p)` places one of a bounded pool on
    /// peg `p`, `Take(p)` removes one. The invariant caps any single peg.
    /// Pegs are fully interchangeable, and adds to distinct pegs commute.
    struct Pegs {
        pegs: usize,
        pool: u32,
        cap: u32,
    }

    impl TransitionSystem for Pegs {
        type State = (Vec<u32>, u32);
        type Action = (&'static str, usize);

        fn initial(&self) -> Self::State {
            (vec![0; self.pegs], self.pool)
        }
        fn actions(&self, s: &Self::State) -> Vec<Self::Action> {
            let mut out = Vec::new();
            for p in 0..self.pegs {
                if s.1 > 0 {
                    out.push(("add", p));
                }
                if s.0[p] > 0 {
                    out.push(("take", p));
                }
            }
            out
        }
        fn apply(&self, s: &Self::State, a: &Self::Action) -> Self::State {
            let mut n = s.clone();
            match a.0 {
                "add" => {
                    n.0[a.1] += 1;
                    n.1 -= 1;
                }
                _ => {
                    n.0[a.1] -= 1;
                    n.1 += 1;
                }
            }
            n
        }
        fn violation(&self, s: &Self::State) -> Option<String> {
            s.0.iter()
                .any(|&c| c > self.cap)
                .then(|| format!("peg over cap in {:?}", s.0))
        }
        fn is_accepting(&self, _: &Self::State) -> bool {
            true
        }
    }

    impl Symmetric for Pegs {
        fn canonical(&self, s: &Self::State) -> Self::State {
            let mut n = s.clone();
            n.0.sort_unstable();
            n
        }
    }

    impl Ample for Pegs {
        fn ample(&self, _s: &Self::State, enabled: Vec<Self::Action>) -> Vec<Self::Action> {
            enabled
        }
    }

    fn cfg(symmetry: bool, fingerprint: bool) -> ReduceConfig {
        ReduceConfig {
            max_depth: 32,
            max_states: 1_000_000,
            symmetry,
            ample: true,
            fingerprint,
        }
    }

    #[test]
    fn symmetry_collapses_peg_orbits() {
        let sys = Pegs {
            pegs: 6,
            pool: 3,
            cap: 9,
        };
        let (full, _) = explore_reduced(&sys, &cfg(false, false));
        let (reduced, _) = explore_reduced(&sys, &cfg(true, false));
        assert_eq!(full.verdict, Verdict::Ok);
        assert_eq!(reduced.verdict, Verdict::Ok);
        assert!(
            reduced.states * 4 < full.states,
            "orbits must collapse: {} vs {}",
            reduced.states,
            full.states
        );
    }

    #[test]
    fn reduced_still_finds_the_violation() {
        let sys = Pegs {
            pegs: 4,
            pool: 3,
            cap: 2,
        };
        for fingerprint in [false, true] {
            let (ex, _) = explore_reduced(&sys, &cfg(true, fingerprint));
            assert_eq!(ex.verdict, Verdict::Violation);
            let t = ex.trace.unwrap();
            assert_eq!(t.steps.len(), 3, "shortest path is three adds");
        }
    }

    #[test]
    fn fingerprint_and_exact_agree() {
        let sys = Pegs {
            pegs: 5,
            pool: 4,
            cap: 9,
        };
        let (exact, se) = explore_reduced(&sys, &cfg(true, false));
        let (finger, sf) = explore_reduced(&sys, &cfg(true, true));
        assert_eq!(exact.verdict, finger.verdict);
        assert_eq!(exact.states, finger.states);
        assert!(
            sf.visited_bytes < se.visited_bytes,
            "fingerprints must be smaller: {} vs {}",
            sf.visited_bytes,
            se.visited_bytes
        );
    }

    #[test]
    fn fingerprints_are_deterministic() {
        assert_eq!(
            fingerprint(&(1u32, vec![2u8, 3])),
            fingerprint(&(1u32, vec![2u8, 3]))
        );
        assert_ne!(fingerprint(&1u64), fingerprint(&2u64));
    }
}
