//! Competing-load models.
//!
//! The paper evaluates its balancer on workstations whose CPUs are shared
//! with other users' tasks. We model the *competing load* on a node as a
//! piecewise-constant function `k(t)`: the number of competing runnable
//! tasks at virtual time `t`. The quantum scheduler in [`crate::cpu`] then
//! gives the application one quantum out of every `k(t) + 1`.

use crate::time::{SimDuration, SimTime};

/// Piecewise-constant competing-load model for one node.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadModel {
    /// No competing tasks, ever (a dedicated machine).
    Dedicated,
    /// A constant number of competing tasks (the paper's Figures 7 and 8 use
    /// one constant competing task on processor 0).
    Constant(u32),
    /// A square wave: `tasks` competing tasks during the first `duty` of
    /// every `period`, none otherwise (the paper's Figure 9 uses a 20 s
    /// period with a 10 s loaded duration).
    Oscillating {
        period: SimDuration,
        duty: SimDuration,
        tasks: u32,
    },
    /// An explicit trace: `(start_time, tasks)` pairs sorted by time; each
    /// value holds until the next entry, the last value holds forever.
    /// An empty trace means dedicated.
    Trace(Vec<(SimTime, u32)>),
}

impl LoadModel {
    /// Number of competing runnable tasks at time `t`.
    pub fn tasks_at(&self, t: SimTime) -> u32 {
        match self {
            LoadModel::Dedicated => 0,
            LoadModel::Constant(k) => *k,
            LoadModel::Oscillating {
                period,
                duty,
                tasks,
            } => {
                debug_assert!(duty <= period && !period.is_zero());
                let phase = t.micros() % period.micros();
                if phase < duty.micros() {
                    *tasks
                } else {
                    0
                }
            }
            LoadModel::Trace(points) => {
                let mut k = 0;
                for &(start, tasks) in points {
                    if start <= t {
                        k = tasks;
                    } else {
                        break;
                    }
                }
                k
            }
        }
    }

    /// The next instant strictly after `t` at which `k` changes, or `None`
    /// if the load is constant from `t` onwards.
    pub fn next_change(&self, t: SimTime) -> Option<SimTime> {
        match self {
            LoadModel::Dedicated | LoadModel::Constant(_) => None,
            LoadModel::Oscillating { period, duty, .. } => {
                if duty.is_zero() || *duty == *period {
                    return None; // degenerate: constant either way
                }
                let p = period.micros();
                let d = duty.micros();
                let phase = t.micros() % p;
                let cycle_start = t.micros() - phase;
                let next = if phase < d {
                    cycle_start + d
                } else {
                    cycle_start + p
                };
                Some(SimTime(next))
            }
            LoadModel::Trace(points) => {
                let current = self.tasks_at(t);
                points
                    .iter()
                    .find(|&&(start, tasks)| start > t && tasks != current)
                    .map(|&(start, _)| start)
            }
        }
    }

    /// Total time within `[a, b)` during which at least one competing task is
    /// runnable. Used for the paper's efficiency metric: competing tasks soak
    /// up all CPU the application does not use whenever `k(t) > 0`.
    pub fn loaded_integral(&self, a: SimTime, b: SimTime) -> SimDuration {
        if b <= a {
            return SimDuration::ZERO;
        }
        let mut total = 0u64;
        let mut t = a;
        while t < b {
            let k = self.tasks_at(t);
            let seg_end = match self.next_change(t) {
                Some(c) if c < b => c,
                _ => b,
            };
            if k > 0 {
                total += seg_end.micros() - t.micros();
            }
            t = seg_end;
        }
        SimDuration::from_micros(total)
    }

    /// True if this model never has competing tasks.
    pub fn is_dedicated(&self) -> bool {
        match self {
            LoadModel::Dedicated => true,
            LoadModel::Constant(k) => *k == 0,
            LoadModel::Oscillating { duty, tasks, .. } => duty.is_zero() || *tasks == 0,
            LoadModel::Trace(points) => points.iter().all(|&(_, k)| k == 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> SimTime {
        SimTime(n * 1_000_000)
    }
    fn d(n: u64) -> SimDuration {
        SimDuration::from_secs(n)
    }

    #[test]
    fn dedicated_and_constant() {
        assert_eq!(LoadModel::Dedicated.tasks_at(s(5)), 0);
        assert!(LoadModel::Dedicated.is_dedicated());
        assert_eq!(LoadModel::Constant(3).tasks_at(s(5)), 3);
        assert_eq!(LoadModel::Constant(3).next_change(s(5)), None);
        assert!(!LoadModel::Constant(3).is_dedicated());
        assert!(LoadModel::Constant(0).is_dedicated());
    }

    #[test]
    fn oscillating_square_wave() {
        // Paper Fig. 9: 20 s period, 10 s loaded.
        let m = LoadModel::Oscillating {
            period: d(20),
            duty: d(10),
            tasks: 1,
        };
        assert_eq!(m.tasks_at(s(0)), 1);
        assert_eq!(m.tasks_at(s(9)), 1);
        assert_eq!(m.tasks_at(s(10)), 0);
        assert_eq!(m.tasks_at(s(19)), 0);
        assert_eq!(m.tasks_at(s(20)), 1);
        assert_eq!(m.next_change(s(0)), Some(s(10)));
        assert_eq!(m.next_change(s(10)), Some(s(20)));
        assert_eq!(m.next_change(s(15)), Some(s(20)));
        // Exactly half of each period is loaded.
        assert_eq!(m.loaded_integral(s(0), s(40)), d(20));
        assert_eq!(m.loaded_integral(s(5), s(25)), d(10));
    }

    #[test]
    fn oscillating_degenerate() {
        let never = LoadModel::Oscillating {
            period: d(20),
            duty: SimDuration::ZERO,
            tasks: 1,
        };
        assert!(never.is_dedicated());
        assert_eq!(never.next_change(s(3)), None);
        let always = LoadModel::Oscillating {
            period: d(20),
            duty: d(20),
            tasks: 2,
        };
        assert_eq!(always.tasks_at(s(7)), 2);
        assert_eq!(always.next_change(s(7)), None);
    }

    #[test]
    fn trace_lookup() {
        let m = LoadModel::Trace(vec![(s(0), 0), (s(10), 2), (s(30), 0)]);
        assert_eq!(m.tasks_at(s(5)), 0);
        assert_eq!(m.tasks_at(s(10)), 2);
        assert_eq!(m.tasks_at(s(29)), 2);
        assert_eq!(m.tasks_at(s(31)), 0);
        assert_eq!(m.next_change(s(0)), Some(s(10)));
        assert_eq!(m.next_change(s(10)), Some(s(30)));
        assert_eq!(m.next_change(s(31)), None);
        assert_eq!(m.loaded_integral(s(0), s(40)), d(20));
    }

    #[test]
    fn empty_trace_is_dedicated() {
        let m = LoadModel::Trace(vec![]);
        assert_eq!(m.tasks_at(s(1)), 0);
        assert!(m.is_dedicated());
        assert_eq!(m.next_change(SimTime::ZERO), None);
    }

    #[test]
    fn trace_skips_no_op_changes() {
        // A trace entry that does not change k is not a "change".
        let m = LoadModel::Trace(vec![(s(0), 1), (s(10), 1), (s(20), 0)]);
        assert_eq!(m.next_change(s(0)), Some(s(20)));
    }

    #[test]
    fn loaded_integral_empty_and_reversed() {
        let m = LoadModel::Constant(1);
        assert_eq!(m.loaded_integral(s(5), s(5)), SimDuration::ZERO);
        assert_eq!(m.loaded_integral(s(9), s(5)), SimDuration::ZERO);
        assert_eq!(m.loaded_integral(s(5), s(9)), d(4));
    }
}
