//! Stable, machine-readable event-trace format for the kernel.
//!
//! The kernel can narrate its event loop two ways — echoed to stderr when
//! `DLB_TRACE_EVENTS` is set, or recorded into [`crate::SimReport`] via
//! [`crate::SimBuilder::record_trace`]. Both use this one line format, so
//! a captured stderr dump and a recorded trace are interchangeable inputs
//! to downstream tooling (notably `dlb-lint --conform`, which replays a
//! runtime trace through the protocol models):
//!
//! ```text
//! DLBTRACE 1
//! EV <time> SEND <src> <dst> <bytes> [tag...]
//! EV <time> DELIVER <src> <dst> <bytes> [tag...]
//! EV <time> WAKE <actor>
//! EV <time> CRASH <node>
//! ```
//!
//! `SEND` is recorded when an actor hands a message to the network —
//! *before* any fault draw, so dropped messages still show their send.
//! `DELIVER` is the mailbox arrival. The optional `tag` is everything
//! after the fixed fields (it may contain spaces) and is produced by the
//! message tagger installed with [`crate::SimBuilder::trace_tag`];
//! untagged messages trace with no tag. Times are integer microseconds,
//! actors/nodes are ids. The leading `DLBTRACE 1` header versions the
//! format; unknown lines are a parse error, not silently skipped.

use crate::time::SimTime;

/// Format version emitted in the header line.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// One traced kernel event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub time: SimTime,
    pub kind: TraceKind,
}

/// What happened. `Send` and `Deliver` carry the optional message tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    Send {
        src: usize,
        dst: usize,
        bytes: u64,
        tag: Option<String>,
    },
    Deliver {
        src: usize,
        dst: usize,
        bytes: u64,
        tag: Option<String>,
    },
    Wake {
        actor: usize,
    },
    Crash {
        node: usize,
    },
}

impl TraceEvent {
    /// Render as one stable `EV ...` line (no trailing newline).
    pub fn render(&self) -> String {
        let t = self.time.0;
        match &self.kind {
            TraceKind::Send {
                src,
                dst,
                bytes,
                tag,
            } => match tag {
                Some(tag) => format!("EV {t} SEND {src} {dst} {bytes} {tag}"),
                None => format!("EV {t} SEND {src} {dst} {bytes}"),
            },
            TraceKind::Deliver {
                src,
                dst,
                bytes,
                tag,
            } => match tag {
                Some(tag) => format!("EV {t} DELIVER {src} {dst} {bytes} {tag}"),
                None => format!("EV {t} DELIVER {src} {dst} {bytes}"),
            },
            TraceKind::Wake { actor } => format!("EV {t} WAKE {actor}"),
            TraceKind::Crash { node } => format!("EV {t} CRASH {node}"),
        }
    }

    /// Parse one `EV ...` line.
    pub fn parse(line: &str) -> Result<TraceEvent, String> {
        let mut it = line.split_whitespace();
        let bad = || format!("malformed trace line: {line:?}");
        if it.next() != Some("EV") {
            return Err(bad());
        }
        let time = SimTime(it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?);
        let kind = it.next().ok_or_else(bad)?;
        let num = |it: &mut std::str::SplitWhitespace| -> Result<usize, String> {
            it.next().ok_or_else(bad)?.parse().map_err(|_| bad())
        };
        let kind = match kind {
            "SEND" | "DELIVER" => {
                let src = num(&mut it)?;
                let dst = num(&mut it)?;
                let bytes = num(&mut it)? as u64;
                let rest: Vec<&str> = it.collect();
                let tag = (!rest.is_empty()).then(|| rest.join(" "));
                if kind == "SEND" {
                    TraceKind::Send {
                        src,
                        dst,
                        bytes,
                        tag,
                    }
                } else {
                    TraceKind::Deliver {
                        src,
                        dst,
                        bytes,
                        tag,
                    }
                }
            }
            "WAKE" => TraceKind::Wake {
                actor: num(&mut it)?,
            },
            "CRASH" => TraceKind::Crash {
                node: num(&mut it)?,
            },
            _ => return Err(bad()),
        };
        Ok(TraceEvent { time, kind })
    }
}

/// Render a full trace: header line plus one line per event.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut out = format!("DLBTRACE {TRACE_FORMAT_VERSION}\n");
    for ev in events {
        out.push_str(&ev.render());
        out.push('\n');
    }
    out
}

/// Parse a full trace (header required; blank lines allowed).
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    match lines.next() {
        Some(h) if h.trim() == format!("DLBTRACE {TRACE_FORMAT_VERSION}") => {}
        Some(h) => return Err(format!("unsupported trace header: {h:?}")),
        None => return Err("empty trace".into()),
    }
    lines.map(|l| TraceEvent::parse(l.trim())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip() {
        let events = vec![
            TraceEvent {
                time: SimTime(0),
                kind: TraceKind::Wake { actor: 3 },
            },
            TraceEvent {
                time: SimTime(17),
                kind: TraceKind::Send {
                    src: 1,
                    dst: 2,
                    bytes: 56,
                    tag: Some("candidacy term=1 cand=0 fresh=3".into()),
                },
            },
            TraceEvent {
                time: SimTime(42),
                kind: TraceKind::Deliver {
                    src: 1,
                    dst: 2,
                    bytes: 56,
                    tag: None,
                },
            },
            TraceEvent {
                time: SimTime(99),
                kind: TraceKind::Crash { node: 0 },
            },
        ];
        let text = render_trace(&events);
        assert!(text.starts_with("DLBTRACE 1\n"), "{text}");
        assert_eq!(parse_trace(&text).unwrap(), events);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_trace("").is_err());
        assert!(parse_trace("DLBTRACE 9\nEV 0 WAKE 1\n").is_err());
        assert!(parse_trace("DLBTRACE 1\nEV zero WAKE 1\n").is_err());
        assert!(parse_trace("DLBTRACE 1\nEV 0 EXPLODE 1\n").is_err());
        assert!(TraceEvent::parse("EV 5 SEND 1").is_err());
    }
}
