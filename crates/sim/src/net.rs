//! Network model: a crossbar connecting all nodes (Nectar-style).
//!
//! Every ordered pair of actors is connected. A message of `b` bytes sent at
//! time `t` occupies the sender's link for `b / bandwidth`, then arrives
//! after an additional fixed `latency`. Messages between the same ordered
//! pair are delivered FIFO. Send/receive marshalling costs are charged to
//! the endpoint CPUs so that master↔slave interaction overhead is nonzero —
//! the paper's frequency-selection rule keys off that cost.

use crate::time::SimDuration;
use crate::work::CpuWork;

/// Network configuration shared by all links.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Fixed propagation + protocol latency per message.
    pub latency: SimDuration,
    /// Link bandwidth in bytes per second of virtual time.
    pub bandwidth: u64,
    /// CPU cost charged to the sender per message (marshalling, syscall).
    pub send_cpu_per_msg: CpuWork,
    /// CPU cost charged to the sender per byte.
    pub send_cpu_per_byte_ns: u64,
    /// CPU cost charged to the receiver per message.
    pub recv_cpu_per_msg: CpuWork,
}

impl Default for NetConfig {
    fn default() -> Self {
        // LAN-class defaults calibrated to early-90s workstation networking:
        // ~100 us latency, 10 MB/s effective bandwidth, ~200 us of CPU per
        // message at each end, ~10 ns/byte copy cost.
        NetConfig {
            latency: SimDuration::from_micros(100),
            bandwidth: 10_000_000,
            send_cpu_per_msg: CpuWork::from_micros(200),
            send_cpu_per_byte_ns: 10,
            recv_cpu_per_msg: CpuWork::from_micros(200),
        }
    }
}

impl NetConfig {
    /// An idealized network with zero cost; useful in unit tests where
    /// network timing is irrelevant.
    pub fn ideal() -> Self {
        NetConfig {
            latency: SimDuration::ZERO,
            bandwidth: u64::MAX,
            send_cpu_per_msg: CpuWork::ZERO,
            send_cpu_per_byte_ns: 0,
            recv_cpu_per_msg: CpuWork::ZERO,
        }
    }

    /// Wire occupancy time for a message of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.bandwidth == u64::MAX || bytes == 0 {
            return SimDuration::ZERO;
        }
        assert!(self.bandwidth > 0, "bandwidth must be positive");
        // ceil(bytes * 1e6 / bandwidth) microseconds, computed in u128 to
        // avoid overflow for large transfers.
        let us = ((bytes as u128) * 1_000_000).div_ceil(self.bandwidth as u128);
        SimDuration::from_micros(us as u64)
    }

    /// CPU work charged to the sender for a message of `bytes`.
    pub fn send_cpu(&self, bytes: u64) -> CpuWork {
        self.send_cpu_per_msg + CpuWork::from_micros(bytes * self.send_cpu_per_byte_ns / 1_000)
    }
}

/// A delivered message with its provenance.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Index of the sending actor.
    pub src: usize,
    /// Payload.
    pub msg: M,
    /// Size used for timing (bytes on the wire).
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_rounds_up() {
        let net = NetConfig {
            bandwidth: 1_000_000, // 1 MB/s => 1 us per byte
            ..NetConfig::default()
        };
        assert_eq!(net.transfer_time(1).micros(), 1);
        assert_eq!(net.transfer_time(1500).micros(), 1500);
        assert_eq!(net.transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn ideal_network_is_free() {
        let net = NetConfig::ideal();
        assert_eq!(net.transfer_time(1 << 30), SimDuration::ZERO);
        assert_eq!(net.send_cpu(1 << 20), CpuWork::ZERO);
        assert_eq!(net.latency, SimDuration::ZERO);
    }

    #[test]
    fn send_cpu_includes_per_byte() {
        let net = NetConfig {
            send_cpu_per_msg: CpuWork::from_micros(100),
            send_cpu_per_byte_ns: 1000, // 1 us per byte
            ..NetConfig::default()
        };
        assert_eq!(net.send_cpu(50).micros(), 150);
    }

    #[test]
    fn large_transfer_no_overflow() {
        let net = NetConfig {
            bandwidth: 10_000_000,
            ..NetConfig::default()
        };
        // 1 TB at 10 MB/s = 1e5 seconds.
        assert_eq!(
            net.transfer_time(1_000_000_000_000).as_secs_f64(),
            100_000.0
        );
    }
}
