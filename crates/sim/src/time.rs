//! Virtual time types.
//!
//! All simulation time is kept in integer **microseconds** so that the
//! quantum-scheduler arithmetic in [`crate::cpu`] is exact and runs are
//! bit-for-bit reproducible. Floating point only appears at the edges
//! (reporting, calibration).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" for deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Microseconds since simulation start.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later than
    /// `self` (in release builds too — time arithmetic must never wrap).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier > self"),
        )
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Build from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Build from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Build from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Build from fractional seconds, rounding to the nearest microsecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and >= 0"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest microsecond.
    #[inline]
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f >= 0.0 && f.is_finite(), "scale must be finite and >= 0");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimDuration::from_millis(3).micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).micros(), 2_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(1e-6).micros(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(t.micros(), 1_000_000);
        assert_eq!((t - SimTime::ZERO).micros(), 1_000_000);
        assert_eq!((t - SimDuration::from_millis(500)).micros(), 500_000);
        assert_eq!((SimDuration::from_secs(1) * 3).micros(), 3_000_000);
        assert_eq!((SimDuration::from_secs(1) / 4).micros(), 250_000);
    }

    #[test]
    fn since_and_saturating() {
        let a = SimTime(100);
        let b = SimTime(250);
        assert_eq!(b.since(a).micros(), 150);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(
            SimDuration(5).saturating_sub(SimDuration(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration(100).mul_f64(1.5).micros(), 150);
        assert_eq!(SimDuration(3).mul_f64(0.5).micros(), 2); // round half to even? .round() -> 2 (1.5 rounds to 2)
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let _ = SimTime(5) - SimTime(10);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SimTime(1_500_000)), "1.500000");
        assert_eq!(format!("{:?}", SimDuration(250_000)), "0.250000s");
    }
}
