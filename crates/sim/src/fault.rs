//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes the ways a simulated cluster misbehaves:
//! per-link message **drop**, **duplication**, and **extra-delay jitter**
//! probabilities, plus node-level **crash** (fail-stop at a virtual time)
//! and **freeze** windows (the node is unresponsive for an interval, then
//! resumes where it left off — a long scheduling stall or GC pause).
//!
//! All randomness flows from a single seeded [`Pcg32`] owned by the kernel,
//! and every draw happens at a deterministic point in the event order, so
//! identical seed + identical plan ⇒ identical event trace (checked via
//! [`crate::SimReport::trace_hash`]).
//!
//! Semantics:
//! - **drop**: the message consumes CPU and link time at the sender as
//!   normal (the loss happens in the network), but no delivery event is
//!   scheduled.
//! - **duplicate**: a second copy arrives after the original. Both copies
//!   respect per-(src,dst) FIFO ordering.
//! - **jitter**: extra delay is added *before* the FIFO ordering clamp, so
//!   a jittered message delays everything behind it rather than being
//!   overtaken — per-pair FIFO is preserved (TCP-like behavior).
//! - **crash**: fail-stop. The node's actor never runs again and messages
//!   addressed to it are discarded (and counted).
//! - **freeze**: events targeting the node inside a window `[from, until)`
//!   are deferred to `until`, preserving their relative order.
//! - **partition**: the node set splits into groups for a window
//!   `[from, until)`; every message crossing a group boundary is dropped
//!   (deterministically — no RNG draw), then the network heals. Nodes not
//!   listed in any group stay in group 0.

use crate::rng::Pcg32;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Per-link fault probabilities.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently lost.
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub dup_p: f64,
    /// Probability a message suffers extra delay.
    pub jitter_p: f64,
    /// Maximum extra delay (uniform in `[0, max_jitter]`).
    pub max_jitter: SimDuration,
}

impl LinkFaults {
    pub fn is_quiet(&self) -> bool {
        self.drop_p <= 0.0 && self.dup_p <= 0.0 && self.jitter_p <= 0.0
    }
}

/// Node-level fault schedule.
#[derive(Clone, Debug, Default)]
pub struct NodeFaults {
    /// Fail-stop at this virtual time.
    pub crash_at: Option<SimTime>,
    /// Unresponsive windows `[from, until)`.
    pub freezes: Vec<(SimTime, SimTime)>,
}

/// A network partition window: for `[from, until)` the node set splits into
/// `groups` and every message crossing a group boundary is dropped. Nodes
/// not listed in any group form one implicit group of their own — so
/// `partition(from, until, vec![vec![3, 4]])` splits `{3, 4}` off from the
/// rest of the cluster (with `dlb-core`'s node layout the unlisted side
/// keeps the master at node 0).
#[derive(Clone, Debug)]
pub struct Partition {
    pub from: SimTime,
    pub until: SimTime,
    pub groups: Vec<Vec<usize>>,
}

impl Partition {
    /// Group index of `node`: listed groups are `1..`, the implicit
    /// remainder group is `0`.
    fn group_of(&self, node: usize) -> usize {
        self.groups
            .iter()
            .position(|g| g.contains(&node))
            .map_or(0, |i| i + 1)
    }

    /// Whether `src → dst` traffic is severed by this window at time `t`.
    pub fn severs(&self, src: usize, dst: usize, t: SimTime) -> bool {
        t >= self.from && t < self.until && self.group_of(src) != self.group_of(dst)
    }
}

/// A seeded, deterministic description of everything that goes wrong.
///
/// Node indices refer to simulation [`crate::NodeId`]s (spawn order). In
/// `dlb-core` runs the master is node 0 and slave *i* is node *i + 1*.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    default_link: LinkFaults,
    links: BTreeMap<(usize, usize), LinkFaults>,
    nodes: BTreeMap<usize, NodeFaults>,
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// An empty plan: nothing fails, but the run is tagged as fault-mode
    /// (protocol timeouts/retries enabled in consumers like `dlb-core`).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            default_link: LinkFaults::default(),
            links: BTreeMap::new(),
            nodes: BTreeMap::new(),
            partitions: Vec::new(),
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop each message on every link with probability `p`.
    pub fn drop_all(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.default_link.drop_p = p;
        self
    }

    /// Duplicate each message on every link with probability `p`.
    pub fn dup_all(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.default_link.dup_p = p;
        self
    }

    /// Add up to `max` extra delay to each message with probability `p`.
    pub fn jitter_all(mut self, p: f64, max: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.default_link.jitter_p = p;
        self.default_link.max_jitter = max;
        self
    }

    /// Override fault probabilities for the directed link `src → dst`
    /// (node indices).
    pub fn link(mut self, src: usize, dst: usize, faults: LinkFaults) -> Self {
        self.links.insert((src, dst), faults);
        self
    }

    /// Fail-stop `node` at virtual time `t`.
    pub fn crash(mut self, node: usize, t: SimTime) -> Self {
        self.nodes.entry(node).or_default().crash_at = Some(t);
        self
    }

    /// Freeze `node` for the window `[from, until)`.
    pub fn freeze(mut self, node: usize, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "freeze window must be non-empty");
        self.nodes
            .entry(node)
            .or_default()
            .freezes
            .push((from, until));
        self
    }

    /// Partition the node set into `groups` for the window `[from, until)`.
    /// All cross-group traffic in the window is dropped deterministically;
    /// at `until` the network heals. Nodes not listed in any group form one
    /// implicit group of their own, so a single listed group splits it off
    /// from the rest of the cluster. Windows may overlap (a message is
    /// dropped if *any* active window severs the link).
    pub fn partition(mut self, from: SimTime, until: SimTime, groups: Vec<Vec<usize>>) -> Self {
        assert!(from < until, "partition window must be non-empty");
        self.partitions.push(Partition {
            from,
            until,
            groups,
        });
        self
    }

    /// Whether an active partition window severs `src → dst` at time `t`.
    pub fn partitioned(&self, src: usize, dst: usize, t: SimTime) -> bool {
        self.partitions.iter().any(|p| p.severs(src, dst, t))
    }

    /// Effective faults for the directed link `src → dst`.
    pub fn link_faults(&self, src: usize, dst: usize) -> LinkFaults {
        self.links
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Scheduled crashes as `(node, time)` in node order.
    pub fn crashes(&self) -> Vec<(usize, SimTime)> {
        self.nodes
            .iter()
            .filter_map(|(&n, f)| f.crash_at.map(|t| (n, t)))
            .collect()
    }

    /// If `t` falls inside a freeze window of `node`, the time the node
    /// thaws (chained/overlapping windows are walked to a fixed point).
    pub fn thaw_time(&self, node: usize, t: SimTime) -> Option<SimTime> {
        let faults = self.nodes.get(&node)?;
        let mut cur = t;
        let mut moved = false;
        loop {
            let mut hit = false;
            for &(from, until) in &faults.freezes {
                if cur >= from && cur < until {
                    cur = until;
                    hit = true;
                    moved = true;
                }
            }
            if !hit {
                break;
            }
        }
        moved.then_some(cur)
    }
}

/// Counters for everything the fault layer did during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages silently lost by link faults.
    pub msgs_dropped: u64,
    /// Extra copies delivered by duplication faults.
    pub msgs_duplicated: u64,
    /// Messages that suffered extra jitter delay.
    pub msgs_delayed: u64,
    /// Messages dropped because an active partition severed the link.
    pub partition_dropped: u64,
    /// Messages discarded because the destination node had crashed.
    pub deliveries_to_crashed: u64,
    /// Nodes that crashed, in crash order.
    pub crashed_nodes: Vec<usize>,
    /// Events deferred out of freeze windows.
    pub freeze_deferrals: u64,
}

impl FaultStats {
    pub fn any(&self) -> bool {
        self.msgs_dropped > 0
            || self.msgs_duplicated > 0
            || self.msgs_delayed > 0
            || self.partition_dropped > 0
            || self.deliveries_to_crashed > 0
            || !self.crashed_nodes.is_empty()
            || self.freeze_deferrals > 0
    }
}

/// Kernel-side runtime state for a plan: the plan plus its RNG and counters.
pub(crate) struct FaultRuntime {
    pub plan: FaultPlan,
    pub rng: Pcg32,
    pub stats: FaultStats,
}

impl FaultRuntime {
    pub fn new(plan: FaultPlan) -> FaultRuntime {
        let rng = Pcg32::with_stream(plan.seed(), 0xfa017);
        FaultRuntime {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_overrides_default() {
        let plan = FaultPlan::new(1).drop_all(0.1).link(
            2,
            3,
            LinkFaults {
                drop_p: 0.5,
                ..Default::default()
            },
        );
        assert_eq!(plan.link_faults(0, 1).drop_p, 0.1);
        assert_eq!(plan.link_faults(2, 3).drop_p, 0.5);
    }

    #[test]
    fn thaw_walks_chained_windows() {
        let plan = FaultPlan::new(0)
            .freeze(1, SimTime(100), SimTime(200))
            .freeze(1, SimTime(200), SimTime(300));
        assert_eq!(plan.thaw_time(1, SimTime(150)), Some(SimTime(300)));
        assert_eq!(plan.thaw_time(1, SimTime(300)), None);
        assert_eq!(plan.thaw_time(0, SimTime(150)), None);
    }

    #[test]
    fn crashes_listed() {
        let plan = FaultPlan::new(0)
            .crash(3, SimTime(500))
            .crash(1, SimTime(100));
        assert_eq!(plan.crashes(), vec![(1, SimTime(100)), (3, SimTime(500))]);
    }

    #[test]
    fn partition_severs_cross_group_traffic_in_window_only() {
        // Nodes 3 and 4 split off; everyone else (incl. the unlisted
        // master at node 0) forms the implicit remainder group.
        let plan = FaultPlan::new(0).partition(SimTime(100), SimTime(200), vec![vec![3, 4]]);
        assert!(plan.partitioned(0, 3, SimTime(100)));
        assert!(plan.partitioned(3, 0, SimTime(199)));
        assert!(!plan.partitioned(3, 4, SimTime(150)), "same group");
        assert!(!plan.partitioned(0, 1, SimTime(150)), "same group");
        assert!(!plan.partitioned(0, 3, SimTime(99)), "before the window");
        assert!(!plan.partitioned(0, 3, SimTime(200)), "healed");
        // The explicit two-group spelling is equivalent.
        let plan2 = FaultPlan::new(0).partition(
            SimTime(100),
            SimTime(200),
            vec![vec![0, 1, 2], vec![3, 4]],
        );
        assert!(plan2.partitioned(0, 3, SimTime(150)));
        assert!(!plan2.partitioned(0, 1, SimTime(150)));
    }

    #[test]
    fn overlapping_partitions_compose() {
        let plan = FaultPlan::new(0)
            .partition(SimTime(100), SimTime(200), vec![vec![1, 2], vec![3]])
            .partition(SimTime(150), SimTime(300), vec![vec![1], vec![2]]);
        assert!(plan.partitioned(1, 3, SimTime(120)), "first window");
        assert!(plan.partitioned(1, 2, SimTime(250)), "second window");
        assert!(plan.partitioned(1, 2, SimTime(160)), "both active");
        assert!(
            !plan.partitioned(3, 4, SimTime(250)),
            "first healed; 3 and 4 share the second window's implicit group"
        );
    }

    #[test]
    fn freeze_duration_type_sane() {
        // max_jitter default is zero; quiet plan reports quiet links.
        let plan = FaultPlan::new(9);
        assert!(plan.link_faults(0, 1).is_quiet());
        assert_eq!(plan.link_faults(0, 1).max_jitter, SimDuration::ZERO);
    }
}
