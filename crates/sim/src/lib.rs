//! # dlb-sim — deterministic network-of-workstations simulator
//!
//! The substrate for reproducing Siegell & Steenkiste, *Automatic Generation
//! of Parallel Programs with Dynamic Load Balancing* (HPDC 1994). The paper
//! ran on the CMU Nectar system: Sun 4/330 workstations on a 100 MB/s
//! crossbar, shared with other users' tasks. This crate substitutes a
//! discrete-event simulation of that environment:
//!
//! * **Virtual time** ([`SimTime`], [`SimDuration`]) in integer microseconds.
//! * **Nodes** ([`NodeConfig`]) with a relative speed, an OS round-robin
//!   scheduler with a time quantum, and a competing-[`LoadModel`] — constant
//!   or oscillating background tasks, as in the paper's Figures 7–9.
//! * **A crossbar network** ([`NetConfig`]) with latency, bandwidth, FIFO
//!   per-pair delivery, and marshalling CPU costs.
//! * **Actors** — master and slave processes — written as plain blocking
//!   closures, scheduled one-at-a-time by the [`SimBuilder`] kernel so every
//!   run is deterministic.
//!
//! Computation is charged in units of [`CpuWork`]; the quantum scheduler
//! stretches CPU work into elapsed time exactly as time-sharing does, which
//! reproduces the paper's measurement phenomena (rate oscillation when the
//! measurement period is close to the quantum, §4.3).
//!
//! ```
//! use dlb_sim::{CpuWork, LoadModel, NodeConfig, SimBuilder};
//!
//! let mut sim = SimBuilder::<&'static str>::new();
//! let n0 = sim.add_node(NodeConfig::default());
//! let n1 = sim.add_node(NodeConfig::with_load(LoadModel::Constant(1)));
//! let worker = sim.spawn(n1, "worker", |ctx| {
//!     ctx.advance_work(CpuWork::from_secs_f64(1.0)); // shares CPU with 1 task
//!     let m = ctx.recv();
//!     assert_eq!(m.msg, "hello");
//! });
//! sim.spawn(n0, "coordinator", move |ctx| {
//!     ctx.send(worker, "hello", 5);
//! });
//! let report = sim.run();
//! assert!(report.end_time.as_secs_f64() >= 1.0);
//! ```

#![forbid(unsafe_code)]

pub mod cpu;
pub mod explore;
pub mod fault;
pub mod kernel;
pub mod load;
pub mod net;
pub mod reduce;
pub mod rng;
pub mod time;
pub mod trace;
pub mod work;

pub use cpu::{advance, Advance, NodeConfig};
pub use explore::{explore, random_walks, Exploration, TransitionSystem, Verdict};
pub use fault::{FaultPlan, FaultStats, LinkFaults, NodeFaults, Partition};
pub use kernel::{ActorCtx, ActorId, ActorMetrics, NodeId, NodeMetrics, SimBuilder, SimReport};
pub use load::LoadModel;
pub use net::{Envelope, NetConfig};
pub use reduce::{explore_reduced, fingerprint, Ample, ReduceConfig, ReduceStats, Symmetric};
pub use rng::Pcg32;
pub use time::{SimDuration, SimTime};
pub use trace::{parse_trace, render_trace, TraceEvent, TraceKind};
pub use work::CpuWork;
