//! Virtual CPU with a round-robin quantum scheduler.
//!
//! Each node runs the application process plus `k(t)` competing tasks (see
//! [`crate::load::LoadModel`]). The OS scheduler is round-robin with a fixed
//! time quantum `Q`: while `k` competing tasks are runnable, the application
//! receives one quantum out of every `k + 1`, i.e. it runs during the slot
//! `[0, Q)` of every cycle of length `(k+1)·Q`, with cycles anchored at the
//! start of the current constant-load segment.
//!
//! This quantum-granularity model (rather than a smooth `1/(k+1)` rate)
//! matters: the paper's §4.3 observes that measuring computation rates over
//! periods close to the scheduling quantum produces wild oscillations, and
//! its frequency-selection rule (period ≥ 5 quanta) exists precisely to
//! average those out. The slot model reproduces that phenomenon.

use crate::load::LoadModel;
use crate::time::{SimDuration, SimTime};
use crate::work::CpuWork;

/// Configuration of one simulated node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Relative CPU speed (1.0 = reference node; the paper's environments are
    /// homogeneous but the balancer must handle heterogeneous speeds).
    pub speed: f64,
    /// OS scheduling time quantum (the paper assumes ~100 ms).
    pub quantum: SimDuration,
    /// Competing-load model for this node.
    pub load: LoadModel,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            speed: 1.0,
            quantum: SimDuration::from_millis(100),
            load: LoadModel::Dedicated,
        }
    }
}

impl NodeConfig {
    /// A dedicated node at the given relative speed.
    pub fn dedicated(speed: f64) -> Self {
        NodeConfig {
            speed,
            ..Default::default()
        }
    }

    /// A reference-speed node with the given load model.
    pub fn with_load(load: LoadModel) -> Self {
        NodeConfig {
            load,
            ..Default::default()
        }
    }
}

/// Result of advancing the application process on a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Advance {
    /// Virtual time at which the requested work completes.
    pub finish: SimTime,
    /// Application CPU time consumed while competing tasks were runnable
    /// (used for `getrusage`-style accounting of competing CPU time).
    pub cpu_while_loaded: SimDuration,
}

/// One maximal constant-load segment: slot cycles are anchored at `anchor`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Segment {
    anchor: SimTime,
    /// Exclusive end; `None` means the segment extends forever.
    end: Option<SimTime>,
    tasks: u32,
}

fn segment_of(load: &LoadModel, t: SimTime) -> Segment {
    match load {
        LoadModel::Dedicated => Segment {
            anchor: SimTime::ZERO,
            end: None,
            tasks: 0,
        },
        LoadModel::Constant(k) => Segment {
            anchor: SimTime::ZERO,
            end: None,
            tasks: *k,
        },
        LoadModel::Oscillating {
            period,
            duty,
            tasks,
        } => {
            if duty.is_zero() || *tasks == 0 {
                return Segment {
                    anchor: SimTime::ZERO,
                    end: None,
                    tasks: 0,
                };
            }
            if duty == period {
                return Segment {
                    anchor: SimTime::ZERO,
                    end: None,
                    tasks: *tasks,
                };
            }
            let p = period.micros();
            let d = duty.micros();
            let phase = t.micros() % p;
            let cycle_start = t.micros() - phase;
            if phase < d {
                Segment {
                    anchor: SimTime(cycle_start),
                    end: Some(SimTime(cycle_start + d)),
                    tasks: *tasks,
                }
            } else {
                Segment {
                    anchor: SimTime(cycle_start + d),
                    end: Some(SimTime(cycle_start + p)),
                    tasks: 0,
                }
            }
        }
        LoadModel::Trace(points) => {
            let mut anchor = SimTime::ZERO;
            let mut tasks = 0u32;
            let mut end = None;
            for &(start, k) in points {
                if start <= t {
                    if k != tasks {
                        anchor = start;
                        tasks = k;
                    }
                } else {
                    if k != tasks {
                        end = Some(start);
                        break;
                    }
                    // a no-op entry: keep scanning
                }
            }
            Segment { anchor, end, tasks }
        }
    }
}

/// Our-slot CPU time available in `[anchor, anchor + z)` with cycle `c` and
/// slot width `q`.
#[inline]
fn slot_measure(z: u64, c: u64, q: u64) -> u64 {
    (z / c) * q + (z % c).min(q)
}

/// Our-slot CPU time available in `[t, e)` for a segment anchored at `anchor`.
fn slot_capacity(t: SimTime, e: SimTime, anchor: SimTime, tasks: u32, q: u64) -> u64 {
    debug_assert!(anchor <= t && t <= e);
    let c = (tasks as u64 + 1) * q;
    slot_measure(e.micros() - anchor.micros(), c, q)
        - slot_measure(t.micros() - anchor.micros(), c, q)
}

/// Finish time for consuming `need` slot-micros starting at `t`, assuming the
/// segment never ends. `need` must be > 0.
fn advance_unbounded(t: SimTime, need: u64, anchor: SimTime, tasks: u32, q: u64) -> SimTime {
    debug_assert!(need > 0);
    let c = (tasks as u64 + 1) * q;
    let mut t = t.micros();
    let mut pos = (t - anchor.micros()) % c;
    if pos >= q {
        // Currently in a competing task's slot: wait for our next slot.
        t += c - pos;
        pos = 0;
    }
    let first = (q - pos).min(need);
    if first == need {
        return SimTime(t + first);
    }
    // Finish the current slot, then consume full/partial later slots.
    let mut remaining = need - first;
    t += first + (c - q); // now at the start of the next slot
    let full = remaining / q;
    let rem = remaining % q;
    if rem > 0 {
        SimTime(t + full * c + rem)
    } else {
        remaining = 0;
        let _ = remaining;
        SimTime(t + (full - 1) * c + q)
    }
}

/// Advance the application process on a node: starting at `start`, consume
/// `work` of CPU, interleaved with competing tasks per the node's load model.
///
/// Returns the finish time and how much of the application's CPU time was
/// spent while the node was loaded (for competing-time accounting).
pub fn advance(cfg: &NodeConfig, start: SimTime, work: CpuWork) -> Advance {
    let q = cfg.quantum.micros();
    assert!(q > 0, "quantum must be positive");
    let mut need = work.dedicated_duration(cfg.speed).micros();
    let mut t = start;
    let mut loaded = 0u64;
    while need > 0 {
        let seg = segment_of(&cfg.load, t);
        debug_assert!(seg.anchor <= t, "segment anchor after current time");
        if seg.tasks == 0 {
            match seg.end {
                None => {
                    t = SimTime(t.micros() + need);
                    need = 0;
                }
                Some(e) => {
                    let window = e.micros() - t.micros();
                    let take = window.min(need);
                    t = SimTime(t.micros() + take);
                    need -= take;
                    if need > 0 {
                        t = e;
                    }
                }
            }
        } else {
            match seg.end {
                None => {
                    let finish = advance_unbounded(t, need, seg.anchor, seg.tasks, q);
                    loaded += need;
                    need = 0;
                    t = finish;
                }
                Some(e) => {
                    let cap = slot_capacity(t, e, seg.anchor, seg.tasks, q);
                    if need <= cap && need > 0 {
                        let finish = advance_unbounded(t, need, seg.anchor, seg.tasks, q);
                        debug_assert!(finish <= e);
                        loaded += need;
                        need = 0;
                        t = finish;
                    } else {
                        loaded += cap;
                        need -= cap;
                        t = e;
                    }
                }
            }
        }
    }
    Advance {
        finish: t,
        cpu_while_loaded: SimDuration::from_micros(loaded),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = 100_000; // 100 ms in micros

    fn node(load: LoadModel) -> NodeConfig {
        NodeConfig {
            speed: 1.0,
            quantum: SimDuration::from_micros(Q),
            load,
        }
    }

    #[test]
    fn dedicated_is_identity() {
        let cfg = node(LoadModel::Dedicated);
        let a = advance(&cfg, SimTime(123), CpuWork::from_micros(456));
        assert_eq!(a.finish, SimTime(579));
        assert_eq!(a.cpu_while_loaded, SimDuration::ZERO);
    }

    #[test]
    fn speed_scales_duration() {
        let cfg = NodeConfig {
            speed: 2.0,
            ..node(LoadModel::Dedicated)
        };
        let a = advance(&cfg, SimTime::ZERO, CpuWork::from_micros(1_000));
        assert_eq!(a.finish, SimTime(500));
    }

    #[test]
    fn one_competing_task_halves_throughput() {
        // k=1: cycle 2Q, our slot [0, Q). Work of exactly 3Q starting at 0:
        // slots at [0,Q), [2Q,3Q), [4Q,5Q) -> finish at 5Q.
        let cfg = node(LoadModel::Constant(1));
        let a = advance(&cfg, SimTime::ZERO, CpuWork::from_micros(3 * Q));
        assert_eq!(a.finish, SimTime(5 * Q));
        assert_eq!(a.cpu_while_loaded.micros(), 3 * Q);
    }

    #[test]
    fn sub_quantum_work_in_our_slot() {
        let cfg = node(LoadModel::Constant(1));
        let a = advance(&cfg, SimTime(10), CpuWork::from_micros(100));
        assert_eq!(a.finish, SimTime(110));
    }

    #[test]
    fn starting_in_competing_slot_waits() {
        // k=1, start at Q (competing slot): our next slot starts at 2Q.
        let cfg = node(LoadModel::Constant(1));
        let a = advance(&cfg, SimTime(Q), CpuWork::from_micros(50));
        assert_eq!(a.finish, SimTime(2 * Q + 50));
    }

    #[test]
    fn exact_slot_multiple_ends_at_slot_end() {
        // k=2: cycle 3Q. Work = 2Q from t=0: slots [0,Q) and [3Q,4Q) -> finish 4Q
        // (not 4Q + skipped cycle).
        let cfg = node(LoadModel::Constant(2));
        let a = advance(&cfg, SimTime::ZERO, CpuWork::from_micros(2 * Q));
        assert_eq!(a.finish, SimTime(4 * Q));
    }

    #[test]
    fn throughput_ratio_converges() {
        // Large work with k=3 should take ~4x the dedicated time.
        let cfg = node(LoadModel::Constant(3));
        let w = CpuWork::from_micros(1000 * Q);
        let a = advance(&cfg, SimTime::ZERO, w);
        let ratio = a.finish.micros() as f64 / (1000 * Q) as f64;
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn oscillating_load_mixes_rates() {
        // 20s period, 10s loaded (k=1). Work of 15s CPU starting at 0:
        // loaded [0,10s): our process gets 5s of CPU; dedicated [10s,20s):
        // 10s more -> total 15s done exactly at t=20s... but at t=20s
        // the finish occurs at the end of the dedicated segment boundary.
        let cfg = node(LoadModel::Oscillating {
            period: SimDuration::from_secs(20),
            duty: SimDuration::from_secs(10),
            tasks: 1,
        });
        let a = advance(&cfg, SimTime::ZERO, CpuWork::from_secs_f64(15.0));
        assert_eq!(a.finish, SimTime(20_000_000));
        assert_eq!(a.cpu_while_loaded, SimDuration::from_secs(5));
    }

    #[test]
    fn trace_segments_respected() {
        // Loaded k=1 during [0, 1s), dedicated after.
        let m = LoadModel::Trace(vec![(SimTime::ZERO, 1), (SimTime(1_000_000), 0)]);
        let cfg = node(m);
        // 1s of CPU: 0.5s done in [0,1s) (half the slots), then 0.5s more
        // dedicated: finish at 1.5s.
        let a = advance(&cfg, SimTime::ZERO, CpuWork::from_secs_f64(1.0));
        assert_eq!(a.finish, SimTime(1_500_000));
        assert_eq!(a.cpu_while_loaded, SimDuration::from_micros(500_000));
    }

    #[test]
    fn zero_work_is_instant() {
        let cfg = node(LoadModel::Constant(5));
        let a = advance(&cfg, SimTime(77), CpuWork::ZERO);
        assert_eq!(a.finish, SimTime(77));
    }

    #[test]
    fn composition_property() {
        // advance(w1) then advance(w2) == advance(w1 + w2) for many splits.
        let cfg = node(LoadModel::Constant(2));
        let total = CpuWork::from_micros(7 * Q + 1234);
        let whole = advance(&cfg, SimTime(31), total);
        for split in [1u64, 50_000, Q, Q + 1, 3 * Q, 5 * Q + 17] {
            let first = advance(&cfg, SimTime(31), CpuWork::from_micros(split));
            let second = advance(
                &cfg,
                first.finish,
                CpuWork::from_micros(total.micros() - split),
            );
            assert_eq!(second.finish, whole.finish, "split at {split}");
            assert_eq!(
                first.cpu_while_loaded + second.cpu_while_loaded,
                whole.cpu_while_loaded
            );
        }
    }

    #[test]
    fn slot_capacity_matches_consumed() {
        let cfg = node(LoadModel::Constant(1));
        let start = SimTime(37);
        let w = CpuWork::from_micros(5 * Q + 999);
        let a = advance(&cfg, start, w);
        let cap = slot_capacity(start, a.finish, SimTime::ZERO, 1, Q);
        assert_eq!(cap, w.micros());
    }

    #[test]
    fn measurement_oscillation_near_quantum() {
        // The paper's §4.3 phenomenon: progress measured over windows close
        // to the quantum oscillates wildly under k=1, while windows of many
        // quanta are stable near 50%.
        // progress during [t, t+Q):
        let p = |t: u64| slot_capacity(SimTime(t), SimTime(t + Q), SimTime::ZERO, 1, Q);
        assert_eq!(p(0), Q); // our whole slot: looks like 100%
        assert_eq!(p(Q), 0); // competing slot: looks like 0%
        let long = slot_capacity(SimTime(0), SimTime(20 * Q), SimTime::ZERO, 1, Q);
        assert_eq!(long, 10 * Q); // exactly 50% over 10 cycles
    }
}
