//! Plain-harness end-to-end benchmarks: complete simulated runs of each
//! engine (small problem sizes so iterations stay cheap). These measure the
//! *host* cost of a full deterministic simulation — the kernel handoffs,
//! message routing, and real arithmetic — not the virtual time.
//!
//! Run with `cargo bench -p dlb-bench --bench end_to_end`.

use dlb_apps::{Calibration, Lu, MatMul, Sor};
use dlb_baselines::{run_self_scheduled, ChunkPolicy};
use dlb_core::driver::{run, AppSpec, RunConfig};
use dlb_sim::{LoadModel, NetConfig, NodeConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn bench<R>(name: &str, iters: u64, mut f: impl FnMut() -> R) {
    black_box(f());
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{name:<28} {per:>10.2} ms/iter   ({iters} iters)");
}

fn loaded_cfg(p: usize) -> RunConfig {
    let mut cfg = RunConfig::homogeneous(p);
    cfg.slave_nodes[0] = NodeConfig::with_load(LoadModel::Constant(1));
    cfg
}

fn main() {
    let cal = Calibration::new(0.05);

    let mm = Arc::new(MatMul::new(64, 1, 1, &cal));
    let mm_plan = dlb_compiler::compile(&mm.program()).unwrap();
    bench("mm64_p4_loaded", 10, || {
        run(AppSpec::Independent(mm.clone()), &mm_plan, loaded_cfg(4))
    });

    let sor = Arc::new(Sor::new(66, 4, 1, &cal));
    let sor_plan = dlb_compiler::compile(&sor.program()).unwrap();
    bench("sor64_p4_loaded", 10, || {
        run(AppSpec::Pipelined(sor.clone()), &sor_plan, loaded_cfg(4))
    });

    let lu = Arc::new(Lu::new(64, 1, &cal));
    let lu_plan = dlb_compiler::compile(&lu.program()).unwrap();
    bench("lu64_p4_loaded", 10, || {
        run(AppSpec::Shrinking(lu.clone()), &lu_plan, loaded_cfg(4))
    });

    bench("mm64_p4_self_sched_gss", 10, || {
        run_self_scheduled(
            mm.clone(),
            ChunkPolicy::Gss,
            loaded_cfg(4).slave_nodes,
            NodeConfig::default(),
            NetConfig::default(),
        )
    });

    let p = dlb_compiler::programs::sor(2000, 15);
    bench("compile_sor_plan", 100, || {
        dlb_compiler::compile(&p).unwrap()
    });
}
