//! Criterion end-to-end benchmarks: complete simulated runs of each engine
//! (small problem sizes so criterion can iterate). These measure the *host*
//! cost of a full deterministic simulation — the kernel handoffs, message
//! routing, and real arithmetic — not the virtual time.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_apps::{Calibration, Lu, MatMul, Sor};
use dlb_baselines::{run_self_scheduled, ChunkPolicy};
use dlb_core::driver::{run, AppSpec, RunConfig};
use dlb_sim::{LoadModel, NetConfig, NodeConfig};
use std::sync::Arc;

fn loaded_cfg(p: usize) -> RunConfig {
    let mut cfg = RunConfig::homogeneous(p);
    cfg.slave_nodes[0] = NodeConfig::with_load(LoadModel::Constant(1));
    cfg
}

fn bench_runs(c: &mut Criterion) {
    let cal = Calibration::new(0.05);
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);

    let mm = Arc::new(MatMul::new(64, 1, 1, &cal));
    let mm_plan = dlb_compiler::compile(&mm.program()).unwrap();
    g.bench_function("mm64_p4_loaded", |b| {
        b.iter(|| run(AppSpec::Independent(mm.clone()), &mm_plan, loaded_cfg(4)))
    });

    let sor = Arc::new(Sor::new(66, 4, 1, &cal));
    let sor_plan = dlb_compiler::compile(&sor.program()).unwrap();
    g.bench_function("sor64_p4_loaded", |b| {
        b.iter(|| run(AppSpec::Pipelined(sor.clone()), &sor_plan, loaded_cfg(4)))
    });

    let lu = Arc::new(Lu::new(64, 1, &cal));
    let lu_plan = dlb_compiler::compile(&lu.program()).unwrap();
    g.bench_function("lu64_p4_loaded", |b| {
        b.iter(|| run(AppSpec::Shrinking(lu.clone()), &lu_plan, loaded_cfg(4)))
    });

    g.bench_function("mm64_p4_self_sched_gss", |b| {
        b.iter(|| {
            run_self_scheduled(
                mm.clone(),
                ChunkPolicy::Gss,
                loaded_cfg(4).slave_nodes,
                NodeConfig::default(),
                NetConfig::default(),
            )
        })
    });

    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    c.bench_function("compile_sor_plan", |b| {
        let p = dlb_compiler::programs::sor(2000, 15);
        b.iter(|| dlb_compiler::compile(&p).unwrap())
    });
}

criterion_group!(benches, bench_runs, bench_compile);
criterion_main!(benches);
