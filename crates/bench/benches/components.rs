//! Plain-harness micro-benchmarks of the runtime's pure components: the
//! quantum-scheduler CPU model, rate filtering, allocation and shift
//! planning, chunk policies, and full balancer decisions.
//!
//! No external benchmarking dependency: each case runs a fixed iteration
//! count under `std::time::Instant` and prints ns/iter. Run with
//! `cargo bench -p dlb-bench --bench components`.

use dlb_analyze::{check_protocol_with, lint, CheckConfig};
use dlb_baselines::ChunkPolicy;
use dlb_compiler::{compile, programs};
use dlb_core::alloc::{plan_adjacent_shifts, plan_direct_moves, proportional_allocation};
use dlb_core::msg::Status;
use dlb_core::RestoreModel;
use dlb_core::{Balancer, BalancerConfig, RateFilter};
use dlb_sim::cpu::{advance, NodeConfig};
use dlb_sim::{CpuWork, LoadModel, SimDuration, SimTime};
use std::hint::black_box;
use std::time::Instant;

fn bench<R>(name: &str, iters: u64, mut f: impl FnMut() -> R) {
    // One warm-up pass, then the timed loop.
    black_box(f());
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<40} {per:>12.1} ns/iter   ({iters} iters)");
}

fn bench_cpu_advance() {
    for (name, load) in [
        ("dedicated", LoadModel::Dedicated),
        ("constant1", LoadModel::Constant(1)),
        (
            "oscillating",
            LoadModel::Oscillating {
                period: SimDuration::from_secs(20),
                duty: SimDuration::from_secs(10),
                tasks: 1,
            },
        ),
    ] {
        let cfg = NodeConfig {
            speed: 1.0,
            quantum: SimDuration::from_millis(100),
            load,
        };
        bench(&format!("cpu_advance/{name}"), 100_000, || {
            advance(
                black_box(&cfg),
                black_box(SimTime(123_456)),
                black_box(CpuWork::from_secs_f64(10.0)),
            )
        });
    }
}

fn bench_rate_filter() {
    let mut f = RateFilter::default();
    let mut x = 100.0;
    bench("rate_filter_update", 1_000_000, || {
        x = if x > 100.0 { 80.0 } else { 120.0 };
        f.update(x)
    });
}

fn bench_allocation() {
    let rates: Vec<f64> = (0..16).map(|i| 1.0 + (i as f64) * 0.1).collect();
    bench("proportional_allocation_16", 100_000, || {
        proportional_allocation(black_box(2000), black_box(&rates), 1)
    });
    let current: Vec<u64> = vec![125; 16];
    let target = proportional_allocation(2000, &rates, 1);
    bench("plan_direct_moves_16", 100_000, || {
        plan_direct_moves(black_box(&current), black_box(&target))
    });
    bench("plan_adjacent_shifts_16", 100_000, || {
        plan_adjacent_shifts(black_box(&current), black_box(&target))
    });
}

fn warm_balancer() -> Balancer {
    let mut bal = Balancer::new(
        BalancerConfig::default(),
        vec![125; 8],
        SimDuration::from_millis(100),
        SimDuration::from_millis(2),
        10,
        1.0,
    );
    // Warm all filters.
    for i in 0..8 {
        bal.on_status(&status(i, 100, 125));
    }
    bal
}

fn bench_balancer_decision() {
    // Setup excluded from timing by rebuilding per batch of decisions.
    bench("balancer_on_status", 2_000, || {
        let mut bal = warm_balancer();
        bal.on_status(black_box(&status(0, 60, 125)))
    });
}

fn status(slave: usize, done: u64, active: u64) -> Status {
    Status {
        slave,
        invocation: 0,
        hook_seq: 0,
        units_done_delta: done,
        elapsed: SimDuration::from_secs(1),
        active_units: active,
        last_applied_seq: u64::MAX,
        epoch: 0,
        sent_to: vec![0; 8],
        received_from: vec![0; 8],
        move_cost_sample: None,
        interaction_cost_sample: None,
    }
}

fn bench_chunking() {
    for policy in [
        ChunkPolicy::Fixed(8),
        ChunkPolicy::Gss,
        ChunkPolicy::Factoring,
        ChunkPolicy::trapezoid_default(2000, 8),
    ] {
        bench(
            &format!("chunk_policy_drain_2000/{policy:?}"),
            10_000,
            || {
                let mut st = policy.start(2000, 8);
                let mut total = 0;
                while let Some(sz) = st.next_chunk() {
                    total += sz;
                }
                total
            },
        );
    }
}

fn bench_analyzer() {
    // Full lint pass (re-derives the dependence analysis) per program.
    for program in programs::all_builtin() {
        let plan = compile(&program).expect("built-in compiles");
        bench(&format!("lint/{}", program.name), 2_000, || {
            lint(black_box(&program), black_box(&plan))
        });
    }
    // Exhaustive model check of the standard restore protocol; random
    // walks disabled so the figure is the BFS alone.
    let cfg = CheckConfig {
        walks: 0,
        ..CheckConfig::default()
    };
    let model = RestoreModel::standard();
    bench("model_check/restore_standard", 20, || {
        check_protocol_with(black_box(&model), cfg)
    });
}

fn main() {
    bench_cpu_advance();
    bench_rate_filter();
    bench_allocation();
    bench_balancer_decision();
    bench_chunking();
    bench_analyzer();
}
