//! Criterion micro-benchmarks of the runtime's pure components: the
//! quantum-scheduler CPU model, rate filtering, allocation and shift
//! planning, chunk policies, and full balancer decisions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dlb_baselines::ChunkPolicy;
use dlb_core::alloc::{plan_adjacent_shifts, plan_direct_moves, proportional_allocation};
use dlb_core::msg::Status;
use dlb_core::{Balancer, BalancerConfig, RateFilter};
use dlb_sim::cpu::{advance, NodeConfig};
use dlb_sim::{CpuWork, LoadModel, SimDuration, SimTime};
use std::hint::black_box;

fn bench_cpu_advance(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_advance");
    for (name, load) in [
        ("dedicated", LoadModel::Dedicated),
        ("constant1", LoadModel::Constant(1)),
        (
            "oscillating",
            LoadModel::Oscillating {
                period: SimDuration::from_secs(20),
                duty: SimDuration::from_secs(10),
                tasks: 1,
            },
        ),
    ] {
        let cfg = NodeConfig {
            speed: 1.0,
            quantum: SimDuration::from_millis(100),
            load,
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                advance(
                    black_box(&cfg),
                    black_box(SimTime(123_456)),
                    black_box(CpuWork::from_secs_f64(10.0)),
                )
            })
        });
    }
    g.finish();
}

fn bench_rate_filter(c: &mut Criterion) {
    c.bench_function("rate_filter_update", |b| {
        let mut f = RateFilter::default();
        let mut x = 100.0;
        b.iter(|| {
            x = if x > 100.0 { 80.0 } else { 120.0 };
            black_box(f.update(x))
        })
    });
}

fn bench_allocation(c: &mut Criterion) {
    let rates: Vec<f64> = (0..16).map(|i| 1.0 + (i as f64) * 0.1).collect();
    c.bench_function("proportional_allocation_16", |b| {
        b.iter(|| proportional_allocation(black_box(2000), black_box(&rates), 1))
    });
    let current: Vec<u64> = vec![125; 16];
    let target = proportional_allocation(2000, &rates, 1);
    c.bench_function("plan_direct_moves_16", |b| {
        b.iter(|| plan_direct_moves(black_box(&current), black_box(&target)))
    });
    c.bench_function("plan_adjacent_shifts_16", |b| {
        b.iter(|| plan_adjacent_shifts(black_box(&current), black_box(&target)))
    });
}

fn bench_balancer_decision(c: &mut Criterion) {
    c.bench_function("balancer_on_status", |b| {
        b.iter_batched(
            || {
                let mut bal = Balancer::new(
                    BalancerConfig::default(),
                    vec![125; 8],
                    SimDuration::from_millis(100),
                    SimDuration::from_millis(2),
                    10,
                    1.0,
                );
                // Warm all filters.
                for i in 0..8 {
                    bal.on_status(&status(i, 100, 125));
                }
                bal
            },
            |mut bal| bal.on_status(black_box(&status(0, 60, 125))),
            BatchSize::SmallInput,
        )
    });
}

fn status(slave: usize, done: u64, active: u64) -> Status {
    Status {
        slave,
        invocation: 0,
        units_done_delta: done,
        elapsed: SimDuration::from_secs(1),
        active_units: active,
        last_applied_seq: u64::MAX,
        transfers_sent: 0,
        received_from: vec![0; 8],
        move_cost_sample: None,
        interaction_cost_sample: None,
    }
}

fn bench_chunking(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunk_policy_drain_2000");
    for policy in [
        ChunkPolicy::Fixed(8),
        ChunkPolicy::Gss,
        ChunkPolicy::Factoring,
        ChunkPolicy::trapezoid_default(2000, 8),
    ] {
        g.bench_function(format!("{policy:?}"), |b| {
            b.iter(|| {
                let mut st = policy.start(2000, 8);
                let mut total = 0;
                while let Some(sz) = st.next_chunk() {
                    total += sz;
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cpu_advance,
    bench_rate_filter,
    bench_allocation,
    bench_balancer_decision,
    bench_chunking
);
criterion_main!(benches);
