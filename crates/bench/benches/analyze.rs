//! Explorer-throughput benchmark for the protocol model checker: full
//! vs reduced exploration of the restore, transfer, and election models at
//! the standard fixture size and at runtime widths.
//!
//! For each case it reports wall time, states visited, states/second, the
//! peak visited-set footprint, and — where both runs exist — the
//! reduction factor (full states / reduced states). Results are printed
//! as a table and written to `BENCH_analyze.json` in the working
//! directory (hand-rolled JSON; the container has no serde).
//!
//! Run with `cargo bench -p dlb-bench --bench analyze`. An optional
//! argument substring-filters the cases (e.g.
//! `cargo bench -p dlb-bench --bench analyze -- election`).

use dlb_core::{ElectionModel, RestoreModel, TransferModel};
use dlb_sim::{explore, explore_reduced, Ample, ReduceConfig, Symmetric, Verdict};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured exploration.
struct Case {
    name: String,
    mode: &'static str,
    states: usize,
    truncated: bool,
    verdict: &'static str,
    millis: f64,
    states_per_sec: f64,
    visited_bytes: usize,
    pruned_actions: usize,
    /// `full states / reduced states`, on the reduced row of a pair.
    reduction_factor: Option<f64>,
}

const MAX_DEPTH: usize = 256;
const MAX_STATES: usize = 30_000_000;

fn verdict_str(v: &Verdict) -> &'static str {
    match v {
        Verdict::Ok => "ok",
        Verdict::Violation => "violation",
        Verdict::Deadlock => "deadlock",
    }
}

fn run_full<S: Symmetric + Ample>(name: &str, sys: &S) -> Case
where
    S::State: std::hash::Hash,
{
    let t0 = Instant::now();
    let ex = explore(sys, MAX_DEPTH, MAX_STATES);
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    Case {
        name: name.to_string(),
        mode: "full",
        states: ex.states,
        truncated: ex.truncated,
        verdict: verdict_str(&ex.verdict),
        millis,
        states_per_sec: ex.states as f64 / (millis / 1e3),
        visited_bytes: 0,
        pruned_actions: 0,
        reduction_factor: None,
    }
}

fn run_reduced<S: Symmetric + Ample>(name: &str, sys: &S, full_states: Option<usize>) -> Case
where
    S::State: std::hash::Hash,
{
    let cfg = ReduceConfig {
        max_depth: MAX_DEPTH,
        max_states: MAX_STATES,
        symmetry: true,
        ample: true,
        fingerprint: true,
    };
    let t0 = Instant::now();
    let (ex, stats) = explore_reduced(sys, &cfg);
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    Case {
        name: name.to_string(),
        mode: "reduced",
        states: ex.states,
        truncated: ex.truncated,
        verdict: verdict_str(&ex.verdict),
        millis,
        states_per_sec: ex.states as f64 / (millis / 1e3),
        visited_bytes: stats.visited_bytes,
        pruned_actions: stats.pruned_actions,
        reduction_factor: full_states.map(|f| f as f64 / ex.states as f64),
    }
}

/// Measure one model at one width: full then reduced when `with_full`,
/// reduced only otherwise (runtime widths, where the full space is out of
/// reach by construction).
fn measure<S: Symmetric + Ample>(out: &mut Vec<Case>, name: &str, sys: &S, with_full: bool)
where
    S::State: std::hash::Hash,
{
    let full_states = if with_full {
        let c = run_full(name, sys);
        let states = c.states;
        report_line(&c);
        out.push(c);
        Some(states)
    } else {
        None
    };
    let c = run_reduced(name, sys, full_states);
    report_line(&c);
    out.push(c);
}

fn report_line(c: &Case) {
    println!(
        "{:<28} {:>8} {:>10} states {:>12.0} st/s {:>9.1} ms  {:>10} visited-bytes  verdict={}{}{}",
        c.name,
        c.mode,
        c.states,
        c.states_per_sec,
        c.millis,
        c.visited_bytes,
        c.verdict,
        if c.truncated { " (truncated)" } else { "" },
        match c.reduction_factor {
            Some(f) => format!("  reduction={f:.1}x"),
            None => String::new(),
        },
    );
}

fn json(cases: &[Case]) -> String {
    let mut s = String::from("{\n  \"bench\": \"analyze\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"states\": {}, \"truncated\": {}, \
             \"verdict\": \"{}\", \"millis\": {:.3}, \"states_per_sec\": {:.1}, \
             \"visited_bytes\": {}, \"pruned_actions\": {}, \"reduction_factor\": {}}}",
            c.name,
            c.mode,
            c.states,
            c.truncated,
            c.verdict,
            c.millis,
            c.states_per_sec,
            c.visited_bytes,
            c.pruned_actions,
            match c.reduction_factor {
                Some(f) => format!("{f:.3}"),
                None => "null".to_string(),
            },
        );
        s.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    // Cargo passes harness flags like `--bench`; the first bare argument
    // (if any) is our case filter.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    let mut cases = Vec::new();
    let wanted = |name: &str| filter.is_empty() || name.contains(&filter);

    // Standard fixtures and small widths: full + reduced, so the table
    // carries honest reduction factors validated against the full space.
    if wanted("restore-standard") {
        measure(
            &mut cases,
            "restore-standard",
            &RestoreModel::standard(),
            true,
        );
    }
    if wanted("restore-wide4") {
        measure(&mut cases, "restore-wide4", &RestoreModel::wide(4), true);
    }
    if wanted("transfer-standard") {
        measure(
            &mut cases,
            "transfer-standard",
            &TransferModel::standard(),
            true,
        );
    }
    if wanted("transfer-wide4") {
        measure(&mut cases, "transfer-wide4", &TransferModel::wide(4), true);
    }
    if wanted("election-standard") {
        measure(
            &mut cases,
            "election-standard",
            &ElectionModel::standard(),
            true,
        );
    }
    if wanted("election-wide4") {
        measure(&mut cases, "election-wide4", &ElectionModel::wide(4), true);
    }

    // Runtime widths: reduced only — the whole point of the reductions is
    // that the full space here is unreachable.
    if wanted("election-wide6") {
        measure(&mut cases, "election-wide6", &ElectionModel::wide(6), false);
    }
    if wanted("election-wide8") {
        measure(&mut cases, "election-wide8", &ElectionModel::wide(8), false);
    }
    if wanted("election-wide10") {
        measure(
            &mut cases,
            "election-wide10",
            &ElectionModel::wide(10),
            false,
        );
    }
    if wanted("restore-wide16") {
        measure(&mut cases, "restore-wide16", &RestoreModel::wide(16), false);
    }
    if wanted("transfer-wide16") {
        measure(
            &mut cases,
            "transfer-wide16",
            &TransferModel::wide(16),
            false,
        );
    }
    if wanted("election-wide16") {
        measure(
            &mut cases,
            "election-wide16",
            &ElectionModel::wide(16),
            false,
        );
    }

    let path = "BENCH_analyze.json";
    std::fs::write(path, json(&cases)).expect("write BENCH_analyze.json");
    println!("wrote {path} ({} cases)", cases.len());
}
