//! Figure 9: measured (raw) rate, filtered (adjusted) rate, and work
//! assignment over time for a slave with an oscillating competing load
//! (20 s period, 10 s loaded), on a 4-slave 500×500 MM.
//!
//! Values are normalized as in the paper: rates by the maximum observed
//! rate, work by the equal-distribution share (n/4 units).

use dlb_apps::{Calibration, MatMul};
use dlb_bench::{cluster, oscillating};
use dlb_core::driver::{run, AppSpec};
use std::sync::Arc;

fn main() {
    let cal = Calibration::default();
    // Two passes over the matrix keep the run going for ~100 virtual
    // seconds on 4 slaves, spanning several load oscillations.
    let mm = Arc::new(MatMul::new(500, 2, 1, &cal));
    let plan = dlb_compiler::compile(&mm.program()).unwrap();
    let mut cfg = cluster(4, &[(0, oscillating())]);
    cfg.record_timeline = true;
    let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
    assert_eq!(MatMul::result_c(&r.result), mm.sequential());

    let samples: Vec<_> = r.timeline.iter().filter(|s| s.slave == 0).collect();
    let max_rate = samples
        .iter()
        .map(|s| s.raw_rate.max(s.adjusted_rate))
        .fold(0.0f64, f64::max);
    let equal_share = mm.n() as f64 / 4.0;
    println!("# Fig 9 — slave 0 under oscillating load (20 s period, 10 s duty), 500x500 MM x2, 4 slaves");
    println!("# rates normalized by max observed ({max_rate:.1} units/s); work by equal share ({equal_share})");
    println!("time_s\traw_rate\tadjusted_rate\twork_assignment");
    for s in samples.iter().filter(|s| s.t.as_secs_f64() <= 100.0) {
        println!(
            "{:.2}\t{:.3}\t{:.3}\t{:.3}",
            s.t.as_secs_f64(),
            s.raw_rate / max_rate,
            s.adjusted_rate / max_rate,
            s.assigned as f64 / equal_share,
        );
    }
    eprintln!(
        "total moved: {} units over {} moves",
        r.stats.units_moved, r.stats.moves_issued
    );
}
