//! Related-work comparison (§6): the paper's DLB vs static distribution,
//! central-queue self-scheduling (with data shipping), and diffusion, on a
//! 500×500 MM across environments.

use dlb_apps::{Calibration, MatMul};
use dlb_baselines::{run_diffusion, run_self_scheduled, ChunkPolicy, DiffusionConfig};
use dlb_bench::{cluster, oscillating};
use dlb_core::driver::{run, AppSpec, RunConfig};
use dlb_sim::{LoadModel, NetConfig, NodeConfig};
use std::sync::Arc;

fn env_nodes(cfg: &RunConfig) -> Vec<NodeConfig> {
    cfg.slave_nodes.clone()
}

fn main() {
    let cal = Calibration::default();
    let mm = Arc::new(MatMul::new(500, 1, 1, &cal));
    let plan = dlb_compiler::compile(&mm.program()).unwrap();
    let seq = mm.sequential_time();
    println!(
        "# Balancer comparison — 500x500 MM, 8 slaves (times in s; seq {:.1} s)",
        seq.as_secs_f64()
    );
    println!("environment\tstatic\tdlb\tss_gss\tss_factoring\tss_fixed4\tdiffusion");
    let environments: [(&str, RunConfig); 3] = [
        ("dedicated", cluster(8, &[])),
        ("one_loaded", cluster(8, &[(0, LoadModel::Constant(1))])),
        ("oscillating", cluster(8, &[(0, oscillating())])),
    ];
    for (name, base) in environments {
        let mut static_cfg = cluster(8, &[]);
        static_cfg.slave_nodes = env_nodes(&base);
        static_cfg.balancer.enabled = false;
        let t_static = run(AppSpec::Independent(mm.clone()), &plan, static_cfg)
            .compute_time
            .as_secs_f64();

        let mut dlb_cfg = cluster(8, &[]);
        dlb_cfg.slave_nodes = env_nodes(&base);
        let t_dlb = run(AppSpec::Independent(mm.clone()), &plan, dlb_cfg)
            .compute_time
            .as_secs_f64();

        let ss = |policy: ChunkPolicy| {
            run_self_scheduled(
                mm.clone(),
                policy,
                env_nodes(&base),
                NodeConfig::default(),
                NetConfig::default(),
            )
            .elapsed
            .as_secs_f64()
        };
        let t_gss = ss(ChunkPolicy::Gss);
        let t_fact = ss(ChunkPolicy::Factoring);
        let t_fix = ss(ChunkPolicy::Fixed(4));

        let t_diff = run_diffusion(
            mm.clone(),
            DiffusionConfig::default(),
            env_nodes(&base),
            NodeConfig::default(),
            NetConfig::default(),
        )
        .elapsed
        .as_secs_f64();

        println!(
            "{name}\t{t_static:.1}\t{t_dlb:.1}\t{t_gss:.1}\t{t_fact:.1}\t{t_fix:.1}\t{t_diff:.1}"
        );
    }
}
