//! Figure 5: 500×500 matrix multiplication in a dedicated homogeneous
//! environment — execution time, speedup, and efficiency for 1..8 slaves,
//! sequential vs parallel vs parallel with DLB.

use dlb_apps::{Calibration, MatMul};
use dlb_core::driver::{run, AppSpec, RunConfig};
use std::sync::Arc;

fn main() {
    let cal = Calibration::default();
    let mm = Arc::new(MatMul::new(500, 1, 1, &cal));
    let plan = dlb_compiler::compile(&mm.program()).unwrap();
    let seq = mm.sequential_time();
    println!("# Fig 5 — 500x500 MM, dedicated homogeneous environment");
    println!("# sequential time: {:.1} s", seq.as_secs_f64());
    println!(
        "procs\ttime_par_s\ttime_dlb_s\tspeedup_par\tspeedup_dlb\teff_par\teff_dlb\tmoved_dlb"
    );
    for p in 1..=8usize {
        let mut results = Vec::new();
        for dlb in [false, true] {
            let mut cfg = RunConfig::homogeneous(p);
            cfg.balancer.enabled = dlb;
            let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
            assert_eq!(MatMul::result_c(&r.result), mm.sequential());
            results.push(r);
        }
        let (par, dlb) = (&results[0], &results[1]);
        println!(
            "{p}\t{:.1}\t{:.1}\t{:.2}\t{:.2}\t{:.3}\t{:.3}\t{}",
            par.compute_time.as_secs_f64(),
            dlb.compute_time.as_secs_f64(),
            par.speedup(seq),
            dlb.speedup(seq),
            par.efficiency(seq),
            dlb.efficiency(seq),
            dlb.stats.units_moved,
        );
    }
}
