//! Figure 4: the three lower bounds on the load-balancing period and the
//! chosen target, as the measured cost of moving work varies (log sweep).

use dlb_core::FrequencyController;
use dlb_sim::SimDuration;

fn main() {
    println!("# Fig 4 — periods affecting load-balancing frequency selection");
    println!("# quantum 100 ms (bound x5, floor 500 ms); interaction cost 8 ms (x20); movement cost swept (x0.1)");
    println!(
        "move_cost_s\tmovement_bound_s\tinteraction_bound_s\tquantum_bound_s\ttarget_period_s"
    );
    for exp in -3..=2 {
        let move_cost = 10f64.powi(exp);
        let mut fc = FrequencyController::new(SimDuration::from_millis(100));
        fc.record_interaction(SimDuration::from_millis(8));
        fc.record_movement(SimDuration::from_secs_f64(move_cost));
        let b = fc.bounds();
        println!(
            "{move_cost}\t{}\t{}\t{}\t{}",
            b.movement_bound.as_secs_f64(),
            b.interaction_bound.as_secs_f64(),
            b.quantum_bound.as_secs_f64(),
            b.target.as_secs_f64()
        );
    }
}
