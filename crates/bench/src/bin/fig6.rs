//! Figure 6: 2000×2000 successive overrelaxation in a dedicated homogeneous
//! environment — execution time, speedup, and efficiency for 1..8 slaves.

use dlb_apps::{Calibration, Sor};
use dlb_core::driver::{run, AppSpec, RunConfig};
use std::sync::Arc;

fn main() {
    let cal = Calibration::default();
    let sor = Arc::new(Sor::new(2000, 15, 1, &cal));
    let plan = dlb_compiler::compile(&sor.program()).unwrap();
    let seq = sor.sequential_time();
    println!("# Fig 6 — 2000x2000 SOR (15 sweeps), dedicated homogeneous environment");
    println!("# sequential time: {:.1} s", seq.as_secs_f64());
    println!(
        "procs\ttime_par_s\ttime_dlb_s\tspeedup_par\tspeedup_dlb\teff_par\teff_dlb\tmoved_dlb"
    );
    for p in 1..=8usize {
        let mut results = Vec::new();
        for dlb in [false, true] {
            let mut cfg = RunConfig::homogeneous(p);
            cfg.balancer.enabled = dlb;
            let r = run(AppSpec::Pipelined(sor.clone()), &plan, cfg);
            results.push(r);
        }
        let (par, dlb) = (&results[0], &results[1]);
        println!(
            "{p}\t{:.1}\t{:.1}\t{:.2}\t{:.2}\t{:.3}\t{:.3}\t{}",
            par.compute_time.as_secs_f64(),
            dlb.compute_time.as_secs_f64(),
            par.speedup(seq),
            dlb.speedup(seq),
            par.efficiency(seq),
            dlb.efficiency(seq),
            dlb.stats.units_moved,
        );
    }
}
