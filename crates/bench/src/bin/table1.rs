//! Table 1: application properties of the distributed loop, derived by the
//! compiler from the IR of MM, SOR, and LU.

use dlb_compiler::{programs, AppProperties};

fn main() {
    println!("# Table 1 — application properties (derived by dlb-compiler)");
    let apps = [
        ("MM", programs::matmul(500, 1)),
        ("SOR", programs::sor(2000, 15)),
        ("LU", programs::lu(500)),
    ];
    let props: Vec<(&str, AppProperties)> = apps
        .iter()
        .map(|(name, p)| (*name, AppProperties::derive(p)))
        .collect();
    let yn = |b: bool| if b { "yes" } else { "no" };
    #[allow(clippy::type_complexity)]
    let rows: [(&str, fn(&AppProperties) -> bool); 6] = [
        ("loop-carried dependences", |p| p.loop_carried_deps),
        ("communication outside loop", |p| {
            p.communication_outside_loop
        }),
        ("repeated execution of loop", |p| p.repeated_execution),
        ("varying loop bounds", |p| p.varying_loop_bounds),
        ("index-dependent iteration size", |p| {
            p.index_dependent_iteration_size
        }),
        ("data-dependent iteration size", |p| {
            p.data_dependent_iteration_size
        }),
    ];
    println!(
        "{:<34}{:>6}{:>6}{:>6}",
        "Property (of distributed loop)", "MM", "SOR", "LU"
    );
    for (label, f) in rows {
        println!(
            "{:<34}{:>6}{:>6}{:>6}",
            label,
            yn(f(&props[0].1)),
            yn(f(&props[1].1)),
            yn(f(&props[2].1)),
        );
    }
}
