//! Extension experiment (§4.7): LU decomposition with its shrinking active
//! set, scaling over slaves, dedicated and loaded. Exercises the
//! active/inactive-slice tracking and the automatic reduction of balancing
//! frequency as work units shrink.

use dlb_apps::{Calibration, Lu};
use dlb_bench::one_loaded;
use dlb_core::driver::{run, AppSpec, RunConfig};
use std::sync::Arc;

fn main() {
    let cal = Calibration::default();
    let lu = Arc::new(Lu::new(500, 1, &cal));
    let plan = dlb_compiler::compile(&lu.program()).unwrap();
    let seq = lu.sequential_time();
    println!(
        "# LU 500x500 — shrinking active set (seq {:.1} s)",
        seq.as_secs_f64()
    );
    println!("procs\tdedicated_s\tloaded_static_s\tloaded_dlb_s\tmoved_dlb");
    for p in [1usize, 2, 4, 8] {
        let dedicated = run(
            AppSpec::Shrinking(lu.clone()),
            &plan,
            RunConfig::homogeneous(p),
        );
        let mut static_cfg = one_loaded(p);
        static_cfg.balancer.enabled = false;
        let loaded_static = run(AppSpec::Shrinking(lu.clone()), &plan, static_cfg);
        let loaded_dlb = run(AppSpec::Shrinking(lu.clone()), &plan, one_loaded(p));
        assert_eq!(Lu::result_cols(&loaded_dlb.result), lu.sequential());
        println!(
            "{p}\t{:.1}\t{:.1}\t{:.1}\t{}",
            dedicated.compute_time.as_secs_f64(),
            loaded_static.compute_time.as_secs_f64(),
            loaded_dlb.compute_time.as_secs_f64(),
            loaded_dlb.stats.units_moved,
        );
    }
}
