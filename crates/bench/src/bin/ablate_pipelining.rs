//! §3.2 ablation: pipelined vs synchronous master–slave interactions as
//! network latency grows. The paper: "Experiments comparing the pipelined
//! and synchronous approaches confirm that pipelining is important."

use dlb_apps::{Calibration, MatMul};
use dlb_bench::one_loaded;
use dlb_core::driver::{run, AppSpec};
use dlb_core::InteractionMode;
use dlb_sim::SimDuration;
use std::sync::Arc;

fn main() {
    let cal = Calibration::default();
    let mm = Arc::new(MatMul::new(500, 1, 1, &cal));
    let plan = dlb_compiler::compile(&mm.program()).unwrap();
    println!("# Ablation — pipelined vs synchronous balancer interactions (500x500 MM, 8 slaves, 1 loaded)");
    println!("net_latency_ms\ttime_pipelined_s\ttime_synchronous_s\tsync_overhead_pct");
    for latency_ms in [0.1f64, 1.0, 5.0, 20.0, 50.0] {
        let mut times = Vec::new();
        for mode in [InteractionMode::Pipelined, InteractionMode::Synchronous] {
            let mut cfg = one_loaded(8);
            cfg.net.latency = SimDuration::from_secs_f64(latency_ms / 1e3);
            cfg.balancer.mode = mode;
            let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
            times.push(r.compute_time.as_secs_f64());
        }
        println!(
            "{latency_ms}\t{:.2}\t{:.2}\t{:.1}",
            times[0],
            times[1],
            100.0 * (times[1] - times[0]) / times[0]
        );
    }
}
