//! Figure 3: the generated SPMD code for SOR, with strip mining, boundary
//! communication, and annotated hook-placement decisions — plus the MM and
//! LU variants for comparison.

use dlb_compiler::{codegen, compile, programs};

fn main() {
    for program in [
        programs::sor(2000, 15),
        programs::matmul(500, 1),
        programs::lu(500),
    ] {
        let plan = compile(&program).expect("compiles");
        println!("=== generated SPMD code for `{}` ===", program.name);
        println!("{}", codegen::emit(&program, &plan));
        println!("--- hook placement analysis ---");
        println!("{}", plan.hooks);
        println!();
    }
}
