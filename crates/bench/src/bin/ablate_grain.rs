//! §4.4 ablation: strip-mining grain size for pipelined SOR. Blocks much
//! smaller than the OS quantum amplify synchronization under load; blocks
//! too large waste pipeline parallelism. The runtime's automatic choice
//! targets 1.5 quanta (150 ms).

use dlb_apps::{Calibration, Sor};
use dlb_bench::one_loaded;
use dlb_compiler::GrainPolicy;
use dlb_core::driver::{run, AppSpec};
use std::sync::Arc;

fn main() {
    let cal = Calibration::default();
    let sor = Arc::new(Sor::new(2000, 15, 1, &cal));
    let base_plan = dlb_compiler::compile(&sor.program()).unwrap();
    println!("# Ablation — SOR block size (2000x2000, 15 sweeps, 8 slaves, 1 loaded)");
    println!("block_rows\ttime_s\tmoved");
    for block in [2u64, 10, 50, 100, 250, 999, 0] {
        let mut plan = base_plan.clone();
        plan.grain = if block == 0 {
            GrainPolicy::AutoBlock {
                quantum_factor: 1.5,
            } // the automatic rule
        } else {
            GrainPolicy::FixedBlock { iterations: block }
        };
        let cfg = one_loaded(8);
        let r = run(AppSpec::Pipelined(sor.clone()), &plan, cfg);
        let label = if block == 0 {
            "auto(100)".to_string()
        } else {
            block.to_string()
        };
        println!(
            "{label}\t{:.1}\t{}",
            r.compute_time.as_secs_f64(),
            r.stats.units_moved
        );
    }
}
