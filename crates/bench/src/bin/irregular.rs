//! §2.1 extension: an irregular application (adaptive quadrature, per-unit
//! costs varying by an order of magnitude) on dedicated machines — the
//! imbalance is *inherent*, not environmental. Compares static, DLB, and
//! the self-scheduling family (for which irregular loops are the classic
//! home turf).

use dlb_apps::{Calibration, Quadrature};
use dlb_baselines::{run_self_scheduled, ChunkPolicy};
use dlb_core::driver::{run, AppSpec, RunConfig};
use dlb_sim::{NetConfig, NodeConfig};
use std::sync::Arc;

fn main() {
    // Calibrated so one mean unit ~ a few hundred ms.
    let q = Arc::new(Quadrature::new(512, 1e-9, &Calibration::new(0.002)));
    let plan = dlb_compiler::compile(&dlb_compiler::programs::matmul(512, 1)).unwrap();
    let seq = q.sequential_time();
    println!(
        "# Irregular application — adaptive quadrature, 512 intervals, cost skew {:.1}x, 8 dedicated slaves",
        q.skew()
    );
    println!("# sequential time: {:.1} s", seq.as_secs_f64());
    println!("scheduler\ttime_s\tmoved_or_chunks");

    for dlb_on in [false, true] {
        let mut cfg = RunConfig::homogeneous(8);
        cfg.balancer.enabled = dlb_on;
        let r = run(AppSpec::Independent(q.clone()), &plan, cfg);
        assert!((Quadrature::result_total(&r.result) - q.sequential()).abs() < 1e-12);
        println!(
            "{}\t{:.1}\t{}",
            if dlb_on { "dlb" } else { "static" },
            r.compute_time.as_secs_f64(),
            r.stats.units_moved
        );
    }
    for (name, policy) in [
        ("ss_gss", ChunkPolicy::Gss),
        ("ss_factoring", ChunkPolicy::Factoring),
        ("ss_fixed4", ChunkPolicy::Fixed(4)),
    ] {
        let r = run_self_scheduled(
            q.clone(),
            policy,
            vec![NodeConfig::default(); 8],
            NodeConfig::default(),
            NetConfig::default(),
        );
        assert!((Quadrature::result_total(&r.result) - q.sequential()).abs() < 1e-12);
        println!(
            "{name}\t{:.1}\t{}",
            r.elapsed.as_secs_f64(),
            r.chunks_issued
        );
    }
}
