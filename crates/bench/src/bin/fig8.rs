//! Figure 8: 2000×2000 SOR with one constant competing task on processor 0
//! — execution time and efficiency with and without DLB.

use dlb_apps::{Calibration, Sor};
use dlb_bench::one_loaded;
use dlb_core::driver::{run, AppSpec};
use std::sync::Arc;

fn main() {
    let cal = Calibration::default();
    let sor = Arc::new(Sor::new(2000, 15, 1, &cal));
    let plan = dlb_compiler::compile(&sor.program()).unwrap();
    let seq = sor.sequential_time();
    println!("# Fig 8 — 2000x2000 SOR, one constant competing task on processor 0");
    println!("# sequential time (dedicated): {:.1} s", seq.as_secs_f64());
    println!("procs\ttime_par_s\ttime_dlb_s\teff_par\teff_dlb\tmoved_dlb");
    for p in 1..=8usize {
        let mut results = Vec::new();
        for dlb in [false, true] {
            let mut cfg = one_loaded(p);
            cfg.balancer.enabled = dlb;
            let r = run(AppSpec::Pipelined(sor.clone()), &plan, cfg);
            results.push(r);
        }
        let (par, dlb) = (&results[0], &results[1]);
        println!(
            "{p}\t{:.1}\t{:.1}\t{:.3}\t{:.3}\t{}",
            par.compute_time.as_secs_f64(),
            dlb.compute_time.as_secs_f64(),
            par.efficiency(seq),
            dlb.efficiency(seq),
            dlb.stats.units_moved,
        );
    }
}
