//! §3.2 ablation: the balancer's anti-oscillation refinements — the 10%
//! projected-improvement threshold and the profitability check — under an
//! oscillating load.

use dlb_apps::{Calibration, MatMul};
use dlb_bench::{cluster, oscillating};
use dlb_core::driver::{run, AppSpec};
use std::sync::Arc;

fn main() {
    let cal = Calibration::default();
    let mm = Arc::new(MatMul::new(500, 2, 1, &cal));
    let plan = dlb_compiler::compile(&mm.program()).unwrap();
    println!(
        "# Ablation — threshold & profitability under oscillating load (500x500 MM x2, 4 slaves)"
    );
    println!("threshold\tprofitability\ttime_s\tunits_moved\tmoves_cancelled");
    for threshold in [0.0f64, 0.05, 0.10, 0.30] {
        for profitability in [true, false] {
            let mut cfg = cluster(4, &[(0, oscillating())]);
            cfg.balancer.threshold = threshold;
            cfg.balancer.profitability = profitability;
            let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
            assert_eq!(MatMul::result_c(&r.result), mm.sequential());
            println!(
                "{threshold}\t{profitability}\t{:.1}\t{}\t{}",
                r.compute_time.as_secs_f64(),
                r.stats.units_moved,
                r.stats.cancelled_threshold + r.stats.cancelled_profitability,
            );
        }
    }
}
