//! Table 2: compiler tasks in support of load balancing, mapped to the
//! modules of this reproduction.

fn main() {
    println!("# Table 2 — compiler tasks in support of load balancing");
    let rows = [
        (
            "Generate control for central load balancer",
            "dlb_compiler::plan::OuterControl + dlb_core::master",
            "4.1",
        ),
        (
            "Determine grain size and block communication",
            "dlb_compiler::stripmine + dlb_core::driver (startup block sizing)",
            "4.4",
        ),
        (
            "Insert code in slaves for interaction with load balancer",
            "dlb_compiler::hooks + dlb_core::slave_common",
            "4.2",
        ),
        (
            "Supply dependence information for restricting work movement",
            "dlb_compiler::deps -> plan::MovementRule",
            "3.2",
        ),
        (
            "Generate application-specific routines for work movement",
            "dlb_compiler::plan::MovedArray + engine gather/scatter & catch-up",
            "4.5",
        ),
        (
            "Generate code for arbitrary communication",
            "dlb_compiler::plan (replicated/aligned classification)",
            "4.6",
        ),
    ];
    println!("{:<62}{:<66}Section", "Task", "Module(s)");
    for (task, module, sec) in rows {
        println!("{task:<62}{module:<66}{sec}");
    }
}
