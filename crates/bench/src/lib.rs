//! # dlb-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index), plus ablation studies and baseline comparisons. Binaries print
//! TSV to stdout with a `#`-prefixed header describing the experiment, so
//! results can be piped into any plotting tool.
//!
//! Run e.g. `cargo run --release -p dlb-bench --bin fig5`.

#![forbid(unsafe_code)]

use dlb_core::driver::RunConfig;
use dlb_sim::{LoadModel, NodeConfig};

/// The paper's environments: `p` homogeneous slaves, optionally with a
/// competing-load model on some of them.
pub fn cluster(p: usize, loads: &[(usize, LoadModel)]) -> RunConfig {
    let mut cfg = RunConfig::homogeneous(p);
    for (idx, load) in loads {
        cfg.slave_nodes[*idx] = NodeConfig::with_load(load.clone());
    }
    cfg
}

/// The paper's Figures 7–8 environment: one constant competing task on
/// processor 0.
pub fn one_loaded(p: usize) -> RunConfig {
    cluster(p, &[(0, LoadModel::Constant(1))])
}

/// The paper's Figure 9 load: 20 s period, 10 s loaded.
pub fn oscillating() -> LoadModel {
    LoadModel::Oscillating {
        period: dlb_sim::SimDuration::from_secs(20),
        duty: dlb_sim::SimDuration::from_secs(10),
        tasks: 1,
    }
}

/// Print a TSV row.
#[macro_export]
macro_rules! row {
    ($($v:expr),+ $(,)?) => {{
        let cells: Vec<String> = vec![$(format!("{}", $v)),+];
        println!("{}", cells.join("\t"));
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_applies_loads() {
        let cfg = one_loaded(4);
        assert!(!cfg.slave_nodes[0].load.is_dedicated());
        assert!(cfg.slave_nodes[1].load.is_dedicated());
        assert_eq!(cfg.slave_nodes.len(), 4);
    }
}
