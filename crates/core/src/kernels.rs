//! Application-kernel interfaces.
//!
//! The compiler classifies programs into three execution patterns; each
//! pattern has a kernel trait providing the *real data computation* plus a
//! calibrated cost model. The runtime charges the cost model to the virtual
//! CPU and runs the real arithmetic on the actual data, so results can be
//! verified against sequential execution exactly.
//!
//! Kernels are shared read-only (`Arc`) across master and slaves; mutable
//! state — the distributed work units — lives in the engines and travels in
//! messages.

use crate::msg::UnitData;
use dlb_sim::CpuWork;

/// Kernel for [`dlb_compiler::Pattern::Independent`] programs (MM): the
/// distributed loop's iterations are independent and the whole loop runs
/// `invocations` times.
pub trait IndependentKernel: Send + Sync + 'static {
    /// Number of distributed iterations (work units).
    fn n_units(&self) -> usize;
    /// How many times the distributed loop executes.
    fn invocations(&self) -> u64;
    /// Initial data for unit `idx` (the arrays that move with it).
    fn init_unit(&self, idx: usize) -> UnitData;
    /// Compute unit `idx` for one invocation (real arithmetic, in place).
    fn compute(&self, idx: usize, unit: &mut UnitData, invocation: u64);
    /// CPU cost of one `compute` call (the uniform estimate; see
    /// [`IndependentKernel::unit_cost_for`] for irregular loops).
    fn unit_cost(&self) -> CpuWork;

    /// CPU cost of computing a *specific* unit. Irregular applications
    /// (§2.1: "the load balancer cannot always assume that both the number
    /// and the size of work units will remain constant") override this; the
    /// balancer never sees it — it still reasons in units/second, which is
    /// exactly how the paper's design absorbs irregularity.
    fn unit_cost_for(&self, _idx: usize, _invocation: u64) -> CpuWork {
        self.unit_cost()
    }

    /// Per-unit contribution to a global convergence metric, accumulated by
    /// whichever slave computed the unit and reduced by the master at each
    /// invocation boundary (zero for fixed-trip-count loops).
    fn local_metric(&self, _idx: usize, _unit: &UnitData) -> f64 {
        0.0
    }

    /// Data-dependent WHILE termination (§4.1): called by the master with
    /// the reduced metric after each invocation settles; returning `true`
    /// ends the loop early. `invocations()` stays the upper bound. The
    /// default keeps the classic fixed-trip-count behaviour.
    fn converged(&self, _invocation: u64, _metric: f64) -> bool {
        false
    }
}

/// Kernel for [`dlb_compiler::Pattern::Pipelined`] programs (SOR):
/// iterations (columns) carry nearest-neighbour dependences; each sweep
/// pipelines along the rows in blocks.
///
/// Columns are `Vec<f64>` of length `col_len()`; entries `0` and
/// `col_len()-1` are fixed boundary rows. Interior rows `1..col_len()-1`
/// are computed in `rows_per_sweep()` steps, strip-mined into blocks by the
/// runtime.
pub trait PipelinedKernel: Send + Sync + 'static {
    /// Number of interior columns (work units). Unit `i` is global column
    /// `i + 1` (column 0 is the left wall).
    fn n_units(&self) -> usize;
    /// Length of a column vector (number of rows incl. the two walls).
    fn col_len(&self) -> usize;
    /// Number of sweeps (invocations of the distributed loop).
    fn sweeps(&self) -> u64;
    /// Initial values of interior column `idx`.
    fn init_unit(&self, idx: usize) -> Vec<f64>;
    /// The fixed left wall (global column 0).
    fn left_wall(&self) -> Vec<f64>;
    /// The fixed right wall (global column `n_units()+1`).
    fn right_wall(&self) -> Vec<f64>;
    /// Update `col`'s rows `rows` (interior indices) in place for one
    /// sweep step: `left` holds the left neighbour's *new* values, and
    /// `right_old` the right neighbour's *previous-sweep* values.
    fn compute_block(
        &self,
        col: &mut [f64],
        left: &[f64],
        right_old: &[f64],
        rows: std::ops::Range<usize>,
    );
    /// CPU cost of updating a single element.
    fn elem_cost(&self) -> CpuWork;
}

/// Kernel for [`dlb_compiler::Pattern::Shrinking`] programs (LU): at step
/// `k`, unit `k` becomes the pivot (finalized and broadcast) and all units
/// `j > k` are updated with it; the active set shrinks by one per step.
pub trait ShrinkingKernel: Send + Sync + 'static {
    /// Number of columns (work units). Steps run `0..n_units()-1`.
    fn n_units(&self) -> usize;
    /// Initial data for column `idx`.
    fn init_unit(&self, idx: usize) -> Vec<f64>;
    /// Data broadcast for step `k` from the (finalized) pivot column.
    fn pivot_payload(&self, k: usize, pivot_col: &[f64]) -> Vec<f64>;
    /// Update active column `j` for step `k` in place.
    fn update(&self, j: usize, col: &mut [f64], pivot: &[f64], k: usize);
    /// CPU cost of one `update` call at step `k`.
    fn step_cost(&self, k: usize) -> CpuWork;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial independent kernel: unit i holds [i, 0]; compute doubles.
    pub(crate) struct Doubler {
        pub n: usize,
        pub reps: u64,
    }

    impl IndependentKernel for Doubler {
        fn n_units(&self) -> usize {
            self.n
        }
        fn invocations(&self) -> u64 {
            self.reps
        }
        fn init_unit(&self, idx: usize) -> UnitData {
            vec![vec![idx as f64]]
        }
        fn compute(&self, _idx: usize, unit: &mut UnitData, _invocation: u64) {
            unit[0][0] *= 2.0;
        }
        fn unit_cost(&self) -> CpuWork {
            CpuWork::from_millis(10)
        }
    }

    #[test]
    fn kernel_traits_are_object_safe() {
        let k: std::sync::Arc<dyn IndependentKernel> =
            std::sync::Arc::new(Doubler { n: 4, reps: 2 });
        let mut u = k.init_unit(3);
        k.compute(3, &mut u, 0);
        k.compute(3, &mut u, 1);
        assert_eq!(u[0][0], 12.0);
    }
}
