//! Automatic selection of the load-balancing frequency (§4.3, Fig. 4).
//!
//! Three lower bounds govern the period between balancing operations:
//!
//! 1. **Movement cost** — tracking load more often than ~10× the cost of
//!    moving work cannot pay off: period ≥ 0.1 × measured movement cost.
//! 2. **Interaction cost** — the master↔slave exchange is overhead even
//!    when balanced: period ≥ 20 × measured interaction cost (≤5 % drag).
//! 3. **OS time quantum** — measuring over windows close to the quantum
//!    sees wild context-switching oscillations: period ≥ 5 quanta, and at
//!    least 500 ms.
//!
//! The target period is the max of the three. The master converts it into
//! *hook instances to skip*: it predicts how much computation a slave will
//! do in one target period from its adjusted rate, and tells the slave to
//! skip the corresponding number of hooks (§4.3). As work units shrink
//! (e.g. LU, §4.7) the same rule automatically reduces the frequency.

use dlb_sim::SimDuration;

/// Running exponential average of a duration-valued cost sample.
#[derive(Clone, Debug, Default)]
pub struct CostAverage {
    avg_us: f64,
    samples: u64,
}

impl CostAverage {
    /// Record a new sample (weight 0.3 to the new sample after the first).
    pub fn record(&mut self, d: SimDuration) {
        let x = d.micros() as f64;
        if self.samples == 0 {
            self.avg_us = x;
        } else {
            self.avg_us += 0.3 * (x - self.avg_us);
        }
        self.samples += 1;
    }

    /// Current average, or `None` before any sample.
    pub fn get(&self) -> Option<SimDuration> {
        (self.samples > 0).then(|| SimDuration::from_micros(self.avg_us.round() as u64))
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// The three bounds and the chosen target period (for reporting — the
/// paper's Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeriodBounds {
    pub movement_bound: SimDuration,
    pub interaction_bound: SimDuration,
    pub quantum_bound: SimDuration,
    pub target: SimDuration,
}

/// Frequency controller: maintains measured costs and computes the target
/// balancing period and per-slave hook-skip counts.
#[derive(Clone, Debug)]
pub struct FrequencyController {
    quantum: SimDuration,
    floor: SimDuration,
    movement: CostAverage,
    interaction: CostAverage,
    /// Multipliers from the paper's Fig. 4.
    pub movement_factor: f64,
    pub interaction_factor: f64,
    pub quantum_factor: f64,
}

impl FrequencyController {
    /// Create a controller for a system with the given OS quantum.
    pub fn new(quantum: SimDuration) -> FrequencyController {
        FrequencyController {
            quantum,
            floor: SimDuration::from_millis(500),
            movement: CostAverage::default(),
            interaction: CostAverage::default(),
            movement_factor: 0.1,
            interaction_factor: 20.0,
            quantum_factor: 5.0,
        }
    }

    /// Record a measured cost of moving work (elapsed, per movement).
    pub fn record_movement(&mut self, d: SimDuration) {
        self.movement.record(d);
    }

    /// Record a measured cost of one master↔slave interaction.
    pub fn record_interaction(&mut self, d: SimDuration) {
        self.interaction.record(d);
    }

    /// The three bounds and their max (the target period).
    pub fn bounds(&self) -> PeriodBounds {
        let movement_bound = self
            .movement
            .get()
            .map(|d| d.mul_f64(self.movement_factor))
            .unwrap_or(SimDuration::ZERO);
        let interaction_bound = self
            .interaction
            .get()
            .map(|d| d.mul_f64(self.interaction_factor))
            .unwrap_or(SimDuration::ZERO);
        let quantum_bound = self.quantum.mul_f64(self.quantum_factor).max(self.floor);
        let target = movement_bound.max(interaction_bound).max(quantum_bound);
        PeriodBounds {
            movement_bound,
            interaction_bound,
            quantum_bound,
            target,
        }
    }

    /// Target period between balancing operations.
    pub fn target_period(&self) -> SimDuration {
        self.bounds().target
    }

    /// Hooks to skip before the next status exchange, given a slave's
    /// adjusted rate (work units per second) and the expected work units
    /// executed between consecutive hook instances.
    ///
    /// The actual inter-balancing time is `(skip + 1) × units_per_hook /
    /// rate`; we choose the largest skip that keeps it ≤ the target period,
    /// so hooks quantize the approximation from below (the paper: "the more
    /// frequently hooks occur, the closer the actual period can be to the
    /// target period").
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` catches NaN too
    pub fn hooks_to_skip(&self, rate_units_per_sec: f64, units_per_hook: f64) -> u64 {
        if !(rate_units_per_sec > 0.0) || !(units_per_hook > 0.0) {
            return 0;
        }
        let time_per_hook = units_per_hook / rate_units_per_sec; // seconds
        if !(time_per_hook > 0.0) {
            return 0;
        }
        let target = self.target_period().as_secs_f64();
        let per = (target / time_per_hook).floor() as i64;
        (per - 1).max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn quantum_bound_dominates_initially() {
        let fc = FrequencyController::new(ms(100));
        let b = fc.bounds();
        assert_eq!(b.quantum_bound, ms(500));
        assert_eq!(b.target, ms(500));
    }

    #[test]
    fn floor_applies_for_small_quanta() {
        let fc = FrequencyController::new(ms(10));
        assert_eq!(fc.target_period(), ms(500)); // 5*10ms = 50ms < 500ms floor
    }

    #[test]
    fn large_quantum_beats_floor() {
        let fc = FrequencyController::new(ms(200));
        assert_eq!(fc.target_period(), ms(1000));
    }

    #[test]
    fn interaction_cost_extends_period() {
        let mut fc = FrequencyController::new(ms(100));
        fc.record_interaction(ms(50));
        // 20 * 50ms = 1s > 500ms.
        assert_eq!(fc.target_period(), ms(1000));
    }

    #[test]
    fn movement_cost_extends_period() {
        let mut fc = FrequencyController::new(ms(100));
        fc.record_movement(SimDuration::from_secs(20));
        // 0.1 * 20s = 2s.
        assert_eq!(fc.target_period(), SimDuration::from_secs(2));
    }

    #[test]
    fn cost_average_smooths() {
        let mut a = CostAverage::default();
        a.record(ms(100));
        a.record(ms(200));
        let v = a.get().unwrap();
        assert!(v > ms(100) && v < ms(200));
        assert_eq!(a.samples(), 2);
    }

    #[test]
    fn hooks_to_skip_matches_target() {
        let fc = FrequencyController::new(ms(100)); // target 500ms
                                                    // Rate 100 units/s, 1 unit per hook: hook every 10ms -> period
                                                    // 500ms = 50 hooks -> skip 49.
        assert_eq!(fc.hooks_to_skip(100.0, 1.0), 49);
        // Huge units: hook every 2s > target -> skip 0 (hook every time).
        assert_eq!(fc.hooks_to_skip(0.5, 1.0), 0);
    }

    #[test]
    fn hooks_to_skip_shrinks_as_units_shrink() {
        // LU §4.7: when units get cheaper (rate in units/s rises), more
        // hooks are skipped so the *time* between balancings stays put.
        let fc = FrequencyController::new(ms(100));
        let early = fc.hooks_to_skip(10.0, 1.0);
        let late = fc.hooks_to_skip(1000.0, 1.0);
        assert!(late > early);
        // Time between balancings stays ~target in both cases.
        let t_early = (early + 1) as f64 / 10.0;
        let t_late = (late + 1) as f64 / 1000.0;
        assert!((t_early - 0.5).abs() < 0.11, "{t_early}");
        assert!((t_late - 0.5).abs() < 0.01, "{t_late}");
    }

    #[test]
    fn hooks_to_skip_degenerate_inputs() {
        let fc = FrequencyController::new(ms(100));
        assert_eq!(fc.hooks_to_skip(0.0, 1.0), 0);
        assert_eq!(fc.hooks_to_skip(-1.0, 1.0), 0);
        assert_eq!(fc.hooks_to_skip(1.0, 0.0), 0);
    }
}
