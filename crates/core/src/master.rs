//! The master process: central load balancer + program control (§3.1, §4.1).
//!
//! The master mimics the application's outer loop structure so that it
//! executes the same number of balancing phases as the slaves and the
//! program terminates properly: one *invocation* per execution of the
//! distributed loop (MM repetition, SOR sweep, LU step). Within an
//! invocation it answers every slave status with instructions from the
//! [`Balancer`], and it releases the next invocation only when every slave
//! is idle, all expected work units are accounted for, and every issued
//! work transfer has been received (settlement) — so no unit can be lost
//! or skipped.
//!
//! Three variants of the control loop exist:
//!
//! * **plain** — no fault plan; trouble is a typed error, never a panic.
//! * **recoverable** (independent pattern) — the master detects dead slaves
//!   by silence, evicts them, and re-scatters their units to survivors via
//!   [`Msg::Restore`]; the run completes bit-for-bit correct with a
//!   degraded node count.
//! * **abort-only** (pipelined/shrinking patterns) — carried dependences
//!   make mid-run recovery impossible, so the master detects trouble
//!   (silence, slave errors) and aborts cleanly with partial metrics.

use crate::balancer::{Balancer, BalancerStats};
use crate::error::ProtocolError;
use crate::frequency::PeriodBounds;
use crate::msg::{Instructions, Msg, UnitData};
use crate::protocol::SenderWindow;
use crate::recovery::{redistribute, RecoveryStats};
use dlb_sim::{ActorCtx, ActorId, CpuWork, SimTime};
use std::sync::{Arc, Mutex};

/// One row of the master's balancing log — the raw material for the
/// paper's Figure 9 (raw rate, adjusted rate, work assignment over time).
#[derive(Clone, Debug)]
pub struct TimelineSample {
    pub t: SimTime,
    pub slave: usize,
    pub invocation: u64,
    pub raw_rate: f64,
    pub adjusted_rate: f64,
    /// Units assigned to this slave after the decision.
    pub assigned: u64,
    pub hooks_to_skip: u64,
}

/// Everything the master hands back to the driver.
#[derive(Debug, Default)]
pub struct MasterOutcome {
    /// Gathered unit data, unordered (the driver sorts by id).
    pub result: Vec<(usize, UnitData)>,
    pub timeline: Vec<TimelineSample>,
    pub stats: BalancerStats,
    pub bounds: Option<PeriodBounds>,
    /// Virtual time when the last invocation settled (before gather).
    pub compute_done: SimTime,
    /// Recovery actions taken (all zero for fault-free runs).
    pub recovery: RecoveryStats,
    /// The typed failure, if the run did not complete.
    pub error: Option<ProtocolError>,
    /// All invocations settled and the gather completed.
    pub completed: bool,
}

/// Initial data of a unit, for re-scattering a dead slave's block.
pub type InitUnitFn = Box<dyn Fn(usize) -> UnitData + Send>;
/// Recompute a unit end-to-end (init + the given number of completed
/// invocations).
pub type RecomputeUnitFn = Box<dyn Fn(usize, u64) -> UnitData + Send>;

/// Fault-tolerance wiring for the master.
pub struct MasterFt {
    pub tolerance: crate::error::FaultToleranceConfig,
    /// Independent pattern: `None` selects the abort-only control loop.
    pub init_unit: Option<InitUnitFn>,
    /// Independent pattern: used when a slave dies during the final gather.
    pub recompute_unit: Option<RecomputeUnitFn>,
}

/// Master configuration.
pub struct MasterConfig {
    pub balancer: Balancer,
    pub invocations: u64,
    /// Expected work-unit completions per invocation (LU shrinks).
    pub expected_units: Box<dyn Fn(u64) -> u64 + Send>,
    /// Per-invocation expected units-per-hook override (LU's units shrink;
    /// `None` keeps the initial value).
    pub units_per_hook: Option<Box<dyn Fn(u64) -> f64 + Send>>,
    /// CPU charged on the master per status processed.
    pub decision_cpu: CpuWork,
    pub record_timeline: bool,
    /// Data-dependent WHILE termination (§4.1): called with the invocation
    /// just settled and the reduced convergence metric; `true` ends the
    /// program before the invocation upper bound.
    pub converged: Box<dyn Fn(u64, f64) -> bool + Send>,
    /// Fault-mode control loop; `None` selects the plain loop.
    pub ft: Option<MasterFt>,
}

/// Partial results threaded through the control loops so a failed run
/// still surfaces everything measured up to the failure.
#[derive(Default)]
struct Scratch {
    result: Vec<(usize, UnitData)>,
    timeline: Vec<TimelineSample>,
    compute_done: SimTime,
    recovery: RecoveryStats,
}

fn send(ctx: &ActorCtx<Msg>, to: ActorId, msg: Msg) {
    let bytes = msg.wire_bytes();
    ctx.send(to, msg, bytes);
}

fn unexpected(context: &'static str, msg: &Msg) -> ProtocolError {
    ProtocolError::UnexpectedMessage {
        who: "master".to_string(),
        context,
        message: format!("{msg:?}").chars().take(120).collect(),
    }
}

/// The master actor body. `slaves` in slave-index order; `assignment` is
/// the initial block distribution; the outcome lands in `out`.
pub fn run_master(
    ctx: ActorCtx<Msg>,
    mut cfg: MasterConfig,
    slaves: Vec<ActorId>,
    assignment: Vec<(usize, usize)>,
    block_rows: u64,
    out: Arc<Mutex<MasterOutcome>>,
) {
    let mut sc = Scratch::default();
    let ft = cfg.ft.take();
    let res = match &ft {
        None => run_plain(&ctx, &mut cfg, &slaves, &assignment, block_rows, &mut sc),
        Some(ft) if ft.init_unit.is_some() => run_recoverable(
            &ctx,
            &mut cfg,
            ft,
            &slaves,
            &assignment,
            block_rows,
            &mut sc,
        ),
        Some(ft) => run_abort_only(
            &ctx,
            &mut cfg,
            ft,
            &slaves,
            &assignment,
            block_rows,
            &mut sc,
        ),
    };
    if res.is_err() {
        // Release every slave from whatever it is blocked on. recv_blocking
        // always matches Abort, so this cannot deadlock even outside fault
        // mode.
        for &s in &slaves {
            send(&ctx, s, Msg::Abort);
        }
    }
    let mut o = out.lock().unwrap_or_else(|p| p.into_inner());
    o.result = std::mem::take(&mut sc.result);
    o.timeline = std::mem::take(&mut sc.timeline);
    o.stats = cfg.balancer.stats();
    o.bounds = Some(cfg.balancer.period_bounds());
    o.compute_done = sc.compute_done;
    o.recovery = sc.recovery;
    o.completed = res.is_ok();
    o.error = res.err();
}

/// Fault-free control loop. Structurally the original master; every
/// protocol violation is a typed error instead of a panic.
fn run_plain(
    ctx: &ActorCtx<Msg>,
    cfg: &mut MasterConfig,
    slaves: &[ActorId],
    assignment: &[(usize, usize)],
    block_rows: u64,
    sc: &mut Scratch,
) -> Result<(), ProtocolError> {
    let n = slaves.len();
    for &s in slaves {
        send(
            ctx,
            s,
            Msg::Start {
                slaves: slaves.to_vec(),
                assignment: assignment.to_vec(),
                block_rows,
            },
        );
    }

    let mut sent_ctr = vec![0u64; n];
    let mut recv_ctr = vec![0u64; n];

    let mut inv = 0;
    while inv < cfg.invocations {
        cfg.balancer
            .set_remaining_invocations(cfg.invocations - inv);
        if let Some(uph) = &cfg.units_per_hook {
            cfg.balancer.set_units_per_hook(uph(inv));
        }
        for &s in slaves {
            send(ctx, s, Msg::InvocationStart { invocation: inv });
        }
        let expected = (cfg.expected_units)(inv);
        let mut done_sum = 0u64;
        let mut idle = vec![false; n];
        let mut metrics = vec![0.0f64; n];

        loop {
            // Settlement check.
            if idle.iter().all(|&b| b)
                && done_sum >= expected
                && sent_ctr.iter().sum::<u64>() == recv_ctr.iter().sum::<u64>()
                && cfg.balancer.outstanding_orders() == 0
            {
                if done_sum != expected {
                    return Err(ProtocolError::Inconsistent {
                        detail: format!(
                            "invocation {inv}: {done_sum} units completed, expected {expected}"
                        ),
                    });
                }
                break;
            }
            let env = ctx.recv();
            if std::env::var_os("DLB_TRACE").is_some() {
                eprintln!(
                    "[master t={} inv={inv}] got {:?} (done {done_sum}/{expected}, idle {idle:?}, sent {sent_ctr:?}, recv {recv_ctr:?})",
                    ctx.now(),
                    match &env.msg {
                        Msg::Status(s) => format!("Status(slave {}, delta {}, active {})", s.slave, s.units_done_delta, s.active_units),
                        other => format!("{other:?}").chars().take(60).collect::<String>(),
                    }
                );
            }
            match env.msg {
                Msg::Status(st) => {
                    if st.invocation > inv {
                        return Err(unexpected("status from the future", &Msg::Status(st)));
                    }
                    if st.invocation == inv {
                        done_sum += st.units_done_delta;
                    }
                    sent_ctr[st.slave] = sent_ctr[st.slave].max(st.transfers_sent);
                    recv_ctr[st.slave] =
                        recv_ctr[st.slave].max(st.received_from.iter().sum::<u64>());
                    idle[st.slave] = false;
                    ctx.advance_work(cfg.decision_cpu);
                    let decision = cfg.balancer.on_status(&st);
                    if cfg.record_timeline {
                        sc.timeline.push(TimelineSample {
                            t: ctx.now(),
                            slave: st.slave,
                            invocation: inv,
                            raw_rate: decision.raw_rate,
                            adjusted_rate: decision.adjusted_rate,
                            assigned: decision.owned_after,
                            hooks_to_skip: decision.instructions.hooks_to_skip,
                        });
                    }
                    send(
                        ctx,
                        slaves[st.slave],
                        Msg::Instructions(decision.instructions),
                    );
                }
                Msg::InvocationDone {
                    slave,
                    invocation,
                    transfers_sent,
                    received_from,
                    metric,
                    ..
                } => {
                    if invocation != inv {
                        return Err(ProtocolError::Inconsistent {
                            detail: format!("InvocationDone for {invocation} while settling {inv}"),
                        });
                    }
                    idle[slave] = true;
                    metrics[slave] = metric;
                    sent_ctr[slave] = sent_ctr[slave].max(transfers_sent);
                    recv_ctr[slave] = recv_ctr[slave].max(received_from.iter().sum::<u64>());
                    cfg.balancer.ack_transfers(slave, &received_from);
                }
                Msg::SlaveError { slave, error } => {
                    return Err(ProtocolError::SlaveFailed {
                        slave,
                        error: Box::new(error),
                    });
                }
                other => return Err(unexpected("invocation loop", &other)),
            }
        }
        let reduced: f64 = metrics.iter().sum();
        inv += 1;
        if (cfg.converged)(inv - 1, reduced) {
            break;
        }
    }

    sc.compute_done = ctx.now();

    // Gather results.
    for &s in slaves {
        send(ctx, s, Msg::Gather);
    }
    let mut got = 0;
    while got < n {
        let env = ctx.recv();
        match env.msg {
            Msg::GatherData { units, .. } => {
                sc.result.extend(units);
                got += 1;
            }
            // Final statuses racing the gather are harmless.
            Msg::Status(_) | Msg::InvocationDone { .. } => {}
            Msg::SlaveError { slave, error } => {
                return Err(ProtocolError::SlaveFailed {
                    slave,
                    error: Box::new(error),
                });
            }
            other => return Err(unexpected("gather", &other)),
        }
    }
    Ok(())
}

/// Recoverable control loop (independent pattern): silence-based failure
/// detection, eviction, and unit re-scattering.
#[allow(clippy::too_many_arguments)]
fn run_recoverable(
    ctx: &ActorCtx<Msg>,
    cfg: &mut MasterConfig,
    ft: &MasterFt,
    slaves: &[ActorId],
    assignment: &[(usize, usize)],
    block_rows: u64,
    sc: &mut Scratch,
) -> Result<(), ProtocolError> {
    let n = slaves.len();
    let tol = ft.tolerance.clone();
    let init_unit = ft
        .init_unit
        .as_ref()
        .expect("recoverable loop needs init_unit");

    let start_msg = |slaves: &[ActorId]| Msg::Start {
        slaves: slaves.to_vec(),
        assignment: assignment.to_vec(),
        block_rows,
    };
    for &s in slaves {
        send(ctx, s, start_msg(slaves));
    }

    // Liveness and dedup state. `next_nudge` rate-limits re-sends per
    // slave; re-sends themselves are event-triggered (see below), so a
    // fault-free run never produces one.
    let mut alive = vec![true; n];
    let mut heard_any = vec![false; n];
    let mut last_heard = vec![ctx.now(); n];
    let mut next_nudge = vec![ctx.now() + tol.nudge; n];
    let mut last_hook_seq = vec![0u64; n];
    // Ownership as the master believes it. Work movement is disabled in
    // fault mode, so only evictions/restores change it — authoritative.
    let mut owned: Vec<Vec<usize>> = assignment
        .iter()
        .map(|&(lo, hi)| (lo..hi).collect())
        .collect();
    // Restore protocol: one sender window per destination (sequence
    // counter, ack watermark, unacknowledged messages for nudge re-sends).
    // The transition rules live in `protocol::SenderWindow`, where the
    // model checker in `dlb-analyze` exercises them exhaustively.
    let mut restore_win: Vec<SenderWindow<Msg>> = vec![SenderWindow::new(); n];
    // Bounded instruction retry: (seq, message, re-sends so far), cleared
    // when a status acknowledges the sequence number.
    let mut unacked_instr: Vec<Option<(u64, Instructions, u32)>> = (0..n).map(|_| None).collect();

    let mut inv = 0;
    'invocations: while inv < cfg.invocations {
        cfg.balancer
            .set_remaining_invocations(cfg.invocations - inv);
        if let Some(uph) = &cfg.units_per_hook {
            cfg.balancer.set_units_per_hook(uph(inv));
        }
        for (i, &s) in slaves.iter().enumerate() {
            if alive[i] {
                send(ctx, s, Msg::InvocationStart { invocation: inv });
            }
        }
        let mut done = vec![false; n];
        let mut metrics = vec![0.0f64; n];
        let settled =
            |s: usize, done: &[bool], win: &[SenderWindow<Msg>]| done[s] && win[s].fully_acked();

        loop {
            if (0..n).all(|s| !alive[s] || settled(s, &done, &restore_win)) {
                break;
            }
            if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
                match env.msg {
                    Msg::Status(st) => {
                        let s = st.slave;
                        if !alive[s] {
                            continue; // evicted slave still talking
                        }
                        heard_any[s] = true;
                        last_heard[s] = ctx.now();
                        if st.invocation > inv {
                            return Err(unexpected("status from the future", &Msg::Status(st)));
                        }
                        if st.hook_seq <= last_hook_seq[s] {
                            sc.recovery.status_dups_ignored += 1;
                            continue;
                        }
                        last_hook_seq[s] = st.hook_seq;
                        if let Some((seq, _, _)) = &unacked_instr[s] {
                            // Ack lag alone is no evidence of loss: a slave
                            // pipelines instructions, so it runs a couple of
                            // sequence numbers behind even fault-free, and a
                            // dropped instruction is superseded by the next
                            // one anyway. Retry only fires for a slave stuck
                            // at a barrier (see the InvocationDone arm),
                            // where nothing can supersede.
                            if st.last_applied_seq >= *seq {
                                unacked_instr[s] = None;
                            }
                        }
                        ctx.advance_work(cfg.decision_cpu);
                        let decision = cfg.balancer.on_status(&st);
                        if cfg.record_timeline {
                            sc.timeline.push(TimelineSample {
                                t: ctx.now(),
                                slave: s,
                                invocation: inv,
                                raw_rate: decision.raw_rate,
                                adjusted_rate: decision.adjusted_rate,
                                assigned: decision.owned_after,
                                hooks_to_skip: decision.instructions.hooks_to_skip,
                            });
                        }
                        unacked_instr[s] =
                            Some((decision.instructions.seq, decision.instructions.clone(), 0));
                        send(ctx, slaves[s], Msg::Instructions(decision.instructions));
                    }
                    Msg::InvocationDone {
                        slave,
                        invocation,
                        metric,
                        restore_seq,
                        ..
                    } => {
                        if !alive[slave] {
                            sc.recovery.done_dups_ignored += 1;
                            continue;
                        }
                        heard_any[slave] = true;
                        last_heard[slave] = ctx.now();
                        restore_win[slave].ack(restore_seq);
                        if invocation == inv {
                            done[slave] = true;
                            metrics[slave] = metric;
                        } else if invocation < inv {
                            sc.recovery.done_dups_ignored += 1;
                            // A heartbeat from a slave stuck at the previous
                            // barrier: its release was lost. The heartbeat
                            // itself is the re-send trigger — the slave is
                            // chatty, so a silence timer would never fire.
                            if ctx.now() >= next_nudge[slave] {
                                next_nudge[slave] = ctx.now() + tol.nudge;
                                send(ctx, slaves[slave], Msg::InvocationStart { invocation: inv });
                                sc.recovery.invocation_start_resends += 1;
                                // A stuck slave cannot supersede a lost
                                // instruction with a newer one; replay the
                                // unacknowledged one (bounded).
                                if let Some((_, instr, tries)) = &mut unacked_instr[slave] {
                                    if *tries < tol.instr_retries {
                                        *tries += 1;
                                        sc.recovery.instr_resends += 1;
                                        send(ctx, slaves[slave], Msg::Instructions(instr.clone()));
                                    }
                                }
                            }
                        } else {
                            return Err(ProtocolError::Inconsistent {
                                detail: format!(
                                    "InvocationDone for {invocation} while settling {inv}"
                                ),
                            });
                        }
                        // Done but missing restored units: the Restore was
                        // lost in flight. Replay everything unacknowledged.
                        if done[slave]
                            && !restore_win[slave].fully_acked()
                            && ctx.now() >= next_nudge[slave]
                        {
                            next_nudge[slave] = ctx.now() + tol.nudge;
                            for (_, msg) in restore_win[slave].unacked() {
                                send(ctx, slaves[slave], msg.clone());
                                sc.recovery.restore_resends += 1;
                            }
                        }
                    }
                    Msg::SlaveError { slave, error } => {
                        return Err(ProtocolError::SlaveFailed {
                            slave,
                            error: Box::new(error),
                        });
                    }
                    other => return Err(unexpected("recoverable invocation loop", &other)),
                }
            }

            // Timers: suspicion and nudges for every live, unsettled slave.
            let now = ctx.now();
            for s in 0..n {
                if !alive[s] || settled(s, &done, &restore_win) {
                    continue;
                }
                let silent = now.saturating_since(last_heard[s]);
                if silent >= tol.suspicion {
                    // Declare dead, evict, and re-scatter its units.
                    alive[s] = false;
                    sc.recovery.slaves_declared_dead += 1;
                    sc.recovery.first_death.get_or_insert(now);
                    send(ctx, slaves[s], Msg::Evict);
                    let dead_units = std::mem::take(&mut owned[s]);
                    // Its per-invocation metric no longer counts: survivors
                    // recompute its units and contribute their metric.
                    metrics[s] = 0.0;
                    let survivors: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
                    if survivors.is_empty() {
                        return Err(ProtocolError::AllSlavesDead);
                    }
                    for (t, units) in redistribute(&dead_units, &survivors) {
                        let payload: Vec<(usize, UnitData)> =
                            units.iter().map(|&u| (u, init_unit(u))).collect();
                        sc.recovery.units_restored += payload.len() as u64;
                        owned[t].extend(&units);
                        let msg = restore_win[t]
                            .send_with(|seq| Msg::Restore {
                                seq,
                                invocation: inv,
                                units: payload,
                            })
                            .clone();
                        send(ctx, slaves[t], msg);
                    }
                } else if !heard_any[s] && silent >= tol.nudge && now >= next_nudge[s] {
                    // A slave that has never spoken may have lost its Start;
                    // it has nothing to heartbeat, so only a silence timer
                    // can catch it. Every other loss is event-triggered from
                    // the receive arms above: a slave missing a control
                    // message keeps heartbeating, and the heartbeat itself
                    // carries the evidence of what it is missing.
                    next_nudge[s] = now + tol.nudge;
                    send(ctx, slaves[s], start_msg(slaves));
                    sc.recovery.start_resends += 1;
                    send(ctx, slaves[s], Msg::InvocationStart { invocation: inv });
                    sc.recovery.invocation_start_resends += 1;
                }
            }
            if !alive.iter().any(|&a| a) {
                return Err(ProtocolError::AllSlavesDead);
            }
        }
        let reduced: f64 = metrics.iter().sum();
        inv += 1;
        if (cfg.converged)(inv - 1, reduced) {
            break 'invocations;
        }
    }

    sc.compute_done = ctx.now();

    // Gather from the survivors; slaves dying here get their units
    // recomputed locally from the retained initial data.
    let recompute = ft
        .recompute_unit
        .as_ref()
        .expect("recoverable loop needs recompute_unit");
    let mut got = vec![false; n];
    let now = ctx.now();
    for s in 0..n {
        next_nudge[s] = now + tol.nudge;
        last_heard[s] = now;
        if alive[s] {
            send(ctx, slaves[s], Msg::Gather);
        }
    }
    loop {
        if (0..n).all(|s| !alive[s] || got[s]) {
            break;
        }
        if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
            match env.msg {
                Msg::GatherData { slave, units } => {
                    if !alive[slave] || got[slave] {
                        sc.recovery.gather_dups_ignored += 1;
                        if alive[slave] {
                            send(ctx, slaves[slave], Msg::GatherAck);
                        }
                    } else {
                        got[slave] = true;
                        last_heard[slave] = ctx.now();
                        sc.result.extend(units);
                        send(ctx, slaves[slave], Msg::GatherAck);
                    }
                }
                // Final statuses and idle heartbeats racing the gather. A
                // heartbeat from a slave that owes us data means it never
                // received the Gather — the heartbeat is the re-send
                // trigger (it is chatty, so a silence timer never fires).
                Msg::Status(st) => {
                    let s = st.slave;
                    if alive[s] {
                        last_heard[s] = ctx.now();
                        if !got[s] && ctx.now() >= next_nudge[s] {
                            next_nudge[s] = ctx.now() + tol.nudge;
                            send(ctx, slaves[s], Msg::Gather);
                            sc.recovery.gather_resends += 1;
                        }
                    }
                }
                Msg::InvocationDone { slave, .. } => {
                    if alive[slave] {
                        last_heard[slave] = ctx.now();
                        if !got[slave] && ctx.now() >= next_nudge[slave] {
                            next_nudge[slave] = ctx.now() + tol.nudge;
                            send(ctx, slaves[slave], Msg::Gather);
                            sc.recovery.gather_resends += 1;
                        }
                    }
                }
                Msg::SlaveError { slave, error } => {
                    return Err(ProtocolError::SlaveFailed {
                        slave,
                        error: Box::new(error),
                    });
                }
                other => return Err(unexpected("recoverable gather", &other)),
            }
        }
        let now = ctx.now();
        for s in 0..n {
            if !alive[s] || got[s] {
                continue;
            }
            let silent = now.saturating_since(last_heard[s]);
            if silent >= tol.suspicion {
                alive[s] = false;
                sc.recovery.slaves_declared_dead += 1;
                sc.recovery.first_death.get_or_insert(now);
                send(ctx, slaves[s], Msg::Evict);
                for u in std::mem::take(&mut owned[s]) {
                    sc.result.push((u, recompute(u, inv)));
                    sc.recovery.units_recomputed += 1;
                }
            } else if silent >= tol.nudge && now >= next_nudge[s] {
                // Silent but not yet suspect: the slave may be waiting for
                // a GatherAck after its GatherData was lost (it waits
                // quietly, re-sending only on a duplicate Gather).
                next_nudge[s] = now + tol.nudge;
                send(ctx, slaves[s], Msg::Gather);
                sc.recovery.gather_resends += 1;
            }
        }
    }
    Ok(())
}

/// Abort-only control loop (pipelined/shrinking patterns): the plain
/// settlement logic plus deadlines, duplicate suppression, and
/// silence-based failure detection. Any fault that loses protocol state
/// surfaces as a typed error — never a hang.
#[allow(clippy::too_many_arguments)]
fn run_abort_only(
    ctx: &ActorCtx<Msg>,
    cfg: &mut MasterConfig,
    ft: &MasterFt,
    slaves: &[ActorId],
    assignment: &[(usize, usize)],
    block_rows: u64,
    sc: &mut Scratch,
) -> Result<(), ProtocolError> {
    let n = slaves.len();
    let tol = ft.tolerance.clone();
    for &s in slaves {
        send(
            ctx,
            s,
            Msg::Start {
                slaves: slaves.to_vec(),
                assignment: assignment.to_vec(),
                block_rows,
            },
        );
    }

    let mut last_heard = vec![ctx.now(); n];
    let mut last_hook_seq = vec![0u64; n];
    let mut sent_ctr = vec![0u64; n];
    let mut recv_ctr = vec![0u64; n];

    let mut inv = 0;
    while inv < cfg.invocations {
        cfg.balancer
            .set_remaining_invocations(cfg.invocations - inv);
        if let Some(uph) = &cfg.units_per_hook {
            cfg.balancer.set_units_per_hook(uph(inv));
        }
        for &s in slaves {
            send(ctx, s, Msg::InvocationStart { invocation: inv });
        }
        let expected = (cfg.expected_units)(inv);
        let mut done_sum = 0u64;
        let mut idle = vec![false; n];
        let mut metrics = vec![0.0f64; n];

        loop {
            if idle.iter().all(|&b| b)
                && done_sum >= expected
                && sent_ctr.iter().sum::<u64>() == recv_ctr.iter().sum::<u64>()
                && cfg.balancer.outstanding_orders() == 0
            {
                if done_sum != expected {
                    return Err(ProtocolError::Inconsistent {
                        detail: format!(
                            "invocation {inv}: {done_sum} units completed, expected {expected}"
                        ),
                    });
                }
                break;
            }
            if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
                match env.msg {
                    Msg::Status(st) => {
                        let s = st.slave;
                        last_heard[s] = ctx.now();
                        if st.invocation > inv {
                            return Err(unexpected("status from the future", &Msg::Status(st)));
                        }
                        if st.hook_seq <= last_hook_seq[s] {
                            sc.recovery.status_dups_ignored += 1;
                            continue;
                        }
                        last_hook_seq[s] = st.hook_seq;
                        if st.invocation == inv {
                            done_sum += st.units_done_delta;
                        }
                        sent_ctr[s] = sent_ctr[s].max(st.transfers_sent);
                        recv_ctr[s] = recv_ctr[s].max(st.received_from.iter().sum::<u64>());
                        idle[s] = false;
                        ctx.advance_work(cfg.decision_cpu);
                        let decision = cfg.balancer.on_status(&st);
                        if cfg.record_timeline {
                            sc.timeline.push(TimelineSample {
                                t: ctx.now(),
                                slave: s,
                                invocation: inv,
                                raw_rate: decision.raw_rate,
                                adjusted_rate: decision.adjusted_rate,
                                assigned: decision.owned_after,
                                hooks_to_skip: decision.instructions.hooks_to_skip,
                            });
                        }
                        send(ctx, slaves[s], Msg::Instructions(decision.instructions));
                    }
                    Msg::InvocationDone {
                        slave,
                        invocation,
                        transfers_sent,
                        received_from,
                        metric,
                        ..
                    } => {
                        last_heard[slave] = ctx.now();
                        if invocation == inv {
                            idle[slave] = true;
                            metrics[slave] = metric;
                            sent_ctr[slave] = sent_ctr[slave].max(transfers_sent);
                            recv_ctr[slave] =
                                recv_ctr[slave].max(received_from.iter().sum::<u64>());
                            cfg.balancer.ack_transfers(slave, &received_from);
                        } else if invocation < inv {
                            sc.recovery.done_dups_ignored += 1;
                        } else {
                            return Err(ProtocolError::Inconsistent {
                                detail: format!(
                                    "InvocationDone for {invocation} while settling {inv}"
                                ),
                            });
                        }
                    }
                    Msg::SlaveError { slave, error } => {
                        return Err(ProtocolError::SlaveFailed {
                            slave,
                            error: Box::new(error),
                        });
                    }
                    other => return Err(unexpected("abort-only invocation loop", &other)),
                }
            }
            let now = ctx.now();
            for (s, &heard) in last_heard.iter().enumerate() {
                if now.saturating_since(heard) >= tol.suspicion {
                    return Err(ProtocolError::SlaveDead { slave: s, at: now });
                }
            }
        }
        let reduced: f64 = metrics.iter().sum();
        inv += 1;
        if (cfg.converged)(inv - 1, reduced) {
            break;
        }
    }

    sc.compute_done = ctx.now();

    // Gather with deadlines: a lost Gather is re-sent while the slave's
    // barrier heartbeats keep it alive; a slave that stays silent is dead.
    let mut got = vec![false; n];
    let mut next_nudge = vec![ctx.now() + tol.nudge; n];
    for &s in slaves {
        send(ctx, s, Msg::Gather);
    }
    while !got.iter().all(|&g| g) {
        if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
            match env.msg {
                Msg::GatherData { slave, units } => {
                    last_heard[slave] = ctx.now();
                    if got[slave] {
                        sc.recovery.gather_dups_ignored += 1;
                    } else {
                        got[slave] = true;
                        sc.result.extend(units);
                    }
                }
                Msg::Status(st) => last_heard[st.slave] = ctx.now(),
                Msg::InvocationDone { slave, .. } => last_heard[slave] = ctx.now(),
                Msg::SlaveError { slave, error } => {
                    return Err(ProtocolError::SlaveFailed {
                        slave,
                        error: Box::new(error),
                    });
                }
                other => return Err(unexpected("abort-only gather", &other)),
            }
        }
        let now = ctx.now();
        for s in 0..n {
            if got[s] {
                continue;
            }
            if now.saturating_since(last_heard[s]) >= tol.suspicion {
                return Err(ProtocolError::SlaveDead { slave: s, at: now });
            }
            if now >= next_nudge[s] {
                next_nudge[s] = now + tol.nudge;
                send(ctx, slaves[s], Msg::Gather);
                sc.recovery.gather_resends += 1;
            }
        }
    }
    Ok(())
}
