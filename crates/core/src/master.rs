//! The master process: central load balancer + program control (§3.1, §4.1).
//!
//! The master mimics the application's outer loop structure so that it
//! executes the same number of balancing phases as the slaves and the
//! program terminates properly: one *invocation* per execution of the
//! distributed loop (MM repetition, SOR sweep, LU step). Within an
//! invocation it answers every slave status with instructions from the
//! [`Balancer`], and it releases the next invocation only when every slave
//! is idle, every transfer channel has settled (`sent_to[a][b] ==
//! received_from[b][a]` for every live pair), and no movement order is
//! outstanding — so no unit can be lost, duplicated, or skipped.
//!
//! Three variants of the control loop exist:
//!
//! * **plain** — no fault plan; trouble is a typed error, never a panic.
//! * **recoverable** (independent pattern) — the master detects dead slaves
//!   by silence, evicts them, fences off their transfer channels via
//!   [`Msg::Evicted`] / [`Msg::OwnReport`], and re-scatters exactly the
//!   units no survivor reports. Before a suspect is formally evicted, its
//!   units may be speculatively re-executed on an idle survivor
//!   ([`Msg::Speculate`]); a commit adopts the results without replay.
//! * **checkpointed** (pipelined/shrinking patterns) — carried dependences
//!   make in-place recovery impossible, so slaves ship best-effort state
//!   checkpoints at invocation barriers and the master rolls the survivors
//!   back to the newest complete checkpoint ([`Msg::Rollback`]) instead of
//!   aborting. The estimated restart cost is folded into the balancer's
//!   move-profitability check, and a silent suspect's next invocation is
//!   raced on an idle survivor from the banked snapshot ([`Msg::Speculate`])
//!   so an eviction rolls back one invocation less.
//!
//! The structural state of both fault-mode loops — membership, epochs, the
//! checkpoint bank, speculation, eviction resolution — lives in
//! [`crate::session`]; this file is the protocol driver (receive arms,
//! timer sweeps, the gather). All master → slave recovery messages
//! (`Restore`, `Speculate`, `SpecCommit`, `SpecCancel`, `Rollback`) share
//! one per-destination [`SenderWindow`](crate::protocol::SenderWindow):
//! sequence-numbered, acknowledged via `InvocationDone::restore_seq`,
//! deduplicated by the receiver, re-sent on evidence of loss. The
//! transition rules are modelled and exhaustively checked in `dlb-analyze`
//! (restore + transfer models in [`crate::session::model`]).
//!
//! Both fault-mode loops also *replicate the control plane*: at each
//! invocation boundary the master publishes a [`ReplicaMsg`] (membership,
//! epoch, invocation watermark, newest complete checkpoint, cumulative
//! recovery counters) to the deputy slaves, and heartbeats them with
//! [`Msg::MasterPing`] between barriers. When the master crashes the
//! deputies elect a successor ([`crate::session::replica`]); the winner
//! re-enters these same loops through [`run_takeover`] with a
//! [`TakeoverSeed`], which seeds the session from the replica, fences the
//! new reign behind `term << 32` epochs, rolls the survivors back, and
//! resumes — bit-exact, because rollback state is value-deterministic. A
//! master that learns of a higher-term [`Msg::Promoted`] exits silently
//! with [`ProtocolError::Superseded`]: it writes no outcome and aborts
//! no one, because exactly one reign per term owns the run.

use crate::balancer::{Balancer, BalancerStats};
use crate::error::{FaultToleranceConfig, ProtocolError};
use crate::frequency::PeriodBounds;
use crate::msg::{Instructions, Msg, ReplicaMsg, UnitData};
use crate::protocol::SenderWindow;
use crate::recovery::RecoveryStats;
use crate::session::master::{
    cancel_spec, channels_settled, merge_max, resolve_evictions, send, CkSession, Eviction,
};
use crate::session::membership::Membership;
use crate::session::replica::TakeoverSeed;
use crate::session::speculation::RestartSpec;
use dlb_sim::{ActorCtx, ActorId, CpuWork, SimTime};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// One row of the master's balancing log — the raw material for the
/// paper's Figure 9 (raw rate, adjusted rate, work assignment over time).
#[derive(Clone, Debug)]
pub struct TimelineSample {
    pub t: SimTime,
    pub slave: usize,
    pub invocation: u64,
    pub raw_rate: f64,
    pub adjusted_rate: f64,
    /// Units assigned to this slave after the decision.
    pub assigned: u64,
    pub hooks_to_skip: u64,
}

/// Everything the master hands back to the driver.
#[derive(Debug, Default)]
pub struct MasterOutcome {
    /// Gathered unit data, unordered (the driver sorts by id).
    pub result: Vec<(usize, UnitData)>,
    pub timeline: Vec<TimelineSample>,
    pub stats: BalancerStats,
    pub bounds: Option<PeriodBounds>,
    /// Virtual time when the last invocation settled (before gather).
    pub compute_done: SimTime,
    /// Recovery actions taken (all zero for fault-free runs).
    pub recovery: RecoveryStats,
    /// The typed failure, if the run did not complete.
    pub error: Option<ProtocolError>,
    /// All invocations settled and the gather completed.
    pub completed: bool,
}

/// Initial data of a unit, for re-scattering a dead slave's block.
pub type InitUnitFn = Box<dyn Fn(usize) -> UnitData + Send>;
/// Recompute a unit end-to-end (init + the given number of completed
/// invocations).
pub type RecomputeUnitFn = Box<dyn Fn(usize, u64) -> UnitData + Send>;

/// Fault-tolerance wiring for the master.
pub struct MasterFt {
    pub tolerance: FaultToleranceConfig,
    /// Independent pattern: selects the recoverable control loop.
    pub init_unit: Option<InitUnitFn>,
    /// Independent pattern: used when a slave dies during the final gather.
    pub recompute_unit: Option<RecomputeUnitFn>,
    /// Pipelined/shrinking patterns: initial unit data for the epoch-zero
    /// snapshot; selects the checkpointed control loop when `init_unit` is
    /// absent.
    pub checkpoint_init: Option<InitUnitFn>,
}

/// Everything a promoted deputy needs to rebuild the master role in place:
/// a factory for a fresh [`MasterConfig`] (balancer included — balancer
/// state is not replicated, it re-learns rates from the first statuses),
/// the run topology, and the shared outcome slot. Handed to every slave in
/// fault mode; used only by the election winner.
pub struct TakeoverKit {
    /// Rebuilds the master configuration from scratch.
    pub make_cfg: Box<dyn Fn() -> MasterConfig + Send + Sync>,
    /// The original master's actor id (fenced with `Promoted` on takeover
    /// in case it is merely slow, not dead).
    pub master: ActorId,
    pub slaves: Vec<ActorId>,
    pub assignment: Vec<(usize, usize)>,
    pub block_rows: u64,
    pub outcome: Arc<Mutex<MasterOutcome>>,
}

/// Master configuration.
pub struct MasterConfig {
    pub balancer: Balancer,
    pub invocations: u64,
    /// Expected work-unit completions per invocation (LU shrinks).
    pub expected_units: Box<dyn Fn(u64) -> u64 + Send>,
    /// Per-invocation expected units-per-hook override (LU's units shrink;
    /// `None` keeps the initial value).
    pub units_per_hook: Option<Box<dyn Fn(u64) -> f64 + Send>>,
    /// CPU charged on the master per status processed.
    pub decision_cpu: CpuWork,
    pub record_timeline: bool,
    /// Data-dependent WHILE termination (§4.1): called with the invocation
    /// just settled and the reduced convergence metric; `true` ends the
    /// program before the invocation upper bound.
    pub converged: Box<dyn Fn(u64, f64) -> bool + Send>,
    /// Fault-mode control loop; `None` selects the plain loop.
    pub ft: Option<MasterFt>,
}

/// Partial results threaded through the control loops so a failed run
/// still surfaces everything measured up to the failure.
#[derive(Default)]
struct Scratch {
    result: Vec<(usize, UnitData)>,
    timeline: Vec<TimelineSample>,
    compute_done: SimTime,
    recovery: RecoveryStats,
}

fn unexpected(context: &'static str, msg: &Msg) -> ProtocolError {
    ProtocolError::UnexpectedMessage {
        who: "master".to_string(),
        context,
        message: format!("{msg:?}").chars().take(120).collect(),
    }
}

/// Whether a slave-reported error is survivable by a checkpoint rollback
/// (the slave keeps running and waits for the `Rollback`) as opposed to a
/// failure of the slave itself.
fn slave_recoverable(e: &ProtocolError) -> bool {
    matches!(
        e,
        ProtocolError::Timeout { .. }
            | ProtocolError::MissingPivot { .. }
            | ProtocolError::NonNeighborTransfer { .. }
            | ProtocolError::Inconsistent { .. }
            | ProtocolError::UnexpectedMessage { .. }
    )
}

/// Master-side failover state: this reign's term, the deputy set, the
/// replica freshness each deputy has confirmed (piggybacked on
/// `InvocationDone::replica_inv`), and the heartbeat timer.
struct Failover {
    term: u64,
    deputies: usize,
    /// Replica freshness confirmed by each deputy.
    acked: Vec<u64>,
    next_ping: SimTime,
}

impl Failover {
    fn new(n: usize, term: u64, tol: &FaultToleranceConfig, now: SimTime) -> Failover {
        let deputies = tol.deputies.min(n);
        Failover {
            term,
            deputies,
            acked: vec![0; deputies],
            next_ping: now + tol.master_heartbeat,
        }
    }

    /// Record a deputy's piggybacked replica confirmation.
    fn note_ack(&mut self, slave: usize, replica_inv: u64) {
        if slave < self.deputies {
            self.acked[slave] = self.acked[slave].max(replica_inv);
        }
    }

    /// Heartbeat the live deputies so their election trigger stays quiet
    /// between barriers. Runs from every timer sweep; rate-limited to the
    /// configured cadence.
    fn ping(
        &mut self,
        ctx: &ActorCtx<Msg>,
        slaves: &[ActorId],
        alive: &[bool],
        tol: &FaultToleranceConfig,
        rec: &mut RecoveryStats,
    ) {
        let now = ctx.now();
        if now < self.next_ping {
            return;
        }
        self.next_ping = now + tol.master_heartbeat;
        let msg = Msg::MasterPing { term: self.term };
        for d in 0..self.deputies {
            if alive[d] {
                rec.replication_bytes += msg.wire_bytes();
                send(ctx, slaves[d], msg.clone());
            }
        }
    }

    /// Publish a control-plane replica to every live deputy. The snapshot
    /// payload rides only to deputies whose confirmed freshness lags
    /// `fresh` — once a deputy acknowledges holding generation `fresh`,
    /// further publishes shrink to the cheap scalar core. A lost replica
    /// self-heals at the next cadence point (the lagging ack keeps the
    /// snapshot riding along).
    fn publish(
        &mut self,
        ctx: &ActorCtx<Msg>,
        slaves: &[ActorId],
        alive: &[bool],
        fresh: u64,
        make: impl Fn(bool) -> ReplicaMsg,
        rec: &mut RecoveryStats,
    ) {
        for d in 0..self.deputies {
            if !alive[d] {
                continue;
            }
            let with_snapshot = self.acked[d] < fresh;
            let msg = Msg::Replica(Box::new(make(with_snapshot)));
            rec.replicas_published += 1;
            rec.replication_bytes += msg.wire_bytes();
            send(ctx, slaves[d], msg);
        }
    }
}

/// The election winner's actor body: announce the new reign, then re-enter
/// the regular fault-mode control loop seeded from the replica. Writes the
/// shared outcome itself (the crashed master never will); returns `Ok` even
/// on a failed run — the failure is recorded in the outcome, exactly as
/// `run_master` records it — so the caller never ships a stray
/// `SlaveError` to a dead master.
pub fn run_takeover(
    ctx: &ActorCtx<Msg>,
    kit: &TakeoverKit,
    seed: TakeoverSeed,
    me: usize,
) -> Result<(), ProtocolError> {
    if std::env::var_os("DLB_TRACE").is_some() {
        eprintln!(
            "[takeover t={}] slave {me} won term {} (replica inv {})",
            ctx.now(),
            seed.term,
            seed.replica.invocation
        );
    }
    let mut cfg = (kit.make_cfg)();
    let mut sc = Scratch {
        // Adopt the crashed master's cumulative counters so the final
        // report covers the whole run.
        recovery: seed.replica.recovery.clone(),
        ..Scratch::default()
    };
    sc.recovery.elections_held += 1;
    sc.recovery.takeover_latency = Some(ctx.now().saturating_since(seed.last_heard));
    let promoted = Msg::Promoted {
        term: seed.term,
        master_idx: me,
    };
    for (i, &s) in kit.slaves.iter().enumerate() {
        if i != me {
            send(ctx, s, promoted.clone());
        }
    }
    // Fence the old master too, in case it is merely slow, not dead.
    send(ctx, kit.master, promoted.clone());
    let ft = cfg.ft.take().expect("takeover requires fault mode");
    let res = if ft.init_unit.is_some() {
        run_recoverable(
            ctx,
            &mut cfg,
            &ft,
            &kit.slaves,
            &kit.assignment,
            kit.block_rows,
            &mut sc,
            Some((&seed, me)),
        )
    } else {
        run_checkpointed(
            ctx,
            &mut cfg,
            &ft,
            &kit.slaves,
            &kit.assignment,
            kit.block_rows,
            &mut sc,
            Some((&seed, me)),
        )
    };
    if matches!(res, Err(ProtocolError::Superseded { .. })) {
        // A still-newer reign owns the run (and the outcome) now.
        return Ok(());
    }
    if res.is_err() {
        for (i, &s) in kit.slaves.iter().enumerate() {
            if i != me {
                send(ctx, s, Msg::Abort);
            }
        }
    }
    let mut o = kit.outcome.lock().unwrap_or_else(|p| p.into_inner());
    o.result = std::mem::take(&mut sc.result);
    o.timeline = std::mem::take(&mut sc.timeline);
    o.stats = cfg.balancer.stats();
    o.bounds = Some(cfg.balancer.period_bounds());
    o.compute_done = sc.compute_done;
    o.recovery = sc.recovery;
    o.completed = res.is_ok();
    o.error = res.err();
    Ok(())
}

/// The master actor body. `slaves` in slave-index order; `assignment` is
/// the initial block distribution; the outcome lands in `out`.
pub fn run_master(
    ctx: ActorCtx<Msg>,
    mut cfg: MasterConfig,
    slaves: Vec<ActorId>,
    assignment: Vec<(usize, usize)>,
    block_rows: u64,
    out: Arc<Mutex<MasterOutcome>>,
) {
    let mut sc = Scratch::default();
    let ft = cfg.ft.take();
    let res = match &ft {
        None => run_plain(&ctx, &mut cfg, &slaves, &assignment, block_rows, &mut sc),
        Some(ft) if ft.init_unit.is_some() => run_recoverable(
            &ctx,
            &mut cfg,
            ft,
            &slaves,
            &assignment,
            block_rows,
            &mut sc,
            None,
        ),
        Some(ft) => run_checkpointed(
            &ctx,
            &mut cfg,
            ft,
            &slaves,
            &assignment,
            block_rows,
            &mut sc,
            None,
        ),
    };
    if matches!(res, Err(ProtocolError::Superseded { .. })) {
        // A promoted deputy owns the run now: it writes the outcome and it
        // commands the slaves. Aborting them or writing a failed outcome
        // here would sabotage the legitimate reign — exit silently.
        return;
    }
    if res.is_err() {
        // Release every slave from whatever it is blocked on. recv_blocking
        // always matches Abort, so this cannot deadlock even outside fault
        // mode.
        for &s in &slaves {
            send(&ctx, s, Msg::Abort);
        }
    }
    let mut o = out.lock().unwrap_or_else(|p| p.into_inner());
    o.result = std::mem::take(&mut sc.result);
    o.timeline = std::mem::take(&mut sc.timeline);
    o.stats = cfg.balancer.stats();
    o.bounds = Some(cfg.balancer.period_bounds());
    o.compute_done = sc.compute_done;
    o.recovery = sc.recovery;
    o.completed = res.is_ok();
    o.error = res.err();
}

/// Fault-free control loop. Structurally the original master; every
/// protocol violation is a typed error instead of a panic.
fn run_plain(
    ctx: &ActorCtx<Msg>,
    cfg: &mut MasterConfig,
    slaves: &[ActorId],
    assignment: &[(usize, usize)],
    block_rows: u64,
    sc: &mut Scratch,
) -> Result<(), ProtocolError> {
    let n = slaves.len();
    for &s in slaves {
        send(
            ctx,
            s,
            Msg::Start {
                slaves: slaves.to_vec(),
                assignment: assignment.to_vec(),
                block_rows,
            },
        );
    }

    // Per-channel counters: sent[a][b] = transfers a allocated towards b,
    // recv[b][a] = contiguous transfers from a applied at b.
    let mut sent = vec![vec![0u64; n]; n];
    let mut recv = vec![vec![0u64; n]; n];
    let all_alive = vec![true; n];

    let mut inv = 0;
    while inv < cfg.invocations {
        cfg.balancer
            .set_remaining_invocations(cfg.invocations - inv);
        if let Some(uph) = &cfg.units_per_hook {
            cfg.balancer.set_units_per_hook(uph(inv));
        }
        for &s in slaves {
            send(
                ctx,
                s,
                Msg::InvocationStart {
                    invocation: inv,
                    ckpt_stride: 1,
                },
            );
        }
        let expected = (cfg.expected_units)(inv);
        let mut done_sum = 0u64;
        let mut idle = vec![false; n];
        let mut metrics = vec![0.0f64; n];

        loop {
            // Settlement check.
            if idle.iter().all(|&b| b)
                && done_sum >= expected
                && channels_settled(&all_alive, &sent, &recv)
                && cfg.balancer.outstanding_orders() == 0
            {
                if done_sum != expected {
                    return Err(ProtocolError::Inconsistent {
                        detail: format!(
                            "invocation {inv}: {done_sum} units completed, expected {expected}"
                        ),
                    });
                }
                break;
            }
            let env = ctx.recv();
            if std::env::var_os("DLB_TRACE").is_some() {
                eprintln!(
                    "[master t={} inv={inv}] got {:?} (done {done_sum}/{expected}, idle {idle:?})",
                    ctx.now(),
                    match &env.msg {
                        Msg::Status(s) => format!(
                            "Status(slave {}, delta {}, active {})",
                            s.slave, s.units_done_delta, s.active_units
                        ),
                        other => format!("{other:?}").chars().take(60).collect::<String>(),
                    }
                );
            }
            match env.msg {
                Msg::Status(st) => {
                    if st.invocation > inv {
                        return Err(unexpected("status from the future", &Msg::Status(st)));
                    }
                    if st.invocation == inv {
                        done_sum += st.units_done_delta;
                    }
                    merge_max(&mut sent[st.slave], &st.sent_to);
                    merge_max(&mut recv[st.slave], &st.received_from);
                    idle[st.slave] = false;
                    ctx.advance_work(cfg.decision_cpu);
                    let decision = cfg.balancer.on_status(&st);
                    if cfg.record_timeline {
                        sc.timeline.push(TimelineSample {
                            t: ctx.now(),
                            slave: st.slave,
                            invocation: inv,
                            raw_rate: decision.raw_rate,
                            adjusted_rate: decision.adjusted_rate,
                            assigned: decision.owned_after,
                            hooks_to_skip: decision.instructions.hooks_to_skip,
                        });
                    }
                    send(
                        ctx,
                        slaves[st.slave],
                        Msg::Instructions(decision.instructions),
                    );
                }
                Msg::InvocationDone {
                    slave,
                    invocation,
                    sent_to,
                    received_from,
                    metric,
                    ..
                } => {
                    if invocation > inv {
                        return Err(ProtocolError::Inconsistent {
                            detail: format!("InvocationDone for {invocation} while settling {inv}"),
                        });
                    }
                    // A refreshed report for an earlier invocation (sent
                    // after executing late balancing moves) can straggle
                    // into the next settlement; its channel counts still
                    // matter, its idle claim does not.
                    if invocation == inv {
                        idle[slave] = true;
                        metrics[slave] = metric;
                    }
                    merge_max(&mut sent[slave], &sent_to);
                    merge_max(&mut recv[slave], &received_from);
                    cfg.balancer.ack_transfers(slave, &received_from);
                }
                Msg::SlaveError { slave, error } => {
                    return Err(ProtocolError::SlaveFailed {
                        slave,
                        error: Box::new(error),
                    });
                }
                other => return Err(unexpected("invocation loop", &other)),
            }
        }
        let reduced: f64 = metrics.iter().sum();
        inv += 1;
        if (cfg.converged)(inv - 1, reduced) {
            break;
        }
    }

    sc.compute_done = ctx.now();

    // Gather results.
    for &s in slaves {
        send(ctx, s, Msg::Gather);
    }
    let mut got = vec![false; n];
    while !got.iter().all(|&g| g) {
        let env = ctx.recv();
        match env.msg {
            Msg::GatherData {
                slave,
                units,
                fault_stats,
            } => {
                if !got[slave] {
                    got[slave] = true;
                    sc.recovery.absorb(&fault_stats);
                    sc.result.extend(units);
                }
                // No GatherAck in plain mode: the slave exits right after
                // replying, so an ack would never be received (and message
                // conservation is promised without faults).
            }
            // Final statuses racing the gather are harmless.
            Msg::Status(_) | Msg::InvocationDone { .. } => {}
            Msg::SlaveError { slave, error } => {
                return Err(ProtocolError::SlaveFailed {
                    slave,
                    error: Box::new(error),
                });
            }
            other => return Err(unexpected("gather", &other)),
        }
    }
    Ok(())
}

/// Admit every queued joiner into a settled recoverable session: the exact
/// inverse of an eviction. Each joiner is readmitted with its announced
/// incarnation (fresh two-clock state, fresh sender window — the previous
/// life's contiguous-ack watermark died with it), the balancer's accounting
/// for its slot is zeroed, and the whole unit set is re-ranged over the
/// enlarged survivor set with a takeover-style windowed `Rollback` — which
/// doubles as the joiners' state transfer *and* the barrier release. The
/// epoch bump fences every pre-admission message (including the joiners'
/// previous-life traffic) as stale.
#[allow(clippy::too_many_arguments)]
fn admit_recoverable(
    ctx: &ActorCtx<Msg>,
    cfg: &mut MasterConfig,
    ft: &MasterFt,
    slaves: &[ActorId],
    n_units: usize,
    inv: u64,
    tol: &FaultToleranceConfig,
    memb: &mut Membership,
    deferred: &mut [bool],
    pending_joins: &mut Vec<(usize, u64)>,
    owned: &mut [BTreeSet<usize>],
    win: &mut [SenderWindow<Msg>],
    unacked_instr: &mut [Option<(u64, Instructions, u32)>],
    last_hook_seq: &mut [u64],
    sent: &mut [Vec<u64>],
    recv: &mut [Vec<u64>],
    cur_epoch: &mut u64,
    released: &mut bool,
    rec: &mut RecoveryStats,
) {
    let recompute = ft
        .recompute_unit
        .as_ref()
        .expect("recoverable loop needs recompute_unit");
    let joiners = std::mem::take(pending_joins);
    let mut joined: Vec<usize> = Vec::new();
    let mut rejoined_any = false;
    for &(j, jinc) in &joiners {
        if memb.alive[j] || jinc < memb.incarnation[j] {
            continue; // raced an earlier admission, or a newer life exists
        }
        memb.readmit(j, jinc, ctx.now(), tol.nudge);
        cfg.balancer.admit(j);
        win[j] = SenderWindow::new();
        unacked_instr[j] = None;
        last_hook_seq[j] = 0;
        rec.joins_admitted += 1;
        if deferred[j] {
            deferred[j] = false;
        } else {
            rec.rejoins_after_eviction += 1;
            rejoined_any = true;
        }
        joined.push(j);
    }
    if joined.is_empty() {
        return;
    }
    if rejoined_any {
        rec.partitions_healed += 1;
    }
    *cur_epoch += 1;
    let survivors = memb.survivors();
    let ranges = crate::driver::block_ranges(n_units, survivors.len());
    let mut counts = vec![0u64; slaves.len()];
    for o in owned.iter_mut() {
        o.clear();
    }
    for (k, &sv) in survivors.iter().enumerate() {
        let (lo, hi) = ranges[k];
        counts[sv] = (hi - lo) as u64;
        owned[sv] = (lo..hi).collect();
        let units: Vec<(usize, UnitData)> = (lo..hi).map(|u| (u, recompute(u, inv))).collect();
        let epoch = *cur_epoch;
        let survivors_c = survivors.clone();
        let msg = win[sv]
            .send_with(|seq| Msg::Rollback {
                seq,
                epoch,
                invocation: inv,
                survivors: survivors_c,
                ckpt_stride: 1,
                units,
            })
            .clone();
        if joined.contains(&sv) {
            rec.join_snapshot_bytes += msg.wire_bytes();
        }
        send(ctx, slaves[sv], msg);
    }
    rec.rollbacks += 1;
    rec.units_rolled_back += n_units as u64;
    cfg.balancer.rebase(*cur_epoch, counts);
    // The slaves reset their channels when they rebase onto the new epoch,
    // so the settlement matrices restart from zero; everything tracked
    // under the old epoch is void (stale reports are epoch-fenced before
    // they can re-merge old maxima).
    for row in sent.iter_mut().chain(recv.iter_mut()) {
        row.iter_mut().for_each(|v| *v = 0);
    }
    // The Rollback doubles as the barrier release for `inv`.
    *released = true;
}

/// Recoverable control loop (independent pattern): silence-based failure
/// detection, channel-fenced eviction, speculative re-execution, and unit
/// re-scattering — with the dynamic balancer live throughout.
#[allow(clippy::too_many_arguments)]
fn run_recoverable(
    ctx: &ActorCtx<Msg>,
    cfg: &mut MasterConfig,
    ft: &MasterFt,
    slaves: &[ActorId],
    assignment: &[(usize, usize)],
    block_rows: u64,
    sc: &mut Scratch,
    takeover: Option<(&TakeoverSeed, usize)>,
) -> Result<(), ProtocolError> {
    let n = slaves.len();
    let tol = ft.tolerance.clone();
    let init_unit = ft
        .init_unit
        .as_ref()
        .expect("recoverable loop needs init_unit");
    let n_units = assignment.iter().map(|&(_, hi)| hi).max().unwrap_or(0);

    let start_msg = |slaves: &[ActorId]| Msg::Start {
        slaves: slaves.to_vec(),
        assignment: assignment.to_vec(),
        block_rows,
    };

    // Liveness state (suspicion, nudge rate-limiting, barrier flags) lives
    // in the session membership table; re-sends are event-triggered where
    // possible, so a fault-free run never produces one.
    let mut memb = Membership::new(n, ctx.now(), tol.nudge);
    let mut last_hook_seq = vec![0u64; n];
    // Ownership as the master believes it: refreshed from every
    // InvocationDone (`owned_ids`) and authoritative OwnReports. With the
    // balancer live this map can lag a transfer in flight; the eviction
    // protocol never trusts it alone (see resolve_evictions).
    let mut owned: Vec<BTreeSet<usize>> = assignment
        .iter()
        .map(|&(lo, hi)| (lo..hi).collect())
        .collect();
    // One sender window per destination for all recovery messages
    // (Restore / Speculate / SpecCommit / SpecCancel), acknowledged via
    // InvocationDone::restore_seq. The transition rules live in
    // `protocol::SenderWindow`, where the model checker in `dlb-analyze`
    // exercises them exhaustively.
    let mut win: Vec<SenderWindow<Msg>> = vec![SenderWindow::new(); n];
    // Bounded instruction retry: (seq, message, re-sends so far), cleared
    // when a status acknowledges the sequence number.
    let mut unacked_instr: Vec<Option<(u64, Instructions, u32)>> = (0..n).map(|_| None).collect();
    // Per-channel transfer settlement matrices (monotone max-merged).
    let mut sent = vec![vec![0u64; n]; n];
    let mut recv = vec![vec![0u64; n]; n];
    let mut evictions: Vec<Eviction> = Vec::new();
    let mut spec: Option<RestartSpec> = None;
    let mut fo = Failover::new(n, takeover.map_or(0, |(s, _)| s.term), &tol, ctx.now());
    // Mid-run admission queue: (slave, incarnation) of joiners waiting for
    // the next settled barrier. Admission never races an open eviction —
    // settlement requires the eviction set to be empty.
    let mut pending_joins: Vec<(usize, u64)> = Vec::new();
    // Slots whose initial assignment is empty are *deferred*: reserved for
    // latecomers. They start evicted (no death counted, no channel fence
    // broadcast — peers simply never hear from them) and enter through the
    // same admission path as a rejoiner.
    let mut deferred: Vec<bool> = assignment.iter().map(|&(lo, hi)| lo >= hi).collect();

    let mut inv = 0;
    // Epoch in force: 0 for an original reign. A takeover fences its reign
    // behind `term << 32` so every pre-promotion epoch is strictly older.
    let mut cur_epoch = 0u64;
    let mut released = false;
    if let Some((seed, me)) = takeover {
        // Seed the session from the replica instead of broadcasting Start:
        // the survivors are mid-run. Evict the dead, evict ourselves (the
        // winner computes no units), and roll everyone back to the
        // replicated invocation watermark with recomputed unit state.
        let recompute = ft
            .recompute_unit
            .as_ref()
            .expect("recoverable loop needs recompute_unit");
        for (i, d) in deferred.iter_mut().enumerate().take(n) {
            if !seed.replica.alive[i] || i == me {
                memb.evict(i);
                cfg.balancer.mark_dead(i);
            }
            if seed.replica.alive[i] {
                // Admitted before the crash: a later rejoin is a rejoin,
                // not a first-time (deferred) admission.
                *d = false;
            }
        }
        // Incarnation fencing survives the failover: the replica carries
        // the admitted-life table, so a pre-crash zombie stays fenced.
        memb.incarnation.clone_from(&seed.replica.incarnations);
        let survivors = memb.survivors();
        if survivors.is_empty() {
            return Err(ProtocolError::AllSlavesDead);
        }
        inv = seed.replica.invocation;
        cur_epoch = (seed.term << 32) | 1;
        let ranges = crate::driver::block_ranges(n_units, survivors.len());
        let mut counts = vec![0u64; n];
        for o in owned.iter_mut() {
            o.clear();
        }
        for (k, &sv) in survivors.iter().enumerate() {
            let (lo, hi) = ranges[k];
            counts[sv] = (hi - lo) as u64;
            owned[sv] = (lo..hi).collect();
            // Recompute each unit through the completed invocations: the
            // state at the start of invocation `inv`, bit-identical to what
            // the survivors would have held.
            let units: Vec<(usize, UnitData)> = (lo..hi).map(|u| (u, recompute(u, inv))).collect();
            let epoch = cur_epoch;
            let survivors_c = survivors.clone();
            let msg = win[sv]
                .send_with(|seq| Msg::Rollback {
                    seq,
                    epoch,
                    invocation: inv,
                    survivors: survivors_c,
                    ckpt_stride: 1,
                    units,
                })
                .clone();
            send(ctx, slaves[sv], msg);
        }
        sc.recovery.rollbacks += 1;
        sc.recovery.units_rolled_back += n_units as u64;
        cfg.balancer.rebase(cur_epoch, counts);
        // The Rollback doubles as the barrier release for `inv`.
        released = true;
    } else {
        for (i, &d) in deferred.iter().enumerate().take(n) {
            if d {
                memb.evict(i);
                cfg.balancer.mark_dead(i);
            }
        }
        // Deferred slots get the Start too: it parks in their mailbox and
        // teaches the latecomer the topology when it wakes to join.
        for &s in slaves {
            send(ctx, s, start_msg(slaves));
        }
    }

    'invocations: while inv < cfg.invocations {
        if !pending_joins.is_empty() {
            admit_recoverable(
                ctx,
                cfg,
                ft,
                slaves,
                n_units,
                inv,
                &tol,
                &mut memb,
                &mut deferred,
                &mut pending_joins,
                &mut owned,
                &mut win,
                &mut unacked_instr,
                &mut last_hook_seq,
                &mut sent,
                &mut recv,
                &mut cur_epoch,
                &mut released,
                &mut sc.recovery,
            );
        }
        cfg.balancer
            .set_remaining_invocations(cfg.invocations - inv);
        if let Some(uph) = &cfg.units_per_hook {
            cfg.balancer.set_units_per_hook(uph(inv));
        }
        if released {
            released = false;
        } else {
            for (i, &s) in slaves.iter().enumerate() {
                if memb.alive[i] {
                    send(
                        ctx,
                        s,
                        Msg::InvocationStart {
                            invocation: inv,
                            ckpt_stride: 1,
                        },
                    );
                }
            }
        }
        // Publish the control-plane replica for this barrier: membership,
        // the invocation watermark a takeover can resume at, and the
        // cumulative counters. No snapshot — this loop restarts from
        // `recompute_unit`, so the watermark alone is the whole state.
        if inv % tol.replicate_every.max(1) == 0 {
            let term = fo.term;
            let rec_snap = sc.recovery.clone();
            let alive = &memb.alive;
            let incarnations = &memb.incarnation;
            fo.publish(
                ctx,
                slaves,
                alive,
                inv,
                |_| ReplicaMsg {
                    term,
                    epoch: cur_epoch,
                    invocation: inv,
                    ckpt_stride: 1,
                    alive: alive.clone(),
                    incarnations: incarnations.clone(),
                    fresh: inv,
                    snapshot: None,
                    best_banked: 0,
                    recovery: rec_snap.clone(),
                },
                &mut sc.recovery,
            );
        }
        for s in 0..n {
            memb.done[s] = false;
        }
        let mut metrics = vec![0.0f64; n];

        loop {
            let all_settled = (0..n)
                .all(|s| !memb.alive[s] || (memb.done[s] && win[s].fully_acked()))
                && evictions.is_empty()
                && channels_settled(&memb.alive, &sent, &recv)
                && cfg.balancer.outstanding_orders() == 0;
            if all_settled {
                break;
            }
            if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
                match env.msg {
                    Msg::Status(st) => {
                        let s = st.slave;
                        if !memb.alive[s] {
                            continue; // evicted slave still talking
                        }
                        if st.epoch < cur_epoch {
                            // Pre-takeover traffic from a survivor that has
                            // not applied this reign's Rollback yet: proof of
                            // life (defer suspicion) but not of progress —
                            // only `ping`, so `unheard_for` keeps growing and
                            // the window re-send timer below fires.
                            memb.ping(s, ctx.now());
                            sc.recovery.stale_epoch_dropped += 1;
                            continue;
                        }
                        memb.heard(s, ctx.now());
                        if spec.as_ref().is_some_and(|sp| sp.suspect == s) {
                            cancel_spec(ctx, slaves, &mut win, &mut spec, &mut sc.recovery);
                        }
                        if st.invocation > inv {
                            return Err(unexpected("status from the future", &Msg::Status(st)));
                        }
                        if st.hook_seq <= last_hook_seq[s] {
                            sc.recovery.status_dups_ignored += 1;
                            continue;
                        }
                        last_hook_seq[s] = st.hook_seq;
                        // A status means the slave is computing again.
                        memb.done[s] = false;
                        if let Some((seq, _, _)) = &unacked_instr[s] {
                            // Ack lag alone is no evidence of loss: a slave
                            // pipelines instructions, so it runs a couple of
                            // sequence numbers behind even fault-free, and a
                            // dropped instruction is superseded by the next
                            // one anyway. Retry only fires for a slave stuck
                            // at a barrier (see the InvocationDone arm),
                            // where nothing can supersede.
                            if st.last_applied_seq >= *seq {
                                unacked_instr[s] = None;
                            }
                        }
                        merge_max(&mut sent[s], &st.sent_to);
                        merge_max(&mut recv[s], &st.received_from);
                        ctx.advance_work(cfg.decision_cpu);
                        let decision = cfg.balancer.on_status(&st);
                        if cfg.record_timeline {
                            sc.timeline.push(TimelineSample {
                                t: ctx.now(),
                                slave: s,
                                invocation: inv,
                                raw_rate: decision.raw_rate,
                                adjusted_rate: decision.adjusted_rate,
                                assigned: decision.owned_after,
                                hooks_to_skip: decision.instructions.hooks_to_skip,
                            });
                        }
                        unacked_instr[s] =
                            Some((decision.instructions.seq, decision.instructions.clone(), 0));
                        send(ctx, slaves[s], Msg::Instructions(decision.instructions));
                    }
                    Msg::InvocationDone {
                        slave,
                        invocation,
                        epoch,
                        sent_to,
                        received_from,
                        metric,
                        restore_seq,
                        owned_ids,
                        replica_inv,
                    } => {
                        if !memb.alive[slave] {
                            // A non-member still reporting (its Evict was
                            // lost, e.g. dropped by a partition): repeat the
                            // verdict so it can exit — or rejoin as a fresh
                            // incarnation when elastic membership is on.
                            send(ctx, slaves[slave], Msg::Evict);
                            sc.recovery.done_dups_ignored += 1;
                            continue;
                        }
                        fo.note_ack(slave, replica_inv);
                        if epoch < cur_epoch {
                            // Pre-takeover barrier report: alive, not
                            // progress (see the Status arm). Its restore_seq
                            // acknowledges the crashed master's window, not
                            // ours — never ack.
                            memb.ping(slave, ctx.now());
                            sc.recovery.stale_epoch_dropped += 1;
                            continue;
                        }
                        memb.heard(slave, ctx.now());
                        if spec.as_ref().is_some_and(|sp| sp.suspect == slave) {
                            cancel_spec(ctx, slaves, &mut win, &mut spec, &mut sc.recovery);
                        }
                        win[slave].ack(restore_seq);
                        merge_max(&mut sent[slave], &sent_to);
                        merge_max(&mut recv[slave], &received_from);
                        cfg.balancer.ack_transfers(slave, &received_from);
                        if invocation == inv {
                            memb.done[slave] = true;
                            metrics[slave] = metric;
                            // Fresh report for the current barrier: adopt its
                            // ownership snapshot. (A duplicated older report
                            // is caught by the invocation comparison; a
                            // transfer still in flight at most doubles a
                            // unit, which the deterministic gather dedups.)
                            owned[slave] = owned_ids.iter().copied().collect();
                        } else if invocation < inv {
                            sc.recovery.done_dups_ignored += 1;
                            // A heartbeat from a slave stuck at the previous
                            // barrier: its release was lost. The heartbeat
                            // itself is the re-send trigger — the slave is
                            // chatty, so a silence timer would never fire.
                            if memb.nudge_due(slave, ctx.now(), tol.nudge) {
                                send(
                                    ctx,
                                    slaves[slave],
                                    Msg::InvocationStart {
                                        invocation: inv,
                                        ckpt_stride: 1,
                                    },
                                );
                                sc.recovery.invocation_start_resends += 1;
                                // A stuck slave cannot supersede a lost
                                // instruction with a newer one; replay the
                                // unacknowledged one (bounded).
                                if let Some((_, instr, tries)) = &mut unacked_instr[slave] {
                                    if *tries < tol.instr_retries {
                                        *tries += 1;
                                        sc.recovery.instr_resends += 1;
                                        send(ctx, slaves[slave], Msg::Instructions(instr.clone()));
                                    }
                                }
                            }
                        } else {
                            return Err(ProtocolError::Inconsistent {
                                detail: format!(
                                    "InvocationDone for {invocation} while settling {inv}"
                                ),
                            });
                        }
                        // Done but missing windowed messages: they were lost
                        // in flight. Replay everything unacknowledged.
                        if memb.done[slave]
                            && !win[slave].fully_acked()
                            && memb.nudge_due(slave, ctx.now(), tol.nudge)
                        {
                            for (_, msg) in win[slave].unacked() {
                                send(ctx, slaves[slave], msg.clone());
                                sc.recovery.restore_resends += 1;
                            }
                        }
                    }
                    Msg::OwnReport {
                        slave: v,
                        about,
                        ids,
                    } => {
                        if !memb.alive[v] {
                            continue;
                        }
                        memb.heard(v, ctx.now());
                        if spec.as_ref().is_some_and(|sp| sp.suspect == v) {
                            cancel_spec(ctx, slaves, &mut win, &mut spec, &mut sc.recovery);
                        }
                        let mut matched = false;
                        for ev in evictions.iter_mut() {
                            if ev.dead == about && ev.awaiting.remove(&v) {
                                matched = true;
                            }
                        }
                        if !matched {
                            // Late duplicate (its eviction already resolved):
                            // the ids are stale — never adopt them.
                            sc.recovery.done_dups_ignored += 1;
                            continue;
                        }
                        owned[v] = ids.into_iter().collect();
                        memb.done[v] = false;
                        if !evictions.is_empty() && evictions.iter().all(|e| e.awaiting.is_empty())
                        {
                            resolve_evictions(
                                ctx,
                                slaves,
                                n_units,
                                inv,
                                &mut memb,
                                &mut owned,
                                &mut win,
                                &mut evictions,
                                &mut spec,
                                init_unit,
                                &mut sc.recovery,
                            );
                        }
                    }
                    // A slave blocked on a peer (not the master) pings so
                    // the suspicion timer cannot mistake it for a crash.
                    // Pings are incarnation-stamped: a rejoined slot only
                    // credits its *current* life, so a zombie's leftover
                    // heartbeats cannot vouch for the new one (E111).
                    Msg::Alive { slave, incarnation } => {
                        if memb.alive[slave] && incarnation == memb.incarnation[slave] {
                            memb.ping(slave, ctx.now());
                            if spec.as_ref().is_some_and(|sp| sp.suspect == slave) {
                                cancel_spec(ctx, slaves, &mut win, &mut spec, &mut sc.recovery);
                            }
                        } else if !memb.alive[slave] && incarnation >= memb.incarnation[slave] {
                            // The latest life of an evicted slot is still
                            // heartbeating — its Evict was lost. Repeat it so
                            // the slave can exit or rejoin. (Older
                            // incarnations are zombies; the Evict would reach
                            // the current life, so they get nothing.)
                            send(ctx, slaves[slave], Msg::Evict);
                        }
                    }
                    Msg::Join { slave, incarnation } => {
                        if tol.rejoin_attempts == 0 {
                            // Elastic membership is opt-in; without it every
                            // join is refused so the joiner cannot hot-loop.
                            send(ctx, slaves[slave], Msg::JoinRefuse { slave });
                        } else if memb.alive[slave] {
                            // Already admitted: its admission Rollback (the
                            // handshake's exit signal) must have been lost.
                            // Replay the window; zombies (older incarnation)
                            // are ignored outright.
                            if incarnation == memb.incarnation[slave]
                                && memb.nudge_due(slave, ctx.now(), tol.nudge)
                            {
                                for (_, msg) in win[slave].unacked() {
                                    send(ctx, slaves[slave], msg.clone());
                                    sc.recovery.restore_resends += 1;
                                }
                            }
                        } else if incarnation >= memb.incarnation[slave] {
                            // Queue for the next settled barrier; dedup on
                            // the newest announced life.
                            match pending_joins.iter_mut().find(|(s, _)| *s == slave) {
                                Some(p) => p.1 = p.1.max(incarnation),
                                None => pending_joins.push((slave, incarnation)),
                            }
                        }
                    }
                    Msg::SlaveError { slave, error } => {
                        if !memb.alive[slave] {
                            // A non-member's dying report (it wedged inside a
                            // partition we evicted it across): not fatal to
                            // the run — repeat the eviction verdict instead.
                            send(ctx, slaves[slave], Msg::Evict);
                            continue;
                        }
                        return Err(ProtocolError::SlaveFailed {
                            slave,
                            error: Box::new(error),
                        });
                    }
                    // A still-newer reign fenced us out: exit silently, it
                    // owns the run now. Stale or duplicate Promoted for our
                    // own (or an older) term is ignored.
                    Msg::Promoted { term, .. } => {
                        if term > fo.term {
                            return Err(ProtocolError::Superseded { term });
                        }
                    }
                    other => {
                        if takeover.is_some() {
                            // A promoted deputy still has a slave's address:
                            // stray peer traffic (late transfers/acks,
                            // election chatter, messages the crashed master
                            // had in flight) keeps arriving. All of it is
                            // pre-reign — tolerate silently.
                            continue;
                        }
                        return Err(unexpected("recoverable invocation loop", &other));
                    }
                }
            }

            // Timers: suspicion, speculation, and nudges for every live,
            // unsettled slave.
            let now = ctx.now();
            for s in 0..n {
                if !memb.alive[s] {
                    continue;
                }
                // A settled slave is exempt from suspicion — unless a
                // pending eviction is waiting on its OwnReport. A survivor
                // that dies *after* settling would otherwise stall the
                // eviction forever: nothing re-arms its timer, and the
                // awaiting set never drains.
                let awaited = evictions.iter().any(|ev| ev.awaiting.contains(&s));
                let settled_s = memb.done[s] && win[s].fully_acked() && !awaited;
                if settled_s {
                    continue;
                }
                let silent = memb.silent_for(s, now);
                if silent >= tol.suspicion {
                    // Declare dead, fence off its channels, and wait for the
                    // survivors' ownership reports before re-scattering.
                    memb.evict(s);
                    if std::env::var_os("DLB_TRACE").is_some() {
                        eprintln!("[master t={now}] declaring slave {s} dead (inv {inv})");
                    }
                    sc.recovery.slaves_declared_dead += 1;
                    sc.recovery.first_death.get_or_insert(now);
                    send(ctx, slaves[s], Msg::Evict);
                    cfg.balancer.mark_dead(s);
                    // Its per-invocation metric no longer counts: survivors
                    // recompute its units and contribute their metric.
                    metrics[s] = 0.0;
                    unacked_instr[s] = None;
                    let dead_owned: Vec<usize> =
                        std::mem::take(&mut owned[s]).into_iter().collect();
                    if spec.as_ref().is_some_and(|sp| sp.executor == s) {
                        // The speculation died with its executor.
                        spec = None;
                    }
                    for ev in evictions.iter_mut() {
                        ev.awaiting.remove(&s);
                    }
                    let survivors = memb.survivors();
                    if survivors.is_empty() {
                        return Err(ProtocolError::AllSlavesDead);
                    }
                    for &v in &survivors {
                        send(ctx, slaves[v], Msg::Evicted { slave: s });
                    }
                    evictions.push(Eviction {
                        dead: s,
                        awaiting: survivors.into_iter().collect(),
                        dead_owned,
                    });
                    continue;
                }
                if silent >= tol.speculate_after
                    && spec.is_none()
                    && evictions.is_empty()
                    && !owned[s].is_empty()
                {
                    // Suspicion is building: start recomputing the suspect's
                    // units on an idle, fully settled survivor so an eviction
                    // commits finished results instead of replaying.
                    if let Some(e) = (0..n)
                        .find(|&e| e != s && memb.alive[e] && memb.done[e] && win[e].fully_acked())
                    {
                        let ids: Vec<usize> = owned[s].iter().copied().collect();
                        let units: Vec<(usize, UnitData)> =
                            ids.iter().map(|&u| (u, init_unit(u))).collect();
                        let msg = win[e]
                            .send_with(|seq| Msg::Speculate {
                                seq,
                                invocation: inv,
                                units,
                            })
                            .clone();
                        send(ctx, slaves[e], msg);
                        let spec_seq = win[e].seq_sent();
                        spec = Some(RestartSpec {
                            suspect: s,
                            executor: e,
                            spec_seq,
                            ids,
                        });
                        sc.recovery.speculations_launched += 1;
                    }
                }
                if takeover.is_none() && !memb.heard_any[s] && memb.nudge_due(s, now, tol.nudge) {
                    // A slave that has never spoken a protocol message may
                    // have lost its Start or its first release; its `Alive`
                    // pings refresh the suspicion timer but carry no
                    // evidence of what it is missing, so re-send both on
                    // the nudge timer. Every other loss is event-triggered
                    // from the receive arms above: a slave missing a
                    // control message keeps heartbeating, and the
                    // heartbeat itself carries what it is missing. (Never
                    // under a takeover: the survivors are mid-run, and the
                    // reign's opening move is the Rollback, not a Start.)
                    send(ctx, slaves[s], start_msg(slaves));
                    sc.recovery.start_resends += 1;
                    send(
                        ctx,
                        slaves[s],
                        Msg::InvocationStart {
                            invocation: inv,
                            ckpt_stride: 1,
                        },
                    );
                    sc.recovery.invocation_start_resends += 1;
                } else if !win[s].fully_acked()
                    && memb.unheard_for(s, now) >= tol.nudge
                    && memb.nudge_due(s, now, tol.nudge)
                {
                    // Windowed messages outstanding to a slave that has made
                    // no protocol progress (stale-epoch chatter counts only
                    // as `ping`): the window content was lost. Replay it —
                    // under a takeover, led by the Promoted announcement in
                    // case the slave never learned of the reign (it resets
                    // the slave's master-channel dedup so the replayed
                    // Rollback is fresh to it).
                    if let Some((seed, me)) = takeover {
                        send(
                            ctx,
                            slaves[s],
                            Msg::Promoted {
                                term: seed.term,
                                master_idx: me,
                            },
                        );
                    }
                    for (_, msg) in win[s].unacked() {
                        send(ctx, slaves[s], msg.clone());
                        sc.recovery.restore_resends += 1;
                    }
                }
            }
            fo.ping(ctx, slaves, &memb.alive, &tol, &mut sc.recovery);
            // A lost Evicted (or a lost OwnReport) stalls an eviction; the
            // awaiting survivors are re-notified on the nudge timer. The
            // slave-side dedup makes the re-broadcast idempotent.
            for ev in &evictions {
                for &v in &ev.awaiting {
                    if memb.nudge_due(v, now, tol.nudge) {
                        send(ctx, slaves[v], Msg::Evicted { slave: ev.dead });
                        sc.recovery.restore_resends += 1;
                    }
                }
            }
            if !memb.any_alive() {
                return Err(ProtocolError::AllSlavesDead);
            }
        }
        let reduced: f64 = metrics.iter().sum();
        inv += 1;
        if (cfg.converged)(inv - 1, reduced) {
            break 'invocations;
        }
    }

    sc.compute_done = ctx.now();

    // Too late to admit once the run is gathering: refuse queued joiners so
    // their bounded handshake exits instead of retrying into silence.
    for (j, _) in pending_joins.drain(..) {
        send(ctx, slaves[j], Msg::JoinRefuse { slave: j });
    }

    // Gather from the survivors; a slave dying here gets its units
    // recomputed locally from the retained initial data (safety net).
    let recompute = ft
        .recompute_unit
        .as_ref()
        .expect("recoverable loop needs recompute_unit");
    let mut seen: BTreeMap<usize, UnitData> = BTreeMap::new();
    let mut got = vec![false; n];
    let now0 = ctx.now();
    if std::env::var_os("DLB_TRACE").is_some() {
        eprintln!(
            "[master t={now0}] recoverable gather begins, alive {:?}",
            memb.alive
        );
    }
    for (s, &slave_id) in slaves.iter().enumerate() {
        memb.rearm_nudge(s, now0, tol.nudge);
        memb.last_heard[s] = now0;
        if memb.alive[s] {
            send(ctx, slave_id, Msg::Gather);
        }
    }
    loop {
        if (0..n).all(|s| !memb.alive[s] || got[s]) {
            break;
        }
        if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
            match env.msg {
                Msg::GatherData {
                    slave,
                    units,
                    fault_stats,
                } => {
                    if !memb.alive[slave] {
                        sc.recovery.gather_dups_ignored += 1;
                        continue;
                    }
                    memb.last_heard[slave] = ctx.now();
                    send(ctx, slaves[slave], Msg::GatherAck);
                    if got[slave] {
                        sc.recovery.gather_dups_ignored += 1;
                        continue;
                    }
                    got[slave] = true;
                    sc.recovery.absorb(&fault_stats);
                    for (id, data) in units {
                        // A unit restored while its old owner's transfer was
                        // still in flight can briefly have two owners; both
                        // copies are deterministic and identical — keep the
                        // first.
                        match seen.entry(id) {
                            Entry::Vacant(e) => {
                                e.insert(data);
                            }
                            Entry::Occupied(_) => sc.recovery.gather_dup_units_dropped += 1,
                        }
                    }
                }
                // Final statuses and idle heartbeats racing the gather. A
                // heartbeat from a slave that owes us data means it never
                // received the Gather — the heartbeat is the re-send
                // trigger (it is chatty, so a silence timer never fires).
                Msg::Status(st) => {
                    let s = st.slave;
                    if memb.alive[s] {
                        memb.last_heard[s] = ctx.now();
                        if !got[s] && memb.nudge_due(s, ctx.now(), tol.nudge) {
                            send(ctx, slaves[s], Msg::Gather);
                            sc.recovery.gather_resends += 1;
                        }
                    }
                }
                Msg::InvocationDone {
                    slave,
                    restore_seq,
                    epoch,
                    ..
                } => {
                    if memb.alive[slave] {
                        memb.last_heard[slave] = ctx.now();
                        // A stale report (pre-takeover or a rejoiner's
                        // previous life) acknowledges an older window, not
                        // the one in force.
                        if epoch >= cur_epoch {
                            win[slave].ack(restore_seq);
                        }
                        if !got[slave] && memb.nudge_due(slave, ctx.now(), tol.nudge) {
                            send(ctx, slaves[slave], Msg::Gather);
                            sc.recovery.gather_resends += 1;
                        }
                    } else {
                        // Non-member still reporting: its Evict was lost.
                        send(ctx, slaves[slave], Msg::Evict);
                    }
                }
                // A duplicated Evicted delivery can make a survivor repeat
                // an old ownership report during the gather; it is only a
                // liveness signal here.
                Msg::OwnReport { slave, .. } => {
                    if memb.alive[slave] {
                        memb.last_heard[slave] = ctx.now();
                        if !got[slave] && memb.nudge_due(slave, ctx.now(), tol.nudge) {
                            send(ctx, slaves[slave], Msg::Gather);
                            sc.recovery.gather_resends += 1;
                        }
                    }
                }
                Msg::Alive { slave, incarnation } => {
                    if memb.alive[slave] && incarnation == memb.incarnation[slave] {
                        // Defers suspicion only; the timer sweep below still
                        // re-sends Gather on protocol silence.
                        memb.ping(slave, ctx.now());
                    } else if !memb.alive[slave] && incarnation >= memb.incarnation[slave] {
                        // Latest life of a non-member: repeat the lost Evict.
                        send(ctx, slaves[slave], Msg::Evict);
                    }
                }
                // The run is gathering: no more admissions this run.
                Msg::Join { slave, .. } => {
                    send(ctx, slaves[slave], Msg::JoinRefuse { slave });
                }
                Msg::SlaveError { slave, error } => {
                    if !memb.alive[slave] {
                        send(ctx, slaves[slave], Msg::Evict);
                        continue;
                    }
                    return Err(ProtocolError::SlaveFailed {
                        slave,
                        error: Box::new(error),
                    });
                }
                Msg::Promoted { term, .. } => {
                    if term > fo.term {
                        return Err(ProtocolError::Superseded { term });
                    }
                }
                other => {
                    if takeover.is_some() {
                        continue; // stray pre-reign traffic (see above)
                    }
                    return Err(unexpected("recoverable gather", &other));
                }
            }
        }
        let now = ctx.now();
        for s in 0..n {
            if !memb.alive[s] || got[s] {
                continue;
            }
            let silent = memb.silent_for(s, now);
            if silent >= tol.suspicion {
                // Dead during the gather: the end-of-gather safety net
                // recomputes whatever no survivor delivered.
                memb.evict(s);
                sc.recovery.gathers_interrupted += 1;
                sc.recovery.slaves_declared_dead += 1;
                sc.recovery.first_death.get_or_insert(now);
                send(ctx, slaves[s], Msg::Evict);
                owned[s].clear();
            } else if memb.unheard_for(s, now) >= tol.nudge && memb.nudge_due(s, now, tol.nudge) {
                // Silent but not yet suspect: the slave may be waiting for
                // a GatherAck after its GatherData was lost (it waits
                // quietly, re-sending only on a duplicate Gather).
                send(ctx, slaves[s], Msg::Gather);
                sc.recovery.gather_resends += 1;
            }
        }
        // Keep the deputies' election trigger quiet through the gather.
        fo.ping(ctx, slaves, &memb.alive, &tol, &mut sc.recovery);
    }
    // Safety net: any unit no survivor delivered is recomputed locally
    // from initial data (deterministic, so bit-identical to the lost copy).
    for u in 0..n_units {
        if let Entry::Vacant(e) = seen.entry(u) {
            e.insert(recompute(u, inv));
            sc.recovery.units_recomputed += 1;
        }
    }
    sc.result.extend(seen);
    Ok(())
}

/// Checkpointed control loop (pipelined/shrinking patterns): slaves ship
/// best-effort state checkpoints at invocation barriers; a death or an
/// unrecoverable protocol loss rolls the survivors back to the newest
/// complete checkpoint instead of aborting the run. Session state —
/// membership, epoch, bank, speculation, stride — lives in
/// [`CkSession`]; this function is the protocol driver.
#[allow(clippy::too_many_arguments)]
fn run_checkpointed(
    ctx: &ActorCtx<Msg>,
    cfg: &mut MasterConfig,
    ft: &MasterFt,
    slaves: &[ActorId],
    assignment: &[(usize, usize)],
    block_rows: u64,
    sc: &mut Scratch,
    takeover: Option<(&TakeoverSeed, usize)>,
) -> Result<(), ProtocolError> {
    let n = slaves.len();
    let tol = ft.tolerance.clone();
    let ck_init = ft
        .checkpoint_init
        .as_ref()
        .expect("checkpointed loop needs checkpoint_init");
    let n_units = assignment.iter().map(|&(_, hi)| hi).max().unwrap_or(0);

    let start_msg = |slaves: &[ActorId]| Msg::Start {
        slaves: slaves.to_vec(),
        assignment: assignment.to_vec(),
        block_rows,
    };

    let mut st = CkSession::new(ctx.now(), n, &tol);
    let mut fo = Failover::new(n, takeover.map_or(0, |(s, _)| s.term), &tol, ctx.now());
    // Window-acknowledgement floor: reports from epochs below the reign
    // floor acknowledge the *crashed* master's window, never ours.
    let reign = takeover.map_or(0, |(s, _)| s.term << 32);
    // Per-slave refinement of the floor: a rejoined slot's fresh window
    // must not be acknowledged by the previous life's in-flight reports,
    // so admission raises the slot's floor to the admission epoch (E112
    // guards the same boundary on the snapshot side).
    let mut join_epoch = vec![reign; n];
    // See the recoverable loop: queued joiners + latecomer slots.
    let mut pending_joins: Vec<(usize, u64)> = Vec::new();
    let mut deferred: Vec<bool> = assignment.iter().map(|&(lo, hi)| lo >= hi).collect();
    if let Some((seed, me)) = takeover {
        // Seed the session from the replica instead of broadcasting Start.
        // The reign's epochs live above `term << 32`, strictly newer than
        // anything the old master (or a previous reign) ever issued.
        st.epoch = seed.term << 32;
        for (i, d) in deferred.iter_mut().enumerate().take(n) {
            if !seed.replica.alive[i] || i == me {
                st.memb.evict(i);
                cfg.balancer.mark_dead(i);
            }
            if seed.replica.alive[i] {
                *d = false;
            }
        }
        // Incarnation fencing survives the failover (see the recoverable
        // takeover seeding).
        st.memb.incarnation.clone_from(&seed.replica.incarnations);
        if !st.memb.any_alive() {
            return Err(ProtocolError::AllSlavesDead);
        }
        if let Some((ck_inv, units)) = seed.replica.snapshot.clone() {
            st.bank.offer(ck_inv, units, n_units);
        }
        // How much further back the run restarts because our replica lagged
        // the old master's bank (0 = we resume from its newest checkpoint).
        sc.recovery.checkpoints_lost_to_stale_replica = seed
            .replica
            .best_banked
            .saturating_sub(st.bank.best_invocation().unwrap_or(0));
        // Roll the survivors back to the newest replicated checkpoint; the
        // Rollback doubles as the barrier release (`released`).
        st.rollback(
            ctx,
            slaves,
            &mut cfg.balancer,
            ck_init,
            n_units,
            &tol,
            &mut sc.recovery,
        )?;
    } else {
        for (i, &d) in deferred.iter().enumerate().take(n) {
            if d {
                st.memb.evict(i);
                cfg.balancer.mark_dead(i);
            }
        }
        // Deferred slots get the Start too: it parks in their mailbox and
        // teaches the latecomer the topology when it wakes to join.
        for &s in slaves {
            send(ctx, s, start_msg(slaves));
        }
    }
    // Convergence can end the run early; a post-convergence rollback must
    // not run invocations the converged run never executed.
    let mut target = cfg.invocations;

    'run: loop {
        'invocations: while st.inv < target {
            if !pending_joins.is_empty() {
                // Admission barrier, checkpointed flavor: readmit the
                // joiners, then roll *everyone* back to the newest banked
                // checkpoint — the rollback's windowed broadcast is both
                // the joiners' state transfer and the barrier release,
                // and its epoch bump fences their previous lives.
                let joiners = std::mem::take(&mut pending_joins);
                let mut joined: Vec<usize> = Vec::new();
                let mut rejoined_any = false;
                for &(j, jinc) in &joiners {
                    if st.memb.alive[j] || jinc < st.memb.incarnation[j] {
                        continue;
                    }
                    st.memb.readmit(j, jinc, ctx.now(), tol.nudge);
                    cfg.balancer.admit(j);
                    st.win[j] = SenderWindow::new();
                    st.unacked_instr[j] = None;
                    st.last_hook_seq[j] = 0;
                    sc.recovery.joins_admitted += 1;
                    if deferred[j] {
                        deferred[j] = false;
                    } else {
                        sc.recovery.rejoins_after_eviction += 1;
                        rejoined_any = true;
                    }
                    joined.push(j);
                }
                if !joined.is_empty() {
                    if rejoined_any {
                        sc.recovery.partitions_healed += 1;
                    }
                    st.rollback(
                        ctx,
                        slaves,
                        &mut cfg.balancer,
                        ck_init,
                        n_units,
                        &tol,
                        &mut sc.recovery,
                    )?;
                    for &j in &joined {
                        join_epoch[j] = st.epoch;
                        for (_, msg) in st.win[j].unacked() {
                            sc.recovery.join_snapshot_bytes += msg.wire_bytes();
                        }
                    }
                }
            }
            cfg.balancer.set_remaining_invocations(target - st.inv);
            if let Some(uph) = &cfg.units_per_hook {
                cfg.balancer.set_units_per_hook(uph(st.inv));
            }
            if st.released {
                // The Rollback message itself released this invocation.
                st.released = false;
            } else {
                for (i, &s) in slaves.iter().enumerate() {
                    if st.memb.alive[i] {
                        send(
                            ctx,
                            s,
                            Msg::InvocationStart {
                                invocation: st.inv,
                                ckpt_stride: st.ckpt_stride,
                            },
                        );
                    }
                }
            }
            // Publish the control-plane replica for this barrier. The
            // freshness a deputy can take over from is the newest complete
            // banked checkpoint; the snapshot payload rides only until the
            // deputy confirms holding it (`InvocationDone::replica_inv`).
            if st.inv.is_multiple_of(tol.replicate_every.max(1)) {
                let term = fo.term;
                let fresh = st.bank.best_invocation().unwrap_or(0);
                let (epoch, invocation, ckpt_stride) = (st.epoch, st.inv, st.ckpt_stride);
                let rec_snap = sc.recovery.clone();
                let (alive, bank) = (&st.memb.alive, &st.bank);
                let incarnations = &st.memb.incarnation;
                fo.publish(
                    ctx,
                    slaves,
                    alive,
                    fresh,
                    |with_snap| ReplicaMsg {
                        term,
                        epoch,
                        invocation,
                        ckpt_stride,
                        alive: alive.clone(),
                        incarnations: incarnations.clone(),
                        fresh,
                        snapshot: if with_snap {
                            bank.best_snapshot()
                        } else {
                            None
                        },
                        best_banked: fresh,
                        recovery: rec_snap.clone(),
                    },
                    &mut sc.recovery,
                );
            }
            for s in 0..n {
                st.memb.done[s] = false;
                st.metrics[s] = 0.0;
            }
            st.inv_started = ctx.now();

            loop {
                if st.settled(&cfg.balancer) {
                    break;
                }
                if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
                    match env.msg {
                        Msg::Status(stm) => {
                            let s = stm.slave;
                            if !st.memb.alive[s] {
                                continue;
                            }
                            // Epoch fence: a pre-rollback status describes a
                            // distribution that no longer exists. It proves
                            // the slave is alive (defer suspicion with
                            // `ping`) but not that it made protocol progress
                            // — `unheard_for` keeps growing, so the window
                            // re-send timer still fires for its lost
                            // Rollback.
                            if stm.epoch < st.epoch {
                                st.memb.ping(s, ctx.now());
                                st.cancel_speculation_for(s, &mut sc.recovery);
                                sc.recovery.stale_epoch_dropped += 1;
                                continue;
                            }
                            st.memb.heard(s, ctx.now());
                            st.cancel_speculation_for(s, &mut sc.recovery);
                            if stm.epoch > st.epoch || stm.invocation > st.inv {
                                return Err(unexpected(
                                    "status from the future",
                                    &Msg::Status(stm),
                                ));
                            }
                            if stm.hook_seq <= st.last_hook_seq[s] {
                                sc.recovery.status_dups_ignored += 1;
                                continue;
                            }
                            st.last_hook_seq[s] = stm.hook_seq;
                            st.memb.done[s] = false;
                            if let Some((seq, _, _)) = &st.unacked_instr[s] {
                                if stm.last_applied_seq >= *seq {
                                    st.unacked_instr[s] = None;
                                }
                            }
                            merge_max(&mut st.sent[s], &stm.sent_to);
                            merge_max(&mut st.recv[s], &stm.received_from);
                            ctx.advance_work(cfg.decision_cpu);
                            let decision = cfg.balancer.on_status(&stm);
                            if cfg.record_timeline {
                                sc.timeline.push(TimelineSample {
                                    t: ctx.now(),
                                    slave: s,
                                    invocation: st.inv,
                                    raw_rate: decision.raw_rate,
                                    adjusted_rate: decision.adjusted_rate,
                                    assigned: decision.owned_after,
                                    hooks_to_skip: decision.instructions.hooks_to_skip,
                                });
                            }
                            st.unacked_instr[s] =
                                Some((decision.instructions.seq, decision.instructions.clone(), 0));
                            send(ctx, slaves[s], Msg::Instructions(decision.instructions));
                        }
                        Msg::InvocationDone {
                            slave,
                            invocation,
                            epoch,
                            sent_to,
                            received_from,
                            metric,
                            restore_seq,
                            replica_inv,
                            ..
                        } => {
                            if !st.memb.alive[slave] {
                                // A non-member still reporting (its Evict was
                                // lost, e.g. dropped by a partition): repeat
                                // the verdict so it can exit — or rejoin as a
                                // fresh incarnation under elastic membership.
                                send(ctx, slaves[slave], Msg::Evict);
                                sc.recovery.done_dups_ignored += 1;
                                continue;
                            }
                            fo.note_ack(slave, replica_inv);
                            st.cancel_speculation_for(slave, &mut sc.recovery);
                            // Ack before the epoch fence: the master-channel
                            // watermark is not epoch-scoped within a reign,
                            // and a stale report still proves what the slave
                            // applied. Below the slot's floor the watermark
                            // belongs to an older window — the crashed
                            // master's (reign) or a previous life's (raised
                            // at admission) — never ack.
                            if epoch >= join_epoch[slave] {
                                st.win[slave].ack(restore_seq);
                            }
                            if epoch < st.epoch {
                                // Alive, but pre-rollback: see the Status
                                // arm.
                                st.memb.ping(slave, ctx.now());
                                sc.recovery.stale_epoch_dropped += 1;
                                continue;
                            }
                            st.memb.heard(slave, ctx.now());
                            if epoch > st.epoch {
                                return Err(ProtocolError::Inconsistent {
                                    detail: format!(
                                        "InvocationDone from epoch {epoch} while in {}",
                                        st.epoch
                                    ),
                                });
                            }
                            merge_max(&mut st.sent[slave], &sent_to);
                            merge_max(&mut st.recv[slave], &received_from);
                            cfg.balancer.ack_transfers(slave, &received_from);
                            if invocation == st.inv {
                                st.memb.done[slave] = true;
                                st.metrics[slave] = metric;
                            } else if invocation < st.inv {
                                sc.recovery.done_dups_ignored += 1;
                                if st.memb.nudge_due(slave, ctx.now(), tol.nudge) {
                                    send(
                                        ctx,
                                        slaves[slave],
                                        Msg::InvocationStart {
                                            invocation: st.inv,
                                            ckpt_stride: st.ckpt_stride,
                                        },
                                    );
                                    sc.recovery.invocation_start_resends += 1;
                                    if let Some((_, instr, tries)) = &mut st.unacked_instr[slave] {
                                        if *tries < tol.instr_retries {
                                            *tries += 1;
                                            sc.recovery.instr_resends += 1;
                                            send(
                                                ctx,
                                                slaves[slave],
                                                Msg::Instructions(instr.clone()),
                                            );
                                        }
                                    }
                                }
                            } else {
                                return Err(ProtocolError::Inconsistent {
                                    detail: format!(
                                        "InvocationDone for {invocation} while settling {}",
                                        st.inv
                                    ),
                                });
                            }
                            if st.memb.done[slave]
                                && !st.win[slave].fully_acked()
                                && st.memb.nudge_due(slave, ctx.now(), tol.nudge)
                            {
                                for (_, msg) in st.win[slave].unacked() {
                                    send(ctx, slaves[slave], msg.clone());
                                    sc.recovery.restore_resends += 1;
                                }
                            }
                        }
                        Msg::Checkpoint {
                            slave,
                            invocation,
                            units,
                        } => {
                            if st.memb.alive[slave] {
                                st.memb.heard(slave, ctx.now());
                                st.cancel_speculation_for(slave, &mut sc.recovery);
                            }
                            // The speculative result banks like any other
                            // checkpoint; only the accounting differs.
                            st.note_speculative_checkpoint(
                                slave,
                                invocation,
                                units.len(),
                                &mut sc.recovery,
                            );
                            // Checkpoints carry no epoch on purpose: the
                            // state after k invocations is deterministic
                            // regardless of which distribution computed it,
                            // so contributions bank from any epoch.
                            if st.bank.offer(invocation, units, n_units) {
                                sc.recovery.checkpoints_banked += 1;
                            }
                        }
                        // A gather interrupted by a rollback can leave stale
                        // GatherData in flight; harmless here.
                        Msg::GatherData { .. } => {
                            sc.recovery.gather_dups_ignored += 1;
                        }
                        Msg::SlaveError { slave, error } => {
                            if !st.memb.alive[slave] {
                                // Repeat the lost eviction verdict; the slave
                                // exits or rejoins instead of wedging.
                                send(ctx, slaves[slave], Msg::Evict);
                                continue;
                            }
                            if !st.win[slave].fully_acked() {
                                // The error predates a rollback already in
                                // flight to this slave; the rollback will
                                // resolve it.
                                continue;
                            }
                            if !slave_recoverable(&error) {
                                // The slave itself failed: evict it, then
                                // roll the survivors back.
                                st.evict(ctx, slaves, &mut cfg.balancer, slave, &mut sc.recovery);
                            }
                            // Either way the run restarts from the newest
                            // complete checkpoint; a recoverable slave
                            // parks quietly until its Rollback arrives.
                            st.rollback(
                                ctx,
                                slaves,
                                &mut cfg.balancer,
                                ck_init,
                                n_units,
                                &tol,
                                &mut sc.recovery,
                            )?;
                            continue 'invocations;
                        }
                        // A slave blocked on a peer (a halo or pivot from a
                        // crashed neighbour) pings so the suspicion timer
                        // cannot mistake the stall for a second crash.
                        // Incarnation-stamped: a zombie's leftover pings
                        // cannot vouch for a rejoined life (E111).
                        Msg::Alive { slave, incarnation } => {
                            if st.memb.alive[slave] && incarnation == st.memb.incarnation[slave] {
                                st.memb.ping(slave, ctx.now());
                                st.cancel_speculation_for(slave, &mut sc.recovery);
                            } else if !st.memb.alive[slave]
                                && incarnation >= st.memb.incarnation[slave]
                            {
                                // Latest life of a non-member heartbeating:
                                // repeat the lost Evict so it can exit or
                                // rejoin.
                                send(ctx, slaves[slave], Msg::Evict);
                            }
                        }
                        Msg::Join { slave, incarnation } => {
                            if tol.rejoin_attempts == 0 {
                                send(ctx, slaves[slave], Msg::JoinRefuse { slave });
                            } else if st.memb.alive[slave] {
                                // Admitted, but its admission Rollback was
                                // lost: replay the window (zombies ignored).
                                if incarnation == st.memb.incarnation[slave]
                                    && st.memb.nudge_due(slave, ctx.now(), tol.nudge)
                                {
                                    for (_, msg) in st.win[slave].unacked() {
                                        send(ctx, slaves[slave], msg.clone());
                                        sc.recovery.restore_resends += 1;
                                    }
                                }
                            } else if incarnation >= st.memb.incarnation[slave] {
                                match pending_joins.iter_mut().find(|(s, _)| *s == slave) {
                                    Some(p) => p.1 = p.1.max(incarnation),
                                    None => pending_joins.push((slave, incarnation)),
                                }
                            }
                        }
                        // A still-newer reign fenced us out: exit silently,
                        // it owns the run now.
                        Msg::Promoted { term, .. } => {
                            if term > fo.term {
                                return Err(ProtocolError::Superseded { term });
                            }
                        }
                        other => {
                            if takeover.is_some() {
                                // Stray pre-reign traffic at a promoted
                                // deputy's slave address (late halos, acks,
                                // election chatter, the crashed master's
                                // in-flight sends): tolerate silently.
                                continue;
                            }
                            return Err(unexpected("checkpointed invocation loop", &other));
                        }
                    }
                }

                // Timers.
                let now = ctx.now();
                let mut suspect = None;
                for s in 0..n {
                    if !st.memb.alive[s] {
                        continue;
                    }
                    let settled_s = st.memb.done[s] && st.win[s].fully_acked();
                    let silent = st.memb.silent_for(s, now);
                    if !settled_s && silent >= tol.suspicion {
                        suspect = Some(s);
                        break;
                    }
                    if !settled_s && silent >= tol.speculate_after {
                        // Suspicion is building: race the suspect's next
                        // invocation on an idle survivor from the banked
                        // snapshot, so an eviction rolls back one
                        // invocation less.
                        st.speculate(ctx, slaves, ck_init, n_units, s, &mut sc.recovery);
                    }
                    // See the recoverable loop: a never-spoken slave's
                    // `Alive` pings refresh the suspicion timer but cannot
                    // name what it is missing, so silence is not required
                    // here — only the nudge timer.
                    if takeover.is_none()
                        && !st.memb.heard_any[s]
                        && st.memb.nudge_due(s, now, tol.nudge)
                    {
                        // (Never under a takeover: the survivors are
                        // mid-run, and the reign's opening move is the
                        // Rollback, not a Start.)
                        send(ctx, slaves[s], start_msg(slaves));
                        sc.recovery.start_resends += 1;
                        send(
                            ctx,
                            slaves[s],
                            Msg::InvocationStart {
                                invocation: st.inv,
                                ckpt_stride: st.ckpt_stride,
                            },
                        );
                        sc.recovery.invocation_start_resends += 1;
                    } else if !st.win[s].fully_acked()
                        && st.memb.unheard_for(s, now) >= tol.nudge
                        && st.memb.nudge_due(s, now, tol.nudge)
                    {
                        // A slave that lost its Rollback cannot event-trigger
                        // the re-send — it is either parked silent, still
                        // pinging from a blocked wait, or chattering from a
                        // stale epoch — so the timer keys off *protocol*
                        // silence, which pings do not refresh. Under a
                        // takeover, lead with the Promoted announcement in
                        // case the slave never learned of the reign (it
                        // resets the slave's master-channel dedup so the
                        // replayed Rollback is fresh to it).
                        if let Some((seed, me)) = takeover {
                            send(
                                ctx,
                                slaves[s],
                                Msg::Promoted {
                                    term: seed.term,
                                    master_idx: me,
                                },
                            );
                        }
                        for (_, msg) in st.win[s].unacked() {
                            send(ctx, slaves[s], msg.clone());
                            sc.recovery.restore_resends += 1;
                        }
                    }
                }
                fo.ping(ctx, slaves, &st.memb.alive, &tol, &mut sc.recovery);
                if let Some(s) = suspect {
                    st.evict(ctx, slaves, &mut cfg.balancer, s, &mut sc.recovery);
                    st.rollback(
                        ctx,
                        slaves,
                        &mut cfg.balancer,
                        ck_init,
                        n_units,
                        &tol,
                        &mut sc.recovery,
                    )?;
                    continue 'invocations;
                }
                if !st.memb.any_alive() {
                    return Err(ProtocolError::AllSlavesDead);
                }
            }

            // Settled: fold the invocation wall time into the restart-cost
            // estimate (which also picks the checkpoint stride for the next
            // release) and advance.
            st.fold_invocation_time(ctx.now(), &tol);
            let reduced: f64 = st.metrics.iter().sum();
            st.inv += 1;
            if (cfg.converged)(st.inv - 1, reduced) {
                target = st.inv;
            }
        }

        sc.compute_done = ctx.now();

        // Too late to admit once the run is gathering: refuse queued
        // joiners so their bounded handshake exits.
        for (j, _) in pending_joins.drain(..) {
            send(ctx, slaves[j], Msg::JoinRefuse { slave: j });
        }

        // Gather with *deferred* acknowledgement: slaves must stay resident
        // until the whole result is in hand, because a death mid-gather
        // forces a rollback and a redo — a slave released early could not
        // participate in it.
        let mut seen: BTreeMap<usize, UnitData> = BTreeMap::new();
        let mut got = vec![false; n];
        let now0 = ctx.now();
        for (s, &sl) in slaves.iter().enumerate() {
            st.memb.rearm_nudge(s, now0, tol.nudge);
            st.memb.last_heard[s] = now0;
            if st.memb.alive[s] {
                send(ctx, sl, Msg::Gather);
            }
        }
        loop {
            if seen.len() == n_units {
                for (s, &sl) in slaves.iter().enumerate() {
                    if st.memb.alive[s] {
                        send(ctx, sl, Msg::GatherAck);
                    }
                }
                sc.result.extend(seen);
                return Ok(());
            }
            if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
                match env.msg {
                    Msg::GatherData {
                        slave,
                        units,
                        fault_stats,
                    } => {
                        if !st.memb.alive[slave] {
                            sc.recovery.gather_dups_ignored += 1;
                            continue;
                        }
                        st.memb.last_heard[slave] = ctx.now();
                        if got[slave] {
                            sc.recovery.gather_dups_ignored += 1;
                            continue;
                        }
                        got[slave] = true;
                        sc.recovery.absorb(&fault_stats);
                        for (id, data) in units {
                            match seen.entry(id) {
                                Entry::Vacant(e) => {
                                    e.insert(data);
                                }
                                Entry::Occupied(_) => sc.recovery.gather_dup_units_dropped += 1,
                            }
                        }
                    }
                    Msg::Status(stm) => {
                        let s = stm.slave;
                        if st.memb.alive[s] {
                            st.memb.last_heard[s] = ctx.now();
                            if !got[s] && st.memb.nudge_due(s, ctx.now(), tol.nudge) {
                                send(ctx, slaves[s], Msg::Gather);
                                sc.recovery.gather_resends += 1;
                            }
                        }
                    }
                    Msg::InvocationDone {
                        slave,
                        restore_seq,
                        epoch,
                        ..
                    } => {
                        if st.memb.alive[slave] {
                            st.memb.last_heard[slave] = ctx.now();
                            // Same per-slot floor as the invocation loop: a
                            // previous life's report never acks this window.
                            if epoch >= join_epoch[slave] {
                                st.win[slave].ack(restore_seq);
                            }
                            if !got[slave] && st.memb.nudge_due(slave, ctx.now(), tol.nudge) {
                                send(ctx, slaves[slave], Msg::Gather);
                                sc.recovery.gather_resends += 1;
                            }
                        } else {
                            // Non-member still reporting: its Evict was lost.
                            send(ctx, slaves[slave], Msg::Evict);
                        }
                    }
                    // A late checkpoint racing the gather is only a
                    // liveness signal now.
                    Msg::Checkpoint { slave, .. } => {
                        if st.memb.alive[slave] {
                            st.memb.last_heard[slave] = ctx.now();
                        }
                    }
                    Msg::SlaveError { slave, error } => {
                        if !st.memb.alive[slave] {
                            send(ctx, slaves[slave], Msg::Evict);
                            continue;
                        }
                        if !st.win[slave].fully_acked() {
                            continue;
                        }
                        if !slave_recoverable(&error) {
                            st.evict(ctx, slaves, &mut cfg.balancer, slave, &mut sc.recovery);
                        }
                        st.rollback(
                            ctx,
                            slaves,
                            &mut cfg.balancer,
                            ck_init,
                            n_units,
                            &tol,
                            &mut sc.recovery,
                        )?;
                        continue 'run;
                    }
                    Msg::Alive { slave, incarnation } => {
                        if st.memb.alive[slave] && incarnation == st.memb.incarnation[slave] {
                            // Defers suspicion only; the timer sweep below
                            // still re-sends Gather on protocol silence.
                            st.memb.ping(slave, ctx.now());
                        } else if !st.memb.alive[slave] && incarnation >= st.memb.incarnation[slave]
                        {
                            // Latest life of a non-member: repeat the lost
                            // Evict so it can exit (joins are refused here).
                            send(ctx, slaves[slave], Msg::Evict);
                        }
                    }
                    // The run is gathering: no more admissions this run.
                    Msg::Join { slave, .. } => {
                        send(ctx, slaves[slave], Msg::JoinRefuse { slave });
                    }
                    Msg::Promoted { term, .. } => {
                        if term > fo.term {
                            return Err(ProtocolError::Superseded { term });
                        }
                    }
                    other => {
                        if takeover.is_some() {
                            continue; // stray pre-reign traffic (see above)
                        }
                        return Err(unexpected("checkpointed gather", &other));
                    }
                }
            }
            let now = ctx.now();
            let mut dead_in_gather = None;
            for s in 0..n {
                if !st.memb.alive[s] || got[s] {
                    continue;
                }
                let silent = st.memb.silent_for(s, now);
                if silent >= tol.suspicion {
                    dead_in_gather = Some(s);
                    break;
                }
                if st.memb.unheard_for(s, now) >= tol.nudge && st.memb.nudge_due(s, now, tol.nudge)
                {
                    if st.win[s].fully_acked() {
                        send(ctx, slaves[s], Msg::Gather);
                        sc.recovery.gather_resends += 1;
                    } else {
                        // A parked slave still waiting for its Rollback.
                        for (_, msg) in st.win[s].unacked() {
                            send(ctx, slaves[s], msg.clone());
                            sc.recovery.restore_resends += 1;
                        }
                    }
                }
            }
            // Keep the deputies' election trigger quiet through the gather.
            fo.ping(ctx, slaves, &st.memb.alive, &tol, &mut sc.recovery);
            if let Some(s) = dead_in_gather {
                // Death mid-gather: its un-gathered state is gone, so roll
                // the survivors back and redo from the newest checkpoint.
                sc.recovery.gathers_interrupted += 1;
                st.evict(ctx, slaves, &mut cfg.balancer, s, &mut sc.recovery);
                st.rollback(
                    ctx,
                    slaves,
                    &mut cfg.balancer,
                    ck_init,
                    n_units,
                    &tol,
                    &mut sc.recovery,
                )?;
                continue 'run;
            }
            if !st.memb.any_alive() {
                return Err(ProtocolError::AllSlavesDead);
            }
        }
    }
}
