//! The master process: central load balancer + program control (§3.1, §4.1).
//!
//! The master mimics the application's outer loop structure so that it
//! executes the same number of balancing phases as the slaves and the
//! program terminates properly: one *invocation* per execution of the
//! distributed loop (MM repetition, SOR sweep, LU step). Within an
//! invocation it answers every slave status with instructions from the
//! [`Balancer`], and it releases the next invocation only when every slave
//! is idle, every transfer channel has settled (`sent_to[a][b] ==
//! received_from[b][a]` for every live pair), and no movement order is
//! outstanding — so no unit can be lost, duplicated, or skipped.
//!
//! Three variants of the control loop exist:
//!
//! * **plain** — no fault plan; trouble is a typed error, never a panic.
//! * **recoverable** (independent pattern) — the master detects dead slaves
//!   by silence, evicts them, fences off their transfer channels via
//!   [`Msg::Evicted`] / [`Msg::OwnReport`], and re-scatters exactly the
//!   units no survivor reports. Before a suspect is formally evicted, its
//!   units may be speculatively re-executed on an idle survivor
//!   ([`Msg::Speculate`]); a commit adopts the results without replay.
//! * **checkpointed** (pipelined/shrinking patterns) — carried dependences
//!   make in-place recovery impossible, so slaves ship best-effort state
//!   checkpoints at invocation barriers and the master rolls the survivors
//!   back to the newest complete checkpoint ([`Msg::Rollback`]) instead of
//!   aborting. The estimated restart cost is folded into the balancer's
//!   move-profitability check.
//!
//! All master → slave recovery messages (`Restore`, `Speculate`,
//! `SpecCommit`, `SpecCancel`, `Rollback`) share one per-destination
//! [`SenderWindow`]: sequence-numbered, acknowledged via
//! `InvocationDone::restore_seq`, deduplicated by the receiver, re-sent on
//! evidence of loss. The transition rules are modelled and exhaustively
//! checked in `dlb-analyze` (restore + transfer models).

use crate::balancer::{Balancer, BalancerStats};
use crate::error::{FaultToleranceConfig, ProtocolError};
use crate::frequency::PeriodBounds;
use crate::msg::{Instructions, Msg, UnitData};
use crate::protocol::SenderWindow;
use crate::recovery::{redistribute, RecoveryStats};
use dlb_sim::{ActorCtx, ActorId, CpuWork, SimDuration, SimTime};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// One row of the master's balancing log — the raw material for the
/// paper's Figure 9 (raw rate, adjusted rate, work assignment over time).
#[derive(Clone, Debug)]
pub struct TimelineSample {
    pub t: SimTime,
    pub slave: usize,
    pub invocation: u64,
    pub raw_rate: f64,
    pub adjusted_rate: f64,
    /// Units assigned to this slave after the decision.
    pub assigned: u64,
    pub hooks_to_skip: u64,
}

/// Everything the master hands back to the driver.
#[derive(Debug, Default)]
pub struct MasterOutcome {
    /// Gathered unit data, unordered (the driver sorts by id).
    pub result: Vec<(usize, UnitData)>,
    pub timeline: Vec<TimelineSample>,
    pub stats: BalancerStats,
    pub bounds: Option<PeriodBounds>,
    /// Virtual time when the last invocation settled (before gather).
    pub compute_done: SimTime,
    /// Recovery actions taken (all zero for fault-free runs).
    pub recovery: RecoveryStats,
    /// The typed failure, if the run did not complete.
    pub error: Option<ProtocolError>,
    /// All invocations settled and the gather completed.
    pub completed: bool,
}

/// Initial data of a unit, for re-scattering a dead slave's block.
pub type InitUnitFn = Box<dyn Fn(usize) -> UnitData + Send>;
/// Recompute a unit end-to-end (init + the given number of completed
/// invocations).
pub type RecomputeUnitFn = Box<dyn Fn(usize, u64) -> UnitData + Send>;

/// Fault-tolerance wiring for the master.
pub struct MasterFt {
    pub tolerance: FaultToleranceConfig,
    /// Independent pattern: selects the recoverable control loop.
    pub init_unit: Option<InitUnitFn>,
    /// Independent pattern: used when a slave dies during the final gather.
    pub recompute_unit: Option<RecomputeUnitFn>,
    /// Pipelined/shrinking patterns: initial unit data for the epoch-zero
    /// snapshot; selects the checkpointed control loop when `init_unit` is
    /// absent.
    pub checkpoint_init: Option<InitUnitFn>,
}

/// Master configuration.
pub struct MasterConfig {
    pub balancer: Balancer,
    pub invocations: u64,
    /// Expected work-unit completions per invocation (LU shrinks).
    pub expected_units: Box<dyn Fn(u64) -> u64 + Send>,
    /// Per-invocation expected units-per-hook override (LU's units shrink;
    /// `None` keeps the initial value).
    pub units_per_hook: Option<Box<dyn Fn(u64) -> f64 + Send>>,
    /// CPU charged on the master per status processed.
    pub decision_cpu: CpuWork,
    pub record_timeline: bool,
    /// Data-dependent WHILE termination (§4.1): called with the invocation
    /// just settled and the reduced convergence metric; `true` ends the
    /// program before the invocation upper bound.
    pub converged: Box<dyn Fn(u64, f64) -> bool + Send>,
    /// Fault-mode control loop; `None` selects the plain loop.
    pub ft: Option<MasterFt>,
}

/// Partial results threaded through the control loops so a failed run
/// still surfaces everything measured up to the failure.
#[derive(Default)]
struct Scratch {
    result: Vec<(usize, UnitData)>,
    timeline: Vec<TimelineSample>,
    compute_done: SimTime,
    recovery: RecoveryStats,
}

fn send(ctx: &ActorCtx<Msg>, to: ActorId, msg: Msg) {
    let bytes = msg.wire_bytes();
    ctx.send(to, msg, bytes);
}

fn unexpected(context: &'static str, msg: &Msg) -> ProtocolError {
    ProtocolError::UnexpectedMessage {
        who: "master".to_string(),
        context,
        message: format!("{msg:?}").chars().take(120).collect(),
    }
}

/// Elementwise monotone merge of per-channel counters. Counters only grow,
/// so taking the max makes duplicated or reordered reports harmless.
fn merge_max(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (*d).max(s);
    }
}

/// Every transfer channel between live slaves has settled: everything slave
/// `a` ever sent to slave `b` has been applied at `b`. Channels touching a
/// dead slave are exempt — they are closed by the eviction protocol, which
/// re-owns whatever was still in flight.
fn channels_settled(alive: &[bool], sent: &[Vec<u64>], recv: &[Vec<u64>]) -> bool {
    let n = alive.len();
    (0..n).all(|a| !alive[a] || (0..n).all(|b| !alive[b] || recv[b][a] >= sent[a][b]))
}

/// Whether a slave-reported error is survivable by a checkpoint rollback
/// (the slave keeps running and waits for the `Rollback`) as opposed to a
/// failure of the slave itself.
fn slave_recoverable(e: &ProtocolError) -> bool {
    matches!(
        e,
        ProtocolError::Timeout { .. }
            | ProtocolError::MissingPivot { .. }
            | ProtocolError::NonNeighborTransfer { .. }
            | ProtocolError::Inconsistent { .. }
            | ProtocolError::UnexpectedMessage { .. }
    )
}

/// The master actor body. `slaves` in slave-index order; `assignment` is
/// the initial block distribution; the outcome lands in `out`.
pub fn run_master(
    ctx: ActorCtx<Msg>,
    mut cfg: MasterConfig,
    slaves: Vec<ActorId>,
    assignment: Vec<(usize, usize)>,
    block_rows: u64,
    out: Arc<Mutex<MasterOutcome>>,
) {
    let mut sc = Scratch::default();
    let ft = cfg.ft.take();
    let res = match &ft {
        None => run_plain(&ctx, &mut cfg, &slaves, &assignment, block_rows, &mut sc),
        Some(ft) if ft.init_unit.is_some() => run_recoverable(
            &ctx,
            &mut cfg,
            ft,
            &slaves,
            &assignment,
            block_rows,
            &mut sc,
        ),
        Some(ft) => run_checkpointed(
            &ctx,
            &mut cfg,
            ft,
            &slaves,
            &assignment,
            block_rows,
            &mut sc,
        ),
    };
    if res.is_err() {
        // Release every slave from whatever it is blocked on. recv_blocking
        // always matches Abort, so this cannot deadlock even outside fault
        // mode.
        for &s in &slaves {
            send(&ctx, s, Msg::Abort);
        }
    }
    let mut o = out.lock().unwrap_or_else(|p| p.into_inner());
    o.result = std::mem::take(&mut sc.result);
    o.timeline = std::mem::take(&mut sc.timeline);
    o.stats = cfg.balancer.stats();
    o.bounds = Some(cfg.balancer.period_bounds());
    o.compute_done = sc.compute_done;
    o.recovery = sc.recovery;
    o.completed = res.is_ok();
    o.error = res.err();
}

/// Fault-free control loop. Structurally the original master; every
/// protocol violation is a typed error instead of a panic.
fn run_plain(
    ctx: &ActorCtx<Msg>,
    cfg: &mut MasterConfig,
    slaves: &[ActorId],
    assignment: &[(usize, usize)],
    block_rows: u64,
    sc: &mut Scratch,
) -> Result<(), ProtocolError> {
    let n = slaves.len();
    for &s in slaves {
        send(
            ctx,
            s,
            Msg::Start {
                slaves: slaves.to_vec(),
                assignment: assignment.to_vec(),
                block_rows,
            },
        );
    }

    // Per-channel counters: sent[a][b] = transfers a allocated towards b,
    // recv[b][a] = contiguous transfers from a applied at b.
    let mut sent = vec![vec![0u64; n]; n];
    let mut recv = vec![vec![0u64; n]; n];
    let all_alive = vec![true; n];

    let mut inv = 0;
    while inv < cfg.invocations {
        cfg.balancer
            .set_remaining_invocations(cfg.invocations - inv);
        if let Some(uph) = &cfg.units_per_hook {
            cfg.balancer.set_units_per_hook(uph(inv));
        }
        for &s in slaves {
            send(ctx, s, Msg::InvocationStart { invocation: inv });
        }
        let expected = (cfg.expected_units)(inv);
        let mut done_sum = 0u64;
        let mut idle = vec![false; n];
        let mut metrics = vec![0.0f64; n];

        loop {
            // Settlement check.
            if idle.iter().all(|&b| b)
                && done_sum >= expected
                && channels_settled(&all_alive, &sent, &recv)
                && cfg.balancer.outstanding_orders() == 0
            {
                if done_sum != expected {
                    return Err(ProtocolError::Inconsistent {
                        detail: format!(
                            "invocation {inv}: {done_sum} units completed, expected {expected}"
                        ),
                    });
                }
                break;
            }
            let env = ctx.recv();
            if std::env::var_os("DLB_TRACE").is_some() {
                eprintln!(
                    "[master t={} inv={inv}] got {:?} (done {done_sum}/{expected}, idle {idle:?})",
                    ctx.now(),
                    match &env.msg {
                        Msg::Status(s) => format!(
                            "Status(slave {}, delta {}, active {})",
                            s.slave, s.units_done_delta, s.active_units
                        ),
                        other => format!("{other:?}").chars().take(60).collect::<String>(),
                    }
                );
            }
            match env.msg {
                Msg::Status(st) => {
                    if st.invocation > inv {
                        return Err(unexpected("status from the future", &Msg::Status(st)));
                    }
                    if st.invocation == inv {
                        done_sum += st.units_done_delta;
                    }
                    merge_max(&mut sent[st.slave], &st.sent_to);
                    merge_max(&mut recv[st.slave], &st.received_from);
                    idle[st.slave] = false;
                    ctx.advance_work(cfg.decision_cpu);
                    let decision = cfg.balancer.on_status(&st);
                    if cfg.record_timeline {
                        sc.timeline.push(TimelineSample {
                            t: ctx.now(),
                            slave: st.slave,
                            invocation: inv,
                            raw_rate: decision.raw_rate,
                            adjusted_rate: decision.adjusted_rate,
                            assigned: decision.owned_after,
                            hooks_to_skip: decision.instructions.hooks_to_skip,
                        });
                    }
                    send(
                        ctx,
                        slaves[st.slave],
                        Msg::Instructions(decision.instructions),
                    );
                }
                Msg::InvocationDone {
                    slave,
                    invocation,
                    sent_to,
                    received_from,
                    metric,
                    ..
                } => {
                    if invocation > inv {
                        return Err(ProtocolError::Inconsistent {
                            detail: format!("InvocationDone for {invocation} while settling {inv}"),
                        });
                    }
                    // A refreshed report for an earlier invocation (sent
                    // after executing late balancing moves) can straggle
                    // into the next settlement; its channel counts still
                    // matter, its idle claim does not.
                    if invocation == inv {
                        idle[slave] = true;
                        metrics[slave] = metric;
                    }
                    merge_max(&mut sent[slave], &sent_to);
                    merge_max(&mut recv[slave], &received_from);
                    cfg.balancer.ack_transfers(slave, &received_from);
                }
                Msg::SlaveError { slave, error } => {
                    return Err(ProtocolError::SlaveFailed {
                        slave,
                        error: Box::new(error),
                    });
                }
                other => return Err(unexpected("invocation loop", &other)),
            }
        }
        let reduced: f64 = metrics.iter().sum();
        inv += 1;
        if (cfg.converged)(inv - 1, reduced) {
            break;
        }
    }

    sc.compute_done = ctx.now();

    // Gather results.
    for &s in slaves {
        send(ctx, s, Msg::Gather);
    }
    let mut got = vec![false; n];
    while !got.iter().all(|&g| g) {
        let env = ctx.recv();
        match env.msg {
            Msg::GatherData {
                slave,
                units,
                fault_stats,
            } => {
                if !got[slave] {
                    got[slave] = true;
                    sc.recovery.absorb(&fault_stats);
                    sc.result.extend(units);
                }
                // No GatherAck in plain mode: the slave exits right after
                // replying, so an ack would never be received (and message
                // conservation is promised without faults).
            }
            // Final statuses racing the gather are harmless.
            Msg::Status(_) | Msg::InvocationDone { .. } => {}
            Msg::SlaveError { slave, error } => {
                return Err(ProtocolError::SlaveFailed {
                    slave,
                    error: Box::new(error),
                });
            }
            other => return Err(unexpected("gather", &other)),
        }
    }
    Ok(())
}

/// A pending eviction: the master re-scatters the dead slave's units only
/// after every survivor has fenced off its channels with the dead peer and
/// reported its authoritative ownership ([`Msg::OwnReport`]). Until then
/// in-flight transfers could resurrect units behind the master's back.
struct Eviction {
    dead: usize,
    /// Survivors whose `OwnReport` about `dead` is still outstanding.
    awaiting: BTreeSet<usize>,
    /// What the master believed the dead slave owned (for the re-own
    /// accounting; the OwnReports are the authority).
    dead_owned: Vec<usize>,
}

/// An in-flight speculative re-execution of a silent suspect's units on an
/// idle survivor (§ speculation): committed if the suspect is evicted,
/// cancelled the moment the suspect speaks.
struct Spec {
    suspect: usize,
    executor: usize,
    /// Window sequence of the `Speculate` message (keys the executor's
    /// speculation buffer).
    spec_seq: u64,
    /// Unit ids seeded into the speculation.
    ids: Vec<usize>,
}

/// Cancel the in-flight speculation (the suspect proved alive).
fn cancel_spec(
    ctx: &ActorCtx<Msg>,
    slaves: &[ActorId],
    win: &mut [SenderWindow<Msg>],
    spec: &mut Option<Spec>,
    sc: &mut Scratch,
) {
    if let Some(sp) = spec.take() {
        let msg = win[sp.executor]
            .send_with(|seq| Msg::SpecCancel {
                seq,
                spec_seq: sp.spec_seq,
            })
            .clone();
        send(ctx, slaves[sp.executor], msg);
        sc.recovery.speculations_cancelled += 1;
    }
}

/// All pending evictions are fully reported: compute the set of units no
/// survivor owns (directly or in an unacknowledged master message still in
/// flight), adopt speculation results for whatever they cover, and
/// re-scatter the rest from initial data.
#[allow(clippy::too_many_arguments)]
fn resolve_evictions(
    ctx: &ActorCtx<Msg>,
    slaves: &[ActorId],
    n_units: usize,
    inv: u64,
    alive: &[bool],
    owned: &mut [BTreeSet<usize>],
    win: &mut [SenderWindow<Msg>],
    evictions: &mut Vec<Eviction>,
    spec: &mut Option<Spec>,
    done: &mut [bool],
    init_unit: &InitUnitFn,
    sc: &mut Scratch,
) {
    let n = slaves.len();
    // Units accounted for: owned by a survivor, or inside an unacknowledged
    // Restore/SpecCommit payload (the owner's `owned_ids` cannot reflect
    // those yet — `restore_seq` and `owned_ids` travel atomically in
    // InvocationDone, so once the window is acked the report includes them).
    let mut assigned: BTreeSet<usize> = BTreeSet::new();
    for s in 0..n {
        if !alive[s] {
            continue;
        }
        assigned.extend(owned[s].iter().copied());
        for (_, m) in win[s].unacked() {
            match m {
                Msg::Restore { units, .. } => {
                    assigned.extend(units.iter().map(|(id, _)| *id));
                }
                Msg::SpecCommit { ids, .. } => assigned.extend(ids.iter().copied()),
                _ => {}
            }
        }
    }
    // In-flight units the survivors re-owned by closing channels with the
    // dead peers (a proxy count: everything the dead slave was believed to
    // own that a survivor now accounts for).
    for ev in evictions.iter() {
        sc.recovery.units_reowned += ev
            .dead_owned
            .iter()
            .filter(|u| assigned.contains(u))
            .count() as u64;
    }
    let mut missing: Vec<usize> = (0..n_units).filter(|u| !assigned.contains(u)).collect();

    // Speculation first: if the suspect is among the dead, its units were
    // already recomputed on the executor — adopt them without replay.
    if spec.as_ref().is_some_and(|sp| !alive[sp.suspect]) {
        let sp = spec.take().expect("checked above");
        let commit: Vec<usize> = missing
            .iter()
            .copied()
            .filter(|u| sp.ids.contains(u))
            .collect();
        if commit.is_empty() {
            let msg = win[sp.executor]
                .send_with(|seq| Msg::SpecCancel {
                    seq,
                    spec_seq: sp.spec_seq,
                })
                .clone();
            send(ctx, slaves[sp.executor], msg);
            sc.recovery.speculations_cancelled += 1;
        } else {
            missing.retain(|u| !commit.contains(u));
            owned[sp.executor].extend(commit.iter().copied());
            sc.recovery.units_speculated += commit.len() as u64;
            sc.recovery.speculations_committed += 1;
            done[sp.executor] = false;
            let msg = win[sp.executor]
                .send_with(|seq| Msg::SpecCommit {
                    seq,
                    spec_seq: sp.spec_seq,
                    ids: commit,
                })
                .clone();
            send(ctx, slaves[sp.executor], msg);
        }
    }

    let survivors: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
    for (t, units) in redistribute(&missing, &survivors) {
        let payload: Vec<(usize, UnitData)> = units.iter().map(|&u| (u, init_unit(u))).collect();
        sc.recovery.units_restored += payload.len() as u64;
        owned[t].extend(units.iter().copied());
        done[t] = false;
        let msg = win[t]
            .send_with(|seq| Msg::Restore {
                seq,
                invocation: inv,
                units: payload,
            })
            .clone();
        send(ctx, slaves[t], msg);
    }
    evictions.clear();
}

/// Recoverable control loop (independent pattern): silence-based failure
/// detection, channel-fenced eviction, speculative re-execution, and unit
/// re-scattering — with the dynamic balancer live throughout.
#[allow(clippy::too_many_arguments)]
fn run_recoverable(
    ctx: &ActorCtx<Msg>,
    cfg: &mut MasterConfig,
    ft: &MasterFt,
    slaves: &[ActorId],
    assignment: &[(usize, usize)],
    block_rows: u64,
    sc: &mut Scratch,
) -> Result<(), ProtocolError> {
    let n = slaves.len();
    let tol = ft.tolerance.clone();
    let init_unit = ft
        .init_unit
        .as_ref()
        .expect("recoverable loop needs init_unit");
    let n_units = assignment.iter().map(|&(_, hi)| hi).max().unwrap_or(0);

    let start_msg = |slaves: &[ActorId]| Msg::Start {
        slaves: slaves.to_vec(),
        assignment: assignment.to_vec(),
        block_rows,
    };
    for &s in slaves {
        send(ctx, s, start_msg(slaves));
    }

    // Liveness and dedup state. `next_nudge` rate-limits re-sends per
    // slave; re-sends themselves are event-triggered where possible, so a
    // fault-free run never produces one.
    let mut alive = vec![true; n];
    let mut heard_any = vec![false; n];
    let mut last_heard = vec![ctx.now(); n];
    let mut next_nudge = vec![ctx.now() + tol.nudge; n];
    let mut last_hook_seq = vec![0u64; n];
    // Ownership as the master believes it: refreshed from every
    // InvocationDone (`owned_ids`) and authoritative OwnReports. With the
    // balancer live this map can lag a transfer in flight; the eviction
    // protocol never trusts it alone (see resolve_evictions).
    let mut owned: Vec<BTreeSet<usize>> = assignment
        .iter()
        .map(|&(lo, hi)| (lo..hi).collect())
        .collect();
    // One sender window per destination for all recovery messages
    // (Restore / Speculate / SpecCommit / SpecCancel), acknowledged via
    // InvocationDone::restore_seq. The transition rules live in
    // `protocol::SenderWindow`, where the model checker in `dlb-analyze`
    // exercises them exhaustively.
    let mut win: Vec<SenderWindow<Msg>> = vec![SenderWindow::new(); n];
    // Bounded instruction retry: (seq, message, re-sends so far), cleared
    // when a status acknowledges the sequence number.
    let mut unacked_instr: Vec<Option<(u64, Instructions, u32)>> = (0..n).map(|_| None).collect();
    // Per-channel transfer settlement matrices (monotone max-merged).
    let mut sent = vec![vec![0u64; n]; n];
    let mut recv = vec![vec![0u64; n]; n];
    let mut evictions: Vec<Eviction> = Vec::new();
    let mut spec: Option<Spec> = None;

    let mut inv = 0;
    'invocations: while inv < cfg.invocations {
        cfg.balancer
            .set_remaining_invocations(cfg.invocations - inv);
        if let Some(uph) = &cfg.units_per_hook {
            cfg.balancer.set_units_per_hook(uph(inv));
        }
        for (i, &s) in slaves.iter().enumerate() {
            if alive[i] {
                send(ctx, s, Msg::InvocationStart { invocation: inv });
            }
        }
        let mut done = vec![false; n];
        let mut metrics = vec![0.0f64; n];

        loop {
            let all_settled = (0..n).all(|s| !alive[s] || (done[s] && win[s].fully_acked()))
                && evictions.is_empty()
                && channels_settled(&alive, &sent, &recv)
                && cfg.balancer.outstanding_orders() == 0;
            if all_settled {
                break;
            }
            if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
                match env.msg {
                    Msg::Status(st) => {
                        let s = st.slave;
                        if !alive[s] {
                            continue; // evicted slave still talking
                        }
                        heard_any[s] = true;
                        last_heard[s] = ctx.now();
                        if spec.as_ref().is_some_and(|sp| sp.suspect == s) {
                            cancel_spec(ctx, slaves, &mut win, &mut spec, sc);
                        }
                        if st.invocation > inv {
                            return Err(unexpected("status from the future", &Msg::Status(st)));
                        }
                        if st.hook_seq <= last_hook_seq[s] {
                            sc.recovery.status_dups_ignored += 1;
                            continue;
                        }
                        last_hook_seq[s] = st.hook_seq;
                        // A status means the slave is computing again.
                        done[s] = false;
                        if let Some((seq, _, _)) = &unacked_instr[s] {
                            // Ack lag alone is no evidence of loss: a slave
                            // pipelines instructions, so it runs a couple of
                            // sequence numbers behind even fault-free, and a
                            // dropped instruction is superseded by the next
                            // one anyway. Retry only fires for a slave stuck
                            // at a barrier (see the InvocationDone arm),
                            // where nothing can supersede.
                            if st.last_applied_seq >= *seq {
                                unacked_instr[s] = None;
                            }
                        }
                        merge_max(&mut sent[s], &st.sent_to);
                        merge_max(&mut recv[s], &st.received_from);
                        ctx.advance_work(cfg.decision_cpu);
                        let decision = cfg.balancer.on_status(&st);
                        if cfg.record_timeline {
                            sc.timeline.push(TimelineSample {
                                t: ctx.now(),
                                slave: s,
                                invocation: inv,
                                raw_rate: decision.raw_rate,
                                adjusted_rate: decision.adjusted_rate,
                                assigned: decision.owned_after,
                                hooks_to_skip: decision.instructions.hooks_to_skip,
                            });
                        }
                        unacked_instr[s] =
                            Some((decision.instructions.seq, decision.instructions.clone(), 0));
                        send(ctx, slaves[s], Msg::Instructions(decision.instructions));
                    }
                    Msg::InvocationDone {
                        slave,
                        invocation,
                        sent_to,
                        received_from,
                        metric,
                        restore_seq,
                        owned_ids,
                        ..
                    } => {
                        if !alive[slave] {
                            sc.recovery.done_dups_ignored += 1;
                            continue;
                        }
                        heard_any[slave] = true;
                        last_heard[slave] = ctx.now();
                        if spec.as_ref().is_some_and(|sp| sp.suspect == slave) {
                            cancel_spec(ctx, slaves, &mut win, &mut spec, sc);
                        }
                        win[slave].ack(restore_seq);
                        merge_max(&mut sent[slave], &sent_to);
                        merge_max(&mut recv[slave], &received_from);
                        cfg.balancer.ack_transfers(slave, &received_from);
                        if invocation == inv {
                            done[slave] = true;
                            metrics[slave] = metric;
                            // Fresh report for the current barrier: adopt its
                            // ownership snapshot. (A duplicated older report
                            // is caught by the invocation comparison; a
                            // transfer still in flight at most doubles a
                            // unit, which the deterministic gather dedups.)
                            owned[slave] = owned_ids.iter().copied().collect();
                        } else if invocation < inv {
                            sc.recovery.done_dups_ignored += 1;
                            // A heartbeat from a slave stuck at the previous
                            // barrier: its release was lost. The heartbeat
                            // itself is the re-send trigger — the slave is
                            // chatty, so a silence timer would never fire.
                            if ctx.now() >= next_nudge[slave] {
                                next_nudge[slave] = ctx.now() + tol.nudge;
                                send(ctx, slaves[slave], Msg::InvocationStart { invocation: inv });
                                sc.recovery.invocation_start_resends += 1;
                                // A stuck slave cannot supersede a lost
                                // instruction with a newer one; replay the
                                // unacknowledged one (bounded).
                                if let Some((_, instr, tries)) = &mut unacked_instr[slave] {
                                    if *tries < tol.instr_retries {
                                        *tries += 1;
                                        sc.recovery.instr_resends += 1;
                                        send(ctx, slaves[slave], Msg::Instructions(instr.clone()));
                                    }
                                }
                            }
                        } else {
                            return Err(ProtocolError::Inconsistent {
                                detail: format!(
                                    "InvocationDone for {invocation} while settling {inv}"
                                ),
                            });
                        }
                        // Done but missing windowed messages: they were lost
                        // in flight. Replay everything unacknowledged.
                        if done[slave]
                            && !win[slave].fully_acked()
                            && ctx.now() >= next_nudge[slave]
                        {
                            next_nudge[slave] = ctx.now() + tol.nudge;
                            for (_, msg) in win[slave].unacked() {
                                send(ctx, slaves[slave], msg.clone());
                                sc.recovery.restore_resends += 1;
                            }
                        }
                    }
                    Msg::OwnReport {
                        slave: v,
                        about,
                        ids,
                    } => {
                        if !alive[v] {
                            continue;
                        }
                        heard_any[v] = true;
                        last_heard[v] = ctx.now();
                        if spec.as_ref().is_some_and(|sp| sp.suspect == v) {
                            cancel_spec(ctx, slaves, &mut win, &mut spec, sc);
                        }
                        let mut matched = false;
                        for ev in evictions.iter_mut() {
                            if ev.dead == about && ev.awaiting.remove(&v) {
                                matched = true;
                            }
                        }
                        if !matched {
                            // Late duplicate (its eviction already resolved):
                            // the ids are stale — never adopt them.
                            sc.recovery.done_dups_ignored += 1;
                            continue;
                        }
                        owned[v] = ids.into_iter().collect();
                        done[v] = false;
                        if !evictions.is_empty() && evictions.iter().all(|e| e.awaiting.is_empty())
                        {
                            resolve_evictions(
                                ctx,
                                slaves,
                                n_units,
                                inv,
                                &alive,
                                &mut owned,
                                &mut win,
                                &mut evictions,
                                &mut spec,
                                &mut done,
                                init_unit,
                                sc,
                            );
                        }
                    }
                    Msg::SlaveError { slave, error } => {
                        return Err(ProtocolError::SlaveFailed {
                            slave,
                            error: Box::new(error),
                        });
                    }
                    other => return Err(unexpected("recoverable invocation loop", &other)),
                }
            }

            // Timers: suspicion, speculation, and nudges for every live,
            // unsettled slave.
            let now = ctx.now();
            for s in 0..n {
                if !alive[s] {
                    continue;
                }
                let settled_s = done[s] && win[s].fully_acked();
                if settled_s {
                    continue;
                }
                let silent = now.saturating_since(last_heard[s]);
                if silent >= tol.suspicion {
                    // Declare dead, fence off its channels, and wait for the
                    // survivors' ownership reports before re-scattering.
                    alive[s] = false;
                    sc.recovery.slaves_declared_dead += 1;
                    sc.recovery.first_death.get_or_insert(now);
                    send(ctx, slaves[s], Msg::Evict);
                    cfg.balancer.mark_dead(s);
                    // Its per-invocation metric no longer counts: survivors
                    // recompute its units and contribute their metric.
                    metrics[s] = 0.0;
                    unacked_instr[s] = None;
                    let dead_owned: Vec<usize> =
                        std::mem::take(&mut owned[s]).into_iter().collect();
                    if spec.as_ref().is_some_and(|sp| sp.executor == s) {
                        // The speculation died with its executor.
                        spec = None;
                    }
                    for ev in evictions.iter_mut() {
                        ev.awaiting.remove(&s);
                    }
                    let survivors: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
                    if survivors.is_empty() {
                        return Err(ProtocolError::AllSlavesDead);
                    }
                    for &v in &survivors {
                        send(ctx, slaves[v], Msg::Evicted { slave: s });
                    }
                    evictions.push(Eviction {
                        dead: s,
                        awaiting: survivors.into_iter().collect(),
                        dead_owned,
                    });
                    continue;
                }
                if silent >= tol.speculate_after
                    && spec.is_none()
                    && evictions.is_empty()
                    && !owned[s].is_empty()
                {
                    // Suspicion is building: start recomputing the suspect's
                    // units on an idle, fully settled survivor so an eviction
                    // commits finished results instead of replaying.
                    if let Some(e) =
                        (0..n).find(|&e| e != s && alive[e] && done[e] && win[e].fully_acked())
                    {
                        let ids: Vec<usize> = owned[s].iter().copied().collect();
                        let units: Vec<(usize, UnitData)> =
                            ids.iter().map(|&u| (u, init_unit(u))).collect();
                        let msg = win[e]
                            .send_with(|seq| Msg::Speculate {
                                seq,
                                invocation: inv,
                                units,
                            })
                            .clone();
                        send(ctx, slaves[e], msg);
                        let spec_seq = win[e].seq_sent();
                        spec = Some(Spec {
                            suspect: s,
                            executor: e,
                            spec_seq,
                            ids,
                        });
                        sc.recovery.speculations_launched += 1;
                    }
                }
                if !heard_any[s] && silent >= tol.nudge && now >= next_nudge[s] {
                    // A slave that has never spoken may have lost its Start;
                    // it has nothing to heartbeat, so only a silence timer
                    // can catch it. Every other loss is event-triggered from
                    // the receive arms above: a slave missing a control
                    // message keeps heartbeating, and the heartbeat itself
                    // carries the evidence of what it is missing.
                    next_nudge[s] = now + tol.nudge;
                    send(ctx, slaves[s], start_msg(slaves));
                    sc.recovery.start_resends += 1;
                    send(ctx, slaves[s], Msg::InvocationStart { invocation: inv });
                    sc.recovery.invocation_start_resends += 1;
                }
            }
            // A lost Evicted (or a lost OwnReport) stalls an eviction; the
            // awaiting survivors are re-notified on the nudge timer. The
            // slave-side dedup makes the re-broadcast idempotent.
            for ev in &evictions {
                for &v in &ev.awaiting {
                    if now >= next_nudge[v] {
                        next_nudge[v] = now + tol.nudge;
                        send(ctx, slaves[v], Msg::Evicted { slave: ev.dead });
                        sc.recovery.restore_resends += 1;
                    }
                }
            }
            if !alive.iter().any(|&a| a) {
                return Err(ProtocolError::AllSlavesDead);
            }
        }
        let reduced: f64 = metrics.iter().sum();
        inv += 1;
        if (cfg.converged)(inv - 1, reduced) {
            break 'invocations;
        }
    }

    sc.compute_done = ctx.now();

    // Gather from the survivors; a slave dying here gets its units
    // recomputed locally from the retained initial data (safety net).
    let recompute = ft
        .recompute_unit
        .as_ref()
        .expect("recoverable loop needs recompute_unit");
    let mut seen: BTreeMap<usize, UnitData> = BTreeMap::new();
    let mut got = vec![false; n];
    let now0 = ctx.now();
    for s in 0..n {
        next_nudge[s] = now0 + tol.nudge;
        last_heard[s] = now0;
        if alive[s] {
            send(ctx, slaves[s], Msg::Gather);
        }
    }
    loop {
        if (0..n).all(|s| !alive[s] || got[s]) {
            break;
        }
        if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
            match env.msg {
                Msg::GatherData {
                    slave,
                    units,
                    fault_stats,
                } => {
                    if !alive[slave] {
                        sc.recovery.gather_dups_ignored += 1;
                        continue;
                    }
                    last_heard[slave] = ctx.now();
                    send(ctx, slaves[slave], Msg::GatherAck);
                    if got[slave] {
                        sc.recovery.gather_dups_ignored += 1;
                        continue;
                    }
                    got[slave] = true;
                    sc.recovery.absorb(&fault_stats);
                    for (id, data) in units {
                        // A unit restored while its old owner's transfer was
                        // still in flight can briefly have two owners; both
                        // copies are deterministic and identical — keep the
                        // first.
                        match seen.entry(id) {
                            Entry::Vacant(e) => {
                                e.insert(data);
                            }
                            Entry::Occupied(_) => sc.recovery.gather_dup_units_dropped += 1,
                        }
                    }
                }
                // Final statuses and idle heartbeats racing the gather. A
                // heartbeat from a slave that owes us data means it never
                // received the Gather — the heartbeat is the re-send
                // trigger (it is chatty, so a silence timer never fires).
                Msg::Status(st) => {
                    let s = st.slave;
                    if alive[s] {
                        last_heard[s] = ctx.now();
                        if !got[s] && ctx.now() >= next_nudge[s] {
                            next_nudge[s] = ctx.now() + tol.nudge;
                            send(ctx, slaves[s], Msg::Gather);
                            sc.recovery.gather_resends += 1;
                        }
                    }
                }
                Msg::InvocationDone {
                    slave, restore_seq, ..
                } => {
                    if alive[slave] {
                        last_heard[slave] = ctx.now();
                        win[slave].ack(restore_seq);
                        if !got[slave] && ctx.now() >= next_nudge[slave] {
                            next_nudge[slave] = ctx.now() + tol.nudge;
                            send(ctx, slaves[slave], Msg::Gather);
                            sc.recovery.gather_resends += 1;
                        }
                    }
                }
                // A duplicated Evicted delivery can make a survivor repeat
                // an old ownership report during the gather; it is only a
                // liveness signal here.
                Msg::OwnReport { slave, .. } => {
                    if alive[slave] {
                        last_heard[slave] = ctx.now();
                        if !got[slave] && ctx.now() >= next_nudge[slave] {
                            next_nudge[slave] = ctx.now() + tol.nudge;
                            send(ctx, slaves[slave], Msg::Gather);
                            sc.recovery.gather_resends += 1;
                        }
                    }
                }
                Msg::SlaveError { slave, error } => {
                    return Err(ProtocolError::SlaveFailed {
                        slave,
                        error: Box::new(error),
                    });
                }
                other => return Err(unexpected("recoverable gather", &other)),
            }
        }
        let now = ctx.now();
        for s in 0..n {
            if !alive[s] || got[s] {
                continue;
            }
            let silent = now.saturating_since(last_heard[s]);
            if silent >= tol.suspicion {
                // Dead during the gather: the end-of-gather safety net
                // recomputes whatever no survivor delivered.
                alive[s] = false;
                sc.recovery.slaves_declared_dead += 1;
                sc.recovery.first_death.get_or_insert(now);
                send(ctx, slaves[s], Msg::Evict);
                owned[s].clear();
            } else if silent >= tol.nudge && now >= next_nudge[s] {
                // Silent but not yet suspect: the slave may be waiting for
                // a GatherAck after its GatherData was lost (it waits
                // quietly, re-sending only on a duplicate Gather).
                next_nudge[s] = now + tol.nudge;
                send(ctx, slaves[s], Msg::Gather);
                sc.recovery.gather_resends += 1;
            }
        }
    }
    // Safety net: any unit no survivor delivered is recomputed locally
    // from initial data (deterministic, so bit-identical to the lost copy).
    for u in 0..n_units {
        if let Entry::Vacant(e) = seen.entry(u) {
            e.insert(recompute(u, inv));
            sc.recovery.units_recomputed += 1;
        }
    }
    sc.result.extend(seen);
    Ok(())
}

/// Mutable state of the checkpointed control loop, factored out so the
/// rollback procedure can be a method instead of a 15-argument function.
struct CkState {
    alive: Vec<bool>,
    heard_any: Vec<bool>,
    last_heard: Vec<SimTime>,
    next_nudge: Vec<SimTime>,
    last_hook_seq: Vec<u64>,
    done: Vec<bool>,
    metrics: Vec<f64>,
    sent: Vec<Vec<u64>>,
    recv: Vec<Vec<u64>>,
    win: Vec<SenderWindow<Msg>>,
    unacked_instr: Vec<Option<(u64, Instructions, u32)>>,
    /// Current rollback epoch; all protocol state is fenced by it.
    epoch: u64,
    /// Invocation being settled.
    inv: u64,
    /// The current invocation was released by a `Rollback` (which doubles
    /// as the barrier release), so the head of the loop must not broadcast
    /// another `InvocationStart`.
    released: bool,
    /// Partial checkpoints per invocation, merged as slave contributions
    /// arrive. Value-deterministic, so contributions from different epochs
    /// merge safely.
    bank: BTreeMap<u64, BTreeMap<usize, UnitData>>,
    /// Newest complete checkpoint: (invocation it releases, full snapshot).
    best: Option<(u64, BTreeMap<usize, UnitData>)>,
    /// Exponential moving average of the invocation wall time (seconds),
    /// for the restart-cost estimate fed to the balancer.
    ema_s: f64,
    inv_started: SimTime,
}

impl CkState {
    fn new(ctx: &ActorCtx<Msg>, n: usize, tol: &FaultToleranceConfig) -> CkState {
        CkState {
            alive: vec![true; n],
            heard_any: vec![false; n],
            last_heard: vec![ctx.now(); n],
            next_nudge: vec![ctx.now() + tol.nudge; n],
            last_hook_seq: vec![0u64; n],
            done: vec![false; n],
            metrics: vec![0.0; n],
            sent: vec![vec![0u64; n]; n],
            recv: vec![vec![0u64; n]; n],
            win: vec![SenderWindow::new(); n],
            unacked_instr: (0..n).map(|_| None).collect(),
            epoch: 0,
            inv: 0,
            released: false,
            bank: BTreeMap::new(),
            best: None,
            ema_s: 0.0,
            inv_started: ctx.now(),
        }
    }

    fn settled(&self, balancer: &Balancer) -> bool {
        let n = self.alive.len();
        (0..n).all(|s| !self.alive[s] || (self.done[s] && self.win[s].fully_acked()))
            && channels_settled(&self.alive, &self.sent, &self.recv)
            && balancer.outstanding_orders() == 0
    }

    /// Declare a slave dead. The caller must follow up with `rollback` —
    /// pipelined/shrinking state cannot be recovered in place.
    fn evict(
        &mut self,
        ctx: &ActorCtx<Msg>,
        slaves: &[ActorId],
        balancer: &mut Balancer,
        s: usize,
        sc: &mut Scratch,
    ) {
        self.alive[s] = false;
        sc.recovery.slaves_declared_dead += 1;
        sc.recovery.first_death.get_or_insert(ctx.now());
        send(ctx, slaves[s], Msg::Evict);
        balancer.mark_dead(s);
        self.metrics[s] = 0.0;
        self.done[s] = false;
        self.unacked_instr[s] = None;
    }

    /// Roll the survivors back to the newest complete checkpoint (or the
    /// initial data when none was banked yet): bump the epoch, re-partition
    /// the snapshot contiguously over the survivors, and release the
    /// resumed invocation through the windowed `Rollback` itself. The
    /// estimated re-execution cost is handed to the balancer so marginal
    /// moves stop looking profitable while the run is catching up.
    #[allow(clippy::too_many_arguments)]
    fn rollback(
        &mut self,
        ctx: &ActorCtx<Msg>,
        slaves: &[ActorId],
        balancer: &mut Balancer,
        ck_init: &InitUnitFn,
        n_units: usize,
        tol: &FaultToleranceConfig,
        sc: &mut Scratch,
    ) -> Result<(), ProtocolError> {
        let n = self.alive.len();
        let survivors: Vec<usize> = (0..n).filter(|&i| self.alive[i]).collect();
        if survivors.is_empty() {
            return Err(ProtocolError::AllSlavesDead);
        }
        let (ck_inv, snapshot): (u64, Vec<(usize, UnitData)>) = match &self.best {
            Some((i, snap)) => (*i, snap.iter().map(|(id, d)| (*id, d.clone())).collect()),
            None => (0, (0..n_units).map(|id| (id, ck_init(id))).collect()),
        };
        sc.recovery.rollbacks += 1;
        sc.recovery.units_rolled_back += snapshot.len() as u64;
        self.epoch += 1;
        // Restart cost: invocations lost since the checkpoint (including
        // the partially-done one), priced at the running per-invocation
        // average. `ck_inv` can exceed `inv` when a complete checkpoint for
        // the *next* barrier arrived before this one settled — then nothing
        // is lost. (In that corner the convergence test for the skipped
        // settlement is never evaluated; acceptable for a WHILE loop, which
        // only ever runs a bounded number of extra invocations.)
        let lost_invs = (self.inv + 1).saturating_sub(ck_inv);
        balancer.set_restart_cost(SimDuration::from_secs_f64(self.ema_s * lost_invs as f64));
        let ranges = crate::driver::block_ranges(n_units, survivors.len());
        let mut counts = vec![0u64; n];
        let epoch = self.epoch;
        for (k, &sv) in survivors.iter().enumerate() {
            let (lo, hi) = ranges[k];
            counts[sv] = (hi - lo) as u64;
            let units: Vec<(usize, UnitData)> = snapshot[lo..hi].to_vec();
            let msg = self.win[sv]
                .send_with(|seq| Msg::Rollback {
                    seq,
                    epoch,
                    invocation: ck_inv,
                    survivors: survivors.clone(),
                    units,
                })
                .clone();
            send(ctx, slaves[sv], msg);
        }
        balancer.rebase(self.epoch, counts);
        // Everything tracked under the old epoch is void: the slaves reset
        // their channels on rebase, so the settlement matrices restart from
        // zero, and old-epoch instructions must never be replayed.
        for row in self.sent.iter_mut().chain(self.recv.iter_mut()) {
            row.iter_mut().for_each(|v| *v = 0);
        }
        self.unacked_instr.iter_mut().for_each(|u| *u = None);
        self.inv = ck_inv;
        self.released = true;
        let now = ctx.now();
        for &sv in &survivors {
            self.last_heard[sv] = now;
            self.next_nudge[sv] = now + tol.nudge;
            self.done[sv] = false;
        }
        Ok(())
    }
}

/// Checkpointed control loop (pipelined/shrinking patterns): slaves ship
/// best-effort state checkpoints at invocation barriers; a death or an
/// unrecoverable protocol loss rolls the survivors back to the newest
/// complete checkpoint instead of aborting the run.
#[allow(clippy::too_many_arguments)]
fn run_checkpointed(
    ctx: &ActorCtx<Msg>,
    cfg: &mut MasterConfig,
    ft: &MasterFt,
    slaves: &[ActorId],
    assignment: &[(usize, usize)],
    block_rows: u64,
    sc: &mut Scratch,
) -> Result<(), ProtocolError> {
    let n = slaves.len();
    let tol = ft.tolerance.clone();
    let ck_init = ft
        .checkpoint_init
        .as_ref()
        .expect("checkpointed loop needs checkpoint_init");
    let n_units = assignment.iter().map(|&(_, hi)| hi).max().unwrap_or(0);

    let start_msg = |slaves: &[ActorId]| Msg::Start {
        slaves: slaves.to_vec(),
        assignment: assignment.to_vec(),
        block_rows,
    };
    for &s in slaves {
        send(ctx, s, start_msg(slaves));
    }

    let mut st = CkState::new(ctx, n, &tol);
    // Convergence can end the run early; a post-convergence rollback must
    // not run invocations the converged run never executed.
    let mut target = cfg.invocations;

    'run: loop {
        'invocations: while st.inv < target {
            cfg.balancer.set_remaining_invocations(target - st.inv);
            if let Some(uph) = &cfg.units_per_hook {
                cfg.balancer.set_units_per_hook(uph(st.inv));
            }
            if st.released {
                // The Rollback message itself released this invocation.
                st.released = false;
            } else {
                for (i, &s) in slaves.iter().enumerate() {
                    if st.alive[i] {
                        send(ctx, s, Msg::InvocationStart { invocation: st.inv });
                    }
                }
            }
            for s in 0..n {
                st.done[s] = false;
                st.metrics[s] = 0.0;
            }
            st.inv_started = ctx.now();

            loop {
                if st.settled(&cfg.balancer) {
                    break;
                }
                if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
                    match env.msg {
                        Msg::Status(stm) => {
                            let s = stm.slave;
                            if !st.alive[s] {
                                continue;
                            }
                            st.heard_any[s] = true;
                            st.last_heard[s] = ctx.now();
                            // Epoch fence: a pre-rollback status describes a
                            // distribution that no longer exists.
                            if stm.epoch < st.epoch {
                                sc.recovery.stale_epoch_dropped += 1;
                                continue;
                            }
                            if stm.epoch > st.epoch || stm.invocation > st.inv {
                                return Err(unexpected(
                                    "status from the future",
                                    &Msg::Status(stm),
                                ));
                            }
                            if stm.hook_seq <= st.last_hook_seq[s] {
                                sc.recovery.status_dups_ignored += 1;
                                continue;
                            }
                            st.last_hook_seq[s] = stm.hook_seq;
                            st.done[s] = false;
                            if let Some((seq, _, _)) = &st.unacked_instr[s] {
                                if stm.last_applied_seq >= *seq {
                                    st.unacked_instr[s] = None;
                                }
                            }
                            merge_max(&mut st.sent[s], &stm.sent_to);
                            merge_max(&mut st.recv[s], &stm.received_from);
                            ctx.advance_work(cfg.decision_cpu);
                            let decision = cfg.balancer.on_status(&stm);
                            if cfg.record_timeline {
                                sc.timeline.push(TimelineSample {
                                    t: ctx.now(),
                                    slave: s,
                                    invocation: st.inv,
                                    raw_rate: decision.raw_rate,
                                    adjusted_rate: decision.adjusted_rate,
                                    assigned: decision.owned_after,
                                    hooks_to_skip: decision.instructions.hooks_to_skip,
                                });
                            }
                            st.unacked_instr[s] =
                                Some((decision.instructions.seq, decision.instructions.clone(), 0));
                            send(ctx, slaves[s], Msg::Instructions(decision.instructions));
                        }
                        Msg::InvocationDone {
                            slave,
                            invocation,
                            epoch,
                            sent_to,
                            received_from,
                            metric,
                            restore_seq,
                            ..
                        } => {
                            if !st.alive[slave] {
                                sc.recovery.done_dups_ignored += 1;
                                continue;
                            }
                            st.heard_any[slave] = true;
                            st.last_heard[slave] = ctx.now();
                            // Ack before the epoch fence: the master-channel
                            // watermark is not epoch-scoped, and a stale
                            // report still proves what the slave applied.
                            st.win[slave].ack(restore_seq);
                            if epoch < st.epoch {
                                sc.recovery.stale_epoch_dropped += 1;
                                continue;
                            }
                            if epoch > st.epoch {
                                return Err(ProtocolError::Inconsistent {
                                    detail: format!(
                                        "InvocationDone from epoch {epoch} while in {}",
                                        st.epoch
                                    ),
                                });
                            }
                            merge_max(&mut st.sent[slave], &sent_to);
                            merge_max(&mut st.recv[slave], &received_from);
                            cfg.balancer.ack_transfers(slave, &received_from);
                            if invocation == st.inv {
                                st.done[slave] = true;
                                st.metrics[slave] = metric;
                            } else if invocation < st.inv {
                                sc.recovery.done_dups_ignored += 1;
                                if ctx.now() >= st.next_nudge[slave] {
                                    st.next_nudge[slave] = ctx.now() + tol.nudge;
                                    send(
                                        ctx,
                                        slaves[slave],
                                        Msg::InvocationStart { invocation: st.inv },
                                    );
                                    sc.recovery.invocation_start_resends += 1;
                                    if let Some((_, instr, tries)) = &mut st.unacked_instr[slave] {
                                        if *tries < tol.instr_retries {
                                            *tries += 1;
                                            sc.recovery.instr_resends += 1;
                                            send(
                                                ctx,
                                                slaves[slave],
                                                Msg::Instructions(instr.clone()),
                                            );
                                        }
                                    }
                                }
                            } else {
                                return Err(ProtocolError::Inconsistent {
                                    detail: format!(
                                        "InvocationDone for {invocation} while settling {}",
                                        st.inv
                                    ),
                                });
                            }
                            if st.done[slave]
                                && !st.win[slave].fully_acked()
                                && ctx.now() >= st.next_nudge[slave]
                            {
                                st.next_nudge[slave] = ctx.now() + tol.nudge;
                                for (_, msg) in st.win[slave].unacked() {
                                    send(ctx, slaves[slave], msg.clone());
                                    sc.recovery.restore_resends += 1;
                                }
                            }
                        }
                        Msg::Checkpoint {
                            slave,
                            invocation,
                            units,
                        } => {
                            if st.alive[slave] {
                                st.heard_any[slave] = true;
                                st.last_heard[slave] = ctx.now();
                            }
                            // Checkpoints carry no epoch on purpose: the
                            // state after k invocations is deterministic
                            // regardless of which distribution computed it,
                            // so contributions bank from any epoch.
                            if st.best.as_ref().is_some_and(|(b, _)| invocation <= *b) {
                                continue;
                            }
                            let entry = st.bank.entry(invocation).or_default();
                            for (id, d) in units {
                                entry.insert(id, d);
                            }
                            if entry.len() == n_units {
                                let snap = st.bank.remove(&invocation).expect("entry exists");
                                st.best = Some((invocation, snap));
                                st.bank.retain(|&i, _| i > invocation);
                                sc.recovery.checkpoints_banked += 1;
                            }
                        }
                        // A gather interrupted by a rollback can leave stale
                        // GatherData in flight; harmless here.
                        Msg::GatherData { .. } => {
                            sc.recovery.gather_dups_ignored += 1;
                        }
                        Msg::SlaveError { slave, error } => {
                            if !st.alive[slave] {
                                continue;
                            }
                            if !st.win[slave].fully_acked() {
                                // The error predates a rollback already in
                                // flight to this slave; the rollback will
                                // resolve it.
                                continue;
                            }
                            if !slave_recoverable(&error) {
                                // The slave itself failed: evict it, then
                                // roll the survivors back.
                                st.evict(ctx, slaves, &mut cfg.balancer, slave, sc);
                            }
                            // Either way the run restarts from the newest
                            // complete checkpoint; a recoverable slave
                            // parks quietly until its Rollback arrives.
                            st.rollback(
                                ctx,
                                slaves,
                                &mut cfg.balancer,
                                ck_init,
                                n_units,
                                &tol,
                                sc,
                            )?;
                            continue 'invocations;
                        }
                        other => return Err(unexpected("checkpointed invocation loop", &other)),
                    }
                }

                // Timers.
                let now = ctx.now();
                let mut suspect = None;
                for s in 0..n {
                    if !st.alive[s] {
                        continue;
                    }
                    let settled_s = st.done[s] && st.win[s].fully_acked();
                    let silent = now.saturating_since(st.last_heard[s]);
                    if !settled_s && silent >= tol.suspicion {
                        suspect = Some(s);
                        break;
                    }
                    if !st.heard_any[s] && silent >= tol.nudge && now >= st.next_nudge[s] {
                        st.next_nudge[s] = now + tol.nudge;
                        send(ctx, slaves[s], start_msg(slaves));
                        sc.recovery.start_resends += 1;
                        send(ctx, slaves[s], Msg::InvocationStart { invocation: st.inv });
                        sc.recovery.invocation_start_resends += 1;
                    } else if !st.win[s].fully_acked()
                        && silent >= tol.nudge
                        && now >= st.next_nudge[s]
                    {
                        // A slave parked after a recoverable error is
                        // silent — no heartbeat can event-trigger the
                        // re-send of a lost Rollback, so the timer must.
                        st.next_nudge[s] = now + tol.nudge;
                        for (_, msg) in st.win[s].unacked() {
                            send(ctx, slaves[s], msg.clone());
                            sc.recovery.restore_resends += 1;
                        }
                    }
                }
                if let Some(s) = suspect {
                    st.evict(ctx, slaves, &mut cfg.balancer, s, sc);
                    st.rollback(ctx, slaves, &mut cfg.balancer, ck_init, n_units, &tol, sc)?;
                    continue 'invocations;
                }
                if !st.alive.iter().any(|&a| a) {
                    return Err(ProtocolError::AllSlavesDead);
                }
            }

            // Settled: fold the invocation wall time into the restart-cost
            // estimate and advance.
            let dur = ctx.now().saturating_since(st.inv_started).as_secs_f64();
            st.ema_s = if st.ema_s == 0.0 {
                dur
            } else {
                0.5 * st.ema_s + 0.5 * dur
            };
            let reduced: f64 = st.metrics.iter().sum();
            st.inv += 1;
            if (cfg.converged)(st.inv - 1, reduced) {
                target = st.inv;
            }
        }

        sc.compute_done = ctx.now();

        // Gather with *deferred* acknowledgement: slaves must stay resident
        // until the whole result is in hand, because a death mid-gather
        // forces a rollback and a redo — a slave released early could not
        // participate in it.
        let mut seen: BTreeMap<usize, UnitData> = BTreeMap::new();
        let mut got = vec![false; n];
        let now0 = ctx.now();
        for (s, &sl) in slaves.iter().enumerate() {
            st.next_nudge[s] = now0 + tol.nudge;
            st.last_heard[s] = now0;
            if st.alive[s] {
                send(ctx, sl, Msg::Gather);
            }
        }
        loop {
            if seen.len() == n_units {
                for (s, &sl) in slaves.iter().enumerate() {
                    if st.alive[s] {
                        send(ctx, sl, Msg::GatherAck);
                    }
                }
                sc.result.extend(seen);
                return Ok(());
            }
            if let Some(env) = ctx.recv_deadline(ctx.now() + tol.master_tick) {
                match env.msg {
                    Msg::GatherData {
                        slave,
                        units,
                        fault_stats,
                    } => {
                        if !st.alive[slave] {
                            sc.recovery.gather_dups_ignored += 1;
                            continue;
                        }
                        st.last_heard[slave] = ctx.now();
                        if got[slave] {
                            sc.recovery.gather_dups_ignored += 1;
                            continue;
                        }
                        got[slave] = true;
                        sc.recovery.absorb(&fault_stats);
                        for (id, data) in units {
                            match seen.entry(id) {
                                Entry::Vacant(e) => {
                                    e.insert(data);
                                }
                                Entry::Occupied(_) => sc.recovery.gather_dup_units_dropped += 1,
                            }
                        }
                    }
                    Msg::Status(stm) => {
                        let s = stm.slave;
                        if st.alive[s] {
                            st.last_heard[s] = ctx.now();
                            if !got[s] && ctx.now() >= st.next_nudge[s] {
                                st.next_nudge[s] = ctx.now() + tol.nudge;
                                send(ctx, slaves[s], Msg::Gather);
                                sc.recovery.gather_resends += 1;
                            }
                        }
                    }
                    Msg::InvocationDone {
                        slave, restore_seq, ..
                    } => {
                        if st.alive[slave] {
                            st.last_heard[slave] = ctx.now();
                            st.win[slave].ack(restore_seq);
                            if !got[slave] && ctx.now() >= st.next_nudge[slave] {
                                st.next_nudge[slave] = ctx.now() + tol.nudge;
                                send(ctx, slaves[slave], Msg::Gather);
                                sc.recovery.gather_resends += 1;
                            }
                        }
                    }
                    // A late checkpoint racing the gather is only a
                    // liveness signal now.
                    Msg::Checkpoint { slave, .. } => {
                        if st.alive[slave] {
                            st.last_heard[slave] = ctx.now();
                        }
                    }
                    Msg::SlaveError { slave, error } => {
                        if !st.alive[slave] || !st.win[slave].fully_acked() {
                            continue;
                        }
                        if !slave_recoverable(&error) {
                            st.evict(ctx, slaves, &mut cfg.balancer, slave, sc);
                        }
                        st.rollback(ctx, slaves, &mut cfg.balancer, ck_init, n_units, &tol, sc)?;
                        continue 'run;
                    }
                    other => return Err(unexpected("checkpointed gather", &other)),
                }
            }
            let now = ctx.now();
            let mut dead_in_gather = None;
            for s in 0..n {
                if !st.alive[s] || got[s] {
                    continue;
                }
                let silent = now.saturating_since(st.last_heard[s]);
                if silent >= tol.suspicion {
                    dead_in_gather = Some(s);
                    break;
                }
                if silent >= tol.nudge && now >= st.next_nudge[s] {
                    st.next_nudge[s] = now + tol.nudge;
                    if st.win[s].fully_acked() {
                        send(ctx, slaves[s], Msg::Gather);
                        sc.recovery.gather_resends += 1;
                    } else {
                        // A parked slave still waiting for its Rollback.
                        for (_, msg) in st.win[s].unacked() {
                            send(ctx, slaves[s], msg.clone());
                            sc.recovery.restore_resends += 1;
                        }
                    }
                }
            }
            if let Some(s) = dead_in_gather {
                // Death mid-gather: its un-gathered state is gone, so roll
                // the survivors back and redo from the newest checkpoint.
                st.evict(ctx, slaves, &mut cfg.balancer, s, sc);
                st.rollback(ctx, slaves, &mut cfg.balancer, ck_init, n_units, &tol, sc)?;
                continue 'run;
            }
            if !st.alive.iter().any(|&a| a) {
                return Err(ProtocolError::AllSlavesDead);
            }
        }
    }
}
