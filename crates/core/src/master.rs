//! The master process: central load balancer + program control (§3.1, §4.1).
//!
//! The master mimics the application's outer loop structure so that it
//! executes the same number of balancing phases as the slaves and the
//! program terminates properly: one *invocation* per execution of the
//! distributed loop (MM repetition, SOR sweep, LU step). Within an
//! invocation it answers every slave status with instructions from the
//! [`Balancer`], and it releases the next invocation only when every slave
//! is idle, all expected work units are accounted for, and every issued
//! work transfer has been received (settlement) — so no unit can be lost
//! or skipped.

use crate::balancer::{Balancer, BalancerStats};
use crate::frequency::PeriodBounds;
use crate::msg::{Msg, UnitData};
use dlb_sim::{ActorCtx, ActorId, CpuWork, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// One row of the master's balancing log — the raw material for the
/// paper's Figure 9 (raw rate, adjusted rate, work assignment over time).
#[derive(Clone, Debug)]
pub struct TimelineSample {
    pub t: SimTime,
    pub slave: usize,
    pub invocation: u64,
    pub raw_rate: f64,
    pub adjusted_rate: f64,
    /// Units assigned to this slave after the decision.
    pub assigned: u64,
    pub hooks_to_skip: u64,
}

/// Everything the master hands back to the driver.
#[derive(Debug, Default)]
pub struct MasterOutcome {
    /// Gathered unit data, unordered (the driver sorts by id).
    pub result: Vec<(usize, UnitData)>,
    pub timeline: Vec<TimelineSample>,
    pub stats: BalancerStats,
    pub bounds: Option<PeriodBounds>,
    /// Virtual time when the last invocation settled (before gather).
    pub compute_done: SimTime,
}

/// Master configuration.
pub struct MasterConfig {
    pub balancer: Balancer,
    pub invocations: u64,
    /// Expected work-unit completions per invocation (LU shrinks).
    pub expected_units: Box<dyn Fn(u64) -> u64 + Send>,
    /// Per-invocation expected units-per-hook override (LU's units shrink;
    /// `None` keeps the initial value).
    pub units_per_hook: Option<Box<dyn Fn(u64) -> f64 + Send>>,
    /// CPU charged on the master per status processed.
    pub decision_cpu: CpuWork,
    pub record_timeline: bool,
    /// Data-dependent WHILE termination (§4.1): called with the invocation
    /// just settled and the reduced convergence metric; `true` ends the
    /// program before the invocation upper bound.
    pub converged: Box<dyn Fn(u64, f64) -> bool + Send>,
}

/// The master actor body. `slaves` in slave-index order; `assignment` is
/// the initial block distribution; the outcome lands in `out`.
pub fn run_master(
    ctx: ActorCtx<Msg>,
    mut cfg: MasterConfig,
    slaves: Vec<ActorId>,
    assignment: Vec<(usize, usize)>,
    block_rows: u64,
    out: Arc<Mutex<MasterOutcome>>,
) {
    let n = slaves.len();
    let send = |ctx: &ActorCtx<Msg>, to: ActorId, msg: Msg| {
        let bytes = msg.wire_bytes();
        ctx.send(to, msg, bytes);
    };

    // Initial distribution.
    for &s in &slaves {
        send(
            &ctx,
            s,
            Msg::Start {
                slaves: slaves.clone(),
                assignment: assignment.clone(),
                block_rows,
            },
        );
    }

    let mut timeline = Vec::new();
    let mut sent_ctr = vec![0u64; n];
    let mut recv_ctr = vec![0u64; n];

    let mut inv = 0;
    while inv < cfg.invocations {
        cfg.balancer
            .set_remaining_invocations(cfg.invocations - inv);
        if let Some(uph) = &cfg.units_per_hook {
            cfg.balancer.set_units_per_hook(uph(inv));
        }
        for &s in &slaves {
            send(&ctx, s, Msg::InvocationStart { invocation: inv });
        }
        let expected = (cfg.expected_units)(inv);
        let mut done_sum = 0u64;
        let mut idle = vec![false; n];
        let mut metrics = vec![0.0f64; n];

        loop {
            // Settlement check.
            if idle.iter().all(|&b| b)
                && done_sum >= expected
                && sent_ctr.iter().sum::<u64>() == recv_ctr.iter().sum::<u64>()
                && cfg.balancer.outstanding_orders() == 0
            {
                assert_eq!(
                    done_sum, expected,
                    "invocation {inv}: more units completed than exist"
                );
                break;
            }
            let env = ctx.recv();
            if std::env::var_os("DLB_TRACE").is_some() {
                eprintln!(
                    "[master t={} inv={inv}] got {:?} (done {done_sum}/{expected}, idle {idle:?}, sent {sent_ctr:?}, recv {recv_ctr:?})",
                    ctx.now(),
                    match &env.msg {
                        Msg::Status(s) => format!("Status(slave {}, delta {}, active {})", s.slave, s.units_done_delta, s.active_units),
                        other => format!("{other:?}").chars().take(60).collect::<String>(),
                    }
                );
            }
            match env.msg {
                Msg::Status(st) => {
                    assert!(
                        st.invocation <= inv,
                        "status from the future: {} > {inv}",
                        st.invocation
                    );
                    if st.invocation == inv {
                        done_sum += st.units_done_delta;
                    }
                    sent_ctr[st.slave] = sent_ctr[st.slave].max(st.transfers_sent);
                    recv_ctr[st.slave] =
                        recv_ctr[st.slave].max(st.received_from.iter().sum::<u64>());
                    idle[st.slave] = false;
                    ctx.advance_work(cfg.decision_cpu);
                    let decision = cfg.balancer.on_status(&st);
                    if cfg.record_timeline {
                        timeline.push(TimelineSample {
                            t: ctx.now(),
                            slave: st.slave,
                            invocation: inv,
                            raw_rate: decision.raw_rate,
                            adjusted_rate: decision.adjusted_rate,
                            assigned: decision.owned_after,
                            hooks_to_skip: decision.instructions.hooks_to_skip,
                        });
                    }
                    send(
                        &ctx,
                        slaves[st.slave],
                        Msg::Instructions(decision.instructions),
                    );
                }
                Msg::InvocationDone {
                    slave,
                    invocation,
                    transfers_sent,
                    received_from,
                    metric,
                } => {
                    assert_eq!(invocation, inv, "stale InvocationDone");
                    idle[slave] = true;
                    metrics[slave] = metric;
                    sent_ctr[slave] = sent_ctr[slave].max(transfers_sent);
                    recv_ctr[slave] =
                        recv_ctr[slave].max(received_from.iter().sum::<u64>());
                    cfg.balancer.ack_transfers(slave, &received_from);
                }
                other => panic!("master: unexpected message {other:?}"),
            }
        }
        let reduced: f64 = metrics.iter().sum();
        inv += 1;
        if (cfg.converged)(inv - 1, reduced) {
            break;
        }
    }

    let compute_done = ctx.now();

    // Gather results.
    for &s in &slaves {
        send(&ctx, s, Msg::Gather);
    }
    let mut result = Vec::new();
    let mut got = 0;
    while got < n {
        let env = ctx.recv();
        match env.msg {
            Msg::GatherData { units, .. } => {
                result.extend(units);
                got += 1;
            }
            // Final statuses racing the gather are harmless.
            Msg::Status(_) | Msg::InvocationDone { .. } => {}
            other => panic!("master at gather: unexpected {other:?}"),
        }
    }

    let mut o = out.lock();
    o.result = result;
    o.timeline = timeline;
    o.stats = cfg.balancer.stats();
    o.bounds = Some(cfg.balancer.period_bounds());
    o.compute_done = compute_done;
}
