//! Slave engine for pipelined distributed loops (SOR-shaped programs).
//!
//! Columns are block-distributed; each sweep updates all interior rows in
//! strip-mined blocks (§4.4). Within a block the slave computes its columns
//! left-to-right; the left halo of its first column arrives from the left
//! neighbour as a [`Msg::Boundary`] tagged `(sweep, block, column-id)`, the
//! right halo of its last column is the right neighbour's previous-sweep
//! first column (exchanged once per sweep as [`Msg::SweepOld`], §2.1's
//! "communication outside the loop").
//!
//! Work movement is adjacent-only and mid-sweep (§4.5): columns received
//! from the **left** are one or more pipeline phases *ahead* and are set
//! aside until the local phase catches up; columns received from the
//! **right** are *behind* and are caught up on arrival, using the
//! sweep-start snapshots carried in the transfer as their right halos. The
//! result is bit-identical to sequential execution no matter when moves
//! happen — the property tests in `tests/` rely on that.
//!
//! The fault-tolerant life cycle (checkpoint cadence, rollback, snapshot
//! speculation, rescue, gather) lives in [`crate::session::slave`]; this
//! module supplies the pipelined [`DistributionStrategy`]: the sweep body,
//! set-aside/catch-up transfer integration, neighbour derivation on
//! rollback, and the sequential one-sweep snapshot advance used to race a
//! silent suspect. Boundary and sweep-old values are pure functions of
//! sweep-start state, so messages surviving from before a rollback are
//! bit-identical to their replayed versions and need no fencing; transfers
//! and balancing instructions are epoch-fenced.

use crate::balancer::InteractionMode;
use crate::error::{FaultToleranceConfig, ProtocolError};
use crate::kernels::PipelinedKernel;
use crate::msg::{Edge, MoveOrder, MovedUnit, Msg, TransferMsg, UnitData};
use crate::session::slave as session_slave;
use crate::session::strategy::DistributionStrategy;
use crate::slave_common::{recv_start, RollbackInfo, SlaveCommon};
use dlb_sim::{ActorCtx, ActorId, CpuWork};
use std::ops::Range;
use std::sync::Arc;

/// One local column and its pipeline state.
struct PCol {
    /// Unit id (interior column index; global column id + 1).
    id: usize,
    data: Vec<f64>,
    /// Sweep-start snapshot (right halo for the column to the left).
    old: Vec<f64>,
    /// Blocks completed this sweep.
    phase: u64,
}

/// Static configuration for one pipelined-engine slave.
pub struct PipelinedSlave {
    pub idx: usize,
    pub master: ActorId,
    pub mode: InteractionMode,
    pub hook_check_cpu: CpuWork,
    pub kernel: Arc<dyn PipelinedKernel>,
    pub ft: Option<FaultToleranceConfig>,
    /// Master-failover kit (fault mode): lets this slave rebuild the master
    /// role in place if it wins a deputy election.
    pub takeover: Option<Arc<crate::master::TakeoverKit>>,
    /// Latecomer start time: when set, this slave starts with no columns,
    /// idles until the given instant, then joins the running pool via the
    /// [`Msg::Join`] handshake.
    pub join_at: Option<dlb_sim::SimTime>,
}

struct State {
    idx: usize,
    cols: Vec<PCol>,
    /// Transfers from the left whose effective phase is still ahead of us:
    /// `(effective_block, columns)`, incorporated when we reach that phase.
    set_aside: Vec<(u64, Vec<PCol>)>,
    /// Previous-sweep values of the column right of our last column.
    right_old: Vec<f64>,
    left_wall: Vec<f64>,
    right_wall: Vec<f64>,
    block_rows: u64,
    nblocks: u64,
    col_len: usize,
    /// Scratch full-length buffer holding the received left halo.
    left_halo: Vec<f64>,
    sweep: u64,
    /// Pipeline neighbours: the adjacent *live* slaves (by slave index),
    /// derived from the survivor list at start-up and on every rollback.
    left: Option<usize>,
    right: Option<usize>,
}

impl State {
    fn interior_rows(&self) -> usize {
        self.col_len - 2
    }

    fn rows_of_block(&self, b: u64) -> Range<usize> {
        let start = 1 + (b * self.block_rows) as usize;
        let end = (start + self.block_rows as usize).min(1 + self.interior_rows());
        start..end
    }

    fn first_id(&self) -> usize {
        self.cols.first().expect("nonempty").id
    }

    fn last_id(&self) -> usize {
        self.cols.last().expect("nonempty").id
    }

    fn active_units(&self) -> u64 {
        (self.cols.len() + self.set_aside.iter().map(|(_, v)| v.len()).sum::<usize>()) as u64
    }

    fn check_contiguous(&self) -> Result<(), ProtocolError> {
        for w in self.cols.windows(2) {
            if w[0].id + 1 != w[1].id {
                return Err(ProtocolError::Inconsistent {
                    detail: format!(
                        "slave {}: column block not contiguous ({} then {})",
                        self.idx, w[0].id, w[1].id
                    ),
                });
            }
        }
        Ok(())
    }

    fn inconsistent(&self, detail: String) -> ProtocolError {
        ProtocolError::Inconsistent {
            detail: format!("slave {}: {detail}", self.idx),
        }
    }
}

impl PipelinedSlave {
    /// Actor body. Never panics on protocol trouble: fatal errors are
    /// shipped to the master as [`Msg::SlaveError`].
    pub fn run(self, ctx: ActorCtx<Msg>) {
        let (idx, master) = (self.idx, self.master);
        match self.run_inner(&ctx) {
            Ok(())
            | Err(ProtocolError::Aborted)
            | Err(ProtocolError::Evicted { .. })
            | Err(ProtocolError::JoinRefused { .. }) => {}
            Err(error) => {
                let msg = Msg::SlaveError { slave: idx, error };
                let bytes = msg.wire_bytes();
                ctx.send(master, msg, bytes);
            }
        }
    }

    fn run_inner(self, ctx: &ActorCtx<Msg>) -> Result<(), ProtocolError> {
        let (slaves, assignment, block_rows) = recv_start(ctx, self.idx, self.ft.as_ref())?;
        // Pipeline neighbours skip deferred (latecomer) slots — an empty
        // range marks a slave that is not part of the pool yet.
        let live: Vec<usize> = assignment
            .iter()
            .enumerate()
            .filter(|(_, r)| r.0 < r.1)
            .map(|(i, _)| i)
            .collect();
        let pos = live.iter().position(|&s| s == self.idx);
        let range = assignment[self.idx];
        let kernel = self.kernel;
        let mut common = SlaveCommon::new(
            self.idx,
            self.master,
            slaves,
            self.mode,
            self.hook_check_cpu,
            self.ft.clone(),
            ctx.now(),
        );
        // Checkpointed engines measure replica freshness by the held
        // snapshot: a takeover restarts from it.
        common.enable_deputy(true, ctx.now());
        let col_len = kernel.col_len();
        let interior = (col_len - 2) as u64;
        let nblocks = interior.div_ceil(block_rows.max(1));
        let st = State {
            idx: self.idx,
            cols: (range.0..range.1)
                .map(|i| PCol {
                    id: i,
                    data: kernel.init_unit(i),
                    old: Vec::new(),
                    phase: 0,
                })
                .collect(),
            set_aside: Vec::new(),
            right_old: Vec::new(),
            left_wall: kernel.left_wall(),
            right_wall: kernel.right_wall(),
            block_rows: block_rows.max(1),
            nblocks,
            col_len,
            left_halo: vec![0.0; col_len],
            sweep: 0,
            left: pos.and_then(|p| p.checked_sub(1)).map(|p| live[p]),
            right: pos.and_then(|p| live.get(p + 1).copied()),
        };
        if st.cols.is_empty() && self.join_at.is_none() {
            return Err(st.inconsistent("started with zero columns".into()));
        }
        let mut strategy = PipelinedStrategy { st, kernel };
        if let Some(at) = self.join_at {
            // Latecomer: the parked Start taught us the topology; idle to
            // the join instant, then announce. The admission rollback lands
            // in `pending_rollback` and is adopted by the session runner.
            common.park_then_join(ctx, at)?;
        }
        loop {
            match session_slave::run(ctx, &mut common, &mut strategy) {
                Err(ProtocolError::Elected { .. }) => {
                    // This deputy won the master election: drop the slave role
                    // and rebuild the master in place from the replicated seed.
                    let seed =
                        common
                            .takeover
                            .take()
                            .ok_or_else(|| ProtocolError::Inconsistent {
                                detail: format!(
                                    "slave {}: elected with no takeover seed",
                                    common.idx
                                ),
                            })?;
                    let kit =
                        self.takeover
                            .as_deref()
                            .ok_or_else(|| ProtocolError::Inconsistent {
                                detail: format!(
                                    "slave {}: elected with no takeover kit",
                                    common.idx
                                ),
                            })?;
                    return crate::master::run_takeover(ctx, kit, seed, common.idx);
                }
                Err(ProtocolError::Evicted { .. })
                    if self.ft.as_ref().is_some_and(|ft| ft.rejoin_attempts > 0) =>
                {
                    // Eviction is no longer the end of the line: come back
                    // as a fresh incarnation and ask to be re-admitted. The
                    // rebuilt common starts with clean channel/epoch state;
                    // the old life's windows and clocks die with it.
                    let incarnation = common.incarnation + 1;
                    let (master, slaves) = (common.master, common.slaves.clone());
                    common = SlaveCommon::new(
                        self.idx,
                        master,
                        slaves,
                        self.mode,
                        self.hook_check_cpu,
                        self.ft.clone(),
                        ctx.now(),
                    );
                    common.incarnation = incarnation;
                    common.enable_deputy(true, ctx.now());
                    common.join_handshake(ctx)?;
                }
                r => return r,
            }
        }
    }
}

/// The pipelined distribution pattern plugged into the shared checkpointed
/// slave runner.
struct PipelinedStrategy {
    st: State,
    kernel: Arc<dyn PipelinedKernel>,
}

impl DistributionStrategy for PipelinedStrategy {
    fn invocations(&self) -> u64 {
        self.kernel.sweeps()
    }

    fn first_release_context(&self) -> &'static str {
        "first sweep start"
    }

    fn barrier_context(&self) -> &'static str {
        "sweep barrier"
    }

    fn recoverable(&self, e: &ProtocolError) -> bool {
        matches!(
            e,
            ProtocolError::Timeout { .. }
                | ProtocolError::MissingPivot { .. }
                | ProtocolError::NonNeighborTransfer { .. }
                | ProtocolError::Inconsistent { .. }
                | ProtocolError::UnexpectedMessage { .. }
        )
    }

    fn run_invocation(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        inv: u64,
    ) -> Result<(), ProtocolError> {
        let st = &mut self.st;
        st.sweep = inv;
        sweep_body(ctx, common, st, &*self.kernel)?;
        // Sweep complete: absorb queued transfers (their catch-up work
        // counts toward this sweep), then flush status and execute any
        // sweep-end moves.
        let nblocks = st.nblocks;
        drain_transfers(ctx, common, st, &*self.kernel, nblocks)?;
        let moves = common.fire(ctx, inv, st.active_units())?;
        execute_moves(ctx, common, st, moves, nblocks)?;
        purge_stale(ctx, inv);
        Ok(())
    }

    fn on_barrier_transfer(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        inv: u64,
        t: TransferMsg,
    ) -> Result<(), ProtocolError> {
        let st = &mut self.st;
        let nblocks = st.nblocks;
        accept_transfer(ctx, common, st, &*self.kernel, t, nblocks)?;
        let moves = common.fire(ctx, inv, st.active_units())?;
        execute_moves(ctx, common, st, moves, nblocks)
    }

    fn on_barrier_moves(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        _inv: u64,
        moves: Vec<MoveOrder>,
    ) -> Result<(), ProtocolError> {
        let nblocks = self.st.nblocks;
        execute_moves(ctx, common, &mut self.st, moves, nblocks)
    }

    fn owned_ids(&self) -> Vec<usize> {
        self.st.cols.iter().map(|c| c.id).collect()
    }

    fn checkpoint_units(&self) -> Vec<(usize, UnitData)> {
        self.st
            .cols
            .iter()
            .map(|c| (c.id, vec![c.data.clone()]))
            .collect()
    }

    fn gather_units(&self) -> Result<Vec<(usize, UnitData)>, ProtocolError> {
        if !self.st.set_aside.is_empty() {
            return Err(self.st.inconsistent("set-aside columns at gather".into()));
        }
        Ok(self.checkpoint_units())
    }

    /// Discard all engine state, install the re-partitioned columns, derive
    /// neighbours from the survivor list.
    fn restore(
        &mut self,
        common: &mut SlaveCommon,
        rb: RollbackInfo,
    ) -> Result<u64, ProtocolError> {
        let st = &mut self.st;
        let pos = rb
            .survivors
            .iter()
            .position(|&s| s == common.idx)
            .ok_or(ProtocolError::Evicted { slave: common.idx })?;
        st.left = pos.checked_sub(1).map(|p| rb.survivors[p]);
        st.right = rb.survivors.get(pos + 1).copied();
        let mut units = rb.units;
        units.sort_by_key(|(id, _)| *id);
        st.cols = units
            .into_iter()
            .map(|(id, mut d)| PCol {
                id,
                data: if d.is_empty() {
                    Vec::new()
                } else {
                    d.swap_remove(0)
                },
                old: Vec::new(),
                phase: 0,
            })
            .collect();
        if st.cols.is_empty() {
            return Err(st.inconsistent("rolled back to zero columns".into()));
        }
        st.check_contiguous()?;
        st.set_aside.clear();
        st.right_old = Vec::new();
        st.sweep = rb.invocation;
        Ok(rb.invocation)
    }

    /// Run sweep `invocation` over the whole banked grid, sequentially and
    /// without any communication: the left halo of the global first column
    /// is the wall, every other left halo is the *new* value of the column
    /// to the left (already updated this sweep), and every right halo is
    /// the sweep-start snapshot — exactly the distributed dataflow, so the
    /// speculative state is bit-identical to what the suspect would have
    /// produced.
    fn advance_snapshot(
        &mut self,
        ctx: &ActorCtx<Msg>,
        _common: &mut SlaveCommon,
        _invocation: u64,
        units: Vec<(usize, UnitData)>,
    ) -> Result<Vec<(usize, UnitData)>, ProtocolError> {
        let st = &self.st;
        let kernel = &*self.kernel;
        let mut cols: Vec<(usize, Vec<f64>)> = units
            .into_iter()
            .map(|(id, mut d)| {
                (
                    id,
                    if d.is_empty() {
                        Vec::new()
                    } else {
                        d.swap_remove(0)
                    },
                )
            })
            .collect();
        cols.sort_by_key(|(id, _)| *id);
        let olds: Vec<Vec<f64>> = cols.iter().map(|(_, d)| d.clone()).collect();
        for b in 0..st.nblocks {
            let rows = st.rows_of_block(b);
            let cost = kernel.elem_cost() * rows.len() as u64;
            for j in 0..cols.len() {
                ctx.advance_work(cost);
                let (left_part, rest) = cols.split_at_mut(j);
                let (me, _) = rest.split_first_mut().expect("j in range");
                let left: &[f64] = match left_part.last() {
                    Some((_, l)) => l,
                    None => &st.left_wall,
                };
                let right: &[f64] = match olds.get(j + 1) {
                    Some(o) => o,
                    None => &st.right_wall,
                };
                kernel.compute_block(&mut me.1, left, right, rows.clone());
            }
        }
        Ok(cols.into_iter().map(|(id, d)| (id, vec![d])).collect())
    }
}

fn send_boundary(ctx: &ActorCtx<Msg>, common: &SlaveCommon, st: &State, b: u64) {
    let Some(right) = st.right else {
        return;
    };
    let last = st.cols.last().expect("nonempty");
    let rows = st.rows_of_block(b);
    let msg = Msg::Boundary {
        sweep: st.sweep,
        block: b,
        col: last.id,
        values: last.data[rows].to_vec(),
    };
    common.send_slave(ctx, right, msg);
}

/// Fetch the left halo for block `b` into `st.left_halo`.
///
/// The wait must also service incoming [`Msg::Transfer`]s: if the left
/// neighbour has just shipped us its boundary columns (effective at this
/// very block), the halo we were waiting for *is inside the transfer* —
/// the columns become local, our first column changes, and we start
/// waiting for the neighbour's new last column instead. Blocking on the
/// boundary alone would deadlock with the transfer sitting in our own
/// mailbox.
fn fetch_left_halo(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    b: u64,
) -> Result<(), ProtocolError> {
    loop {
        if st.left.is_none() {
            st.left_halo.copy_from_slice(&st.left_wall);
            return Ok(());
        }
        let want_col = st.first_id() - 1;
        let want_sweep = st.sweep;
        let env = common.recv_blocking(
            ctx,
            |m| {
                matches!(m, Msg::Boundary { sweep, block, col, .. }
                    if *sweep == want_sweep && *block == b && *col == want_col)
                    || matches!(m, Msg::Transfer(_))
            },
            "left halo boundary",
        )?;
        match env.msg {
            Msg::Boundary { values, .. } => {
                let rows = st.rows_of_block(b);
                if values.len() != rows.len() {
                    return Err(st.inconsistent(format!(
                        "boundary segment length {} != block height {}",
                        values.len(),
                        rows.len()
                    )));
                }
                st.left_halo[rows].copy_from_slice(&values);
                return Ok(());
            }
            Msg::Transfer(t) => {
                // We have completed `b` blocks at this point; a transfer
                // effective exactly here merges immediately and changes the
                // wanted halo column.
                accept_transfer(ctx, common, st, kernel, t, b)?;
                incorporate_set_asides(st, b)?;
            }
            _ => unreachable!(),
        }
    }
}

/// Compute block `b` for columns `lo..` of `st.cols` (normally all of
/// them; catch-up uses a sub-range starting at the appended columns).
fn compute_block_cols(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    b: u64,
    from_ci: usize,
    right_old_override: Option<&[f64]>,
) {
    let rows = st.rows_of_block(b);
    let cost = kernel.elem_cost() * rows.len() as u64;
    for ci in from_ci..st.cols.len() {
        common.compute(ctx, cost);
        let (left_part, rest) = st.cols.split_at_mut(ci);
        let (me, right_part) = rest.split_first_mut().expect("ci in range");
        let left: &[f64] = match left_part.last() {
            Some(l) => &l.data,
            None => &st.left_halo,
        };
        let right: &[f64] = match right_part.first() {
            Some(r) => &r.old,
            None => right_old_override.unwrap_or(if st.right_old.is_empty() {
                &st.right_wall
            } else {
                &st.right_old
            }),
        };
        kernel.compute_block(&mut me.data, left, right, rows.clone());
        me.phase = b + 1;
        // Work is counted in column-rows: blocks can have unequal heights
        // (the last block is a remainder), and uniform per-block counting
        // would skew sweep-end rate samples.
        common.record_done(rows.len() as u64);
    }
}

fn sweep_body(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
) -> Result<(), ProtocolError> {
    // Sweep start: snapshot old values, exchange halo columns (§2.1's
    // communication outside the distributed loop).
    for c in &mut st.cols {
        c.old = c.data.clone();
        c.phase = 0;
    }
    if let Some(left) = st.left {
        let msg = Msg::SweepOld {
            sweep: st.sweep,
            col: st.cols[0].id,
            values: st.cols[0].old.clone(),
        };
        common.send_slave(ctx, left, msg);
    }
    st.right_old = if st.right.is_none() {
        st.right_wall.clone()
    } else {
        let want = st.sweep;
        let want_col = st.last_id() + 1;
        let env = common.recv_blocking(
            ctx,
            |m| matches!(m, Msg::SweepOld { sweep, col, .. } if *sweep == want && *col == want_col),
            "right neighbour sweep-old column",
        )?;
        match env.msg {
            Msg::SweepOld { values, .. } => values,
            _ => unreachable!(),
        }
    };

    for b in 0..st.nblocks {
        incorporate_set_asides(st, b)?;
        fetch_left_halo(ctx, common, st, kernel, b)?;
        compute_block_cols(ctx, common, st, kernel, b, 0, None);
        send_boundary(ctx, common, st, b);
        let moves = common.hook(ctx, st.sweep, st.active_units())?;
        execute_moves(ctx, common, st, moves, b + 1)?;
        drain_transfers(ctx, common, st, kernel, b + 1)?;
    }
    incorporate_set_asides(st, st.nblocks)?;
    st.check_contiguous()
}

/// Prepend set-aside columns whose effective phase equals `phase`.
fn incorporate_set_asides(st: &mut State, phase: u64) -> Result<(), ProtocolError> {
    let mut i = 0;
    while i < st.set_aside.len() {
        if st.set_aside[i].0 == phase {
            let (_, mut cols) = st.set_aside.remove(i);
            let last = cols.last().expect("nonempty transfer");
            if last.id + 1 != st.first_id() {
                return Err(st.inconsistent(format!(
                    "set-aside columns ending at {} do not abut block starting at {}",
                    last.id,
                    st.first_id()
                )));
            }
            if let Some(c) = cols.iter().find(|c| c.phase != phase) {
                return Err(st.inconsistent(format!(
                    "set-aside column {} at phase {} incorporated at phase {phase}",
                    c.id, c.phase
                )));
            }
            cols.append(&mut st.cols);
            st.cols = cols;
        } else {
            i += 1;
        }
    }
    Ok(())
}

fn execute_moves(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    moves: Vec<MoveOrder>,
    phase: u64,
) -> Result<(), ProtocolError> {
    if moves.is_empty() {
        return Ok(());
    }
    let t0 = ctx.now();
    let mut total = 0u64;
    for order in moves {
        if common.dead[order.to] {
            // The peer was evicted after the master planned this move; the
            // next rollback (or re-plan) supersedes it.
            continue;
        }
        let is_right = st.right == Some(order.to);
        let is_left = st.left == Some(order.to);
        if !is_right && !is_left {
            return Err(st.inconsistent(format!(
                "pipelined movement must target a pipeline neighbour (got {} -> {})",
                common.idx, order.to
            )));
        }
        // Columns still set aside cannot be re-moved, and while any are
        // pending our low edge is not the true boundary — shipping resident
        // low columns would leave a gap below them. Skip such orders (an
        // empty transfer keeps the accounting settled; the master will
        // re-plan).
        let take = if order.edge == Edge::Low && !st.set_aside.is_empty() {
            0
        } else {
            (order.count as usize).min(st.cols.len().saturating_sub(1))
        };
        let (units, right_old) = match order.edge {
            Edge::High => {
                if !is_right {
                    return Err(st.inconsistent(format!(
                        "high-edge move must target the right neighbour (got {})",
                        order.to
                    )));
                }
                let split = st.cols.len() - take;
                let moved: Vec<PCol> = st.cols.split_off(split);
                if let Some(first) = moved.first() {
                    // Our new right halo: the departing first column's
                    // sweep-start snapshot (we retain a copy).
                    st.right_old = first.old.clone();
                }
                (moved, None)
            }
            Edge::Low => {
                if !is_left {
                    return Err(st.inconsistent(format!(
                        "low-edge move must target the left neighbour (got {})",
                        order.to
                    )));
                }
                let moved: Vec<PCol> = st.cols.drain(0..take).collect();
                let ro = st.cols.first().map(|c| c.old.clone());
                (moved, ro)
            }
        };
        total += units.len() as u64;
        if std::env::var_os("DLB_TRACE").is_some() {
            eprintln!(
                "[slave{} t={}] move {} cols {:?} -> slave{} at phase {phase} sweep {}",
                common.idx,
                ctx.now(),
                units.len(),
                units.iter().map(|c| c.id).collect::<Vec<_>>(),
                order.to,
                st.sweep,
            );
        }
        if let Some(c) = units.iter().find(|c| c.phase != phase) {
            return Err(st.inconsistent(format!(
                "moved column {} at phase {} shipped at phase {phase}",
                c.id, c.phase
            )));
        }
        let moved_units: Vec<MovedUnit> = units
            .into_iter()
            .map(|c| MovedUnit {
                id: c.id,
                done: false,
                updated_through: c.phase,
                data: vec![c.data],
                old: Some(c.old),
            })
            .collect();
        let from = common.idx;
        let sweep = st.sweep;
        common.send_transfer(ctx, order.to, |_| TransferMsg {
            from,
            seq: 0,
            epoch: 0,
            invocation: sweep,
            effective_block: phase,
            units: moved_units,
            right_old,
        });
    }
    common.move_cost_sample = Some((total, ctx.now().saturating_since(t0)));
    Ok(())
}

/// Process queued channel control traffic and transfers. `my_phase` is the
/// number of blocks we have completed this sweep.
fn drain_transfers(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    my_phase: u64,
) -> Result<(), ProtocolError> {
    common.drain_control(ctx)?;
    while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Transfer(_))) {
        if let Msg::Transfer(t) = env.msg {
            accept_transfer(ctx, common, st, kernel, t, my_phase)?;
        }
    }
    Ok(())
}

fn accept_transfer(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    t: TransferMsg,
    my_phase: u64,
) -> Result<(), ProtocolError> {
    if !common.accept_transfer(ctx, &t) {
        return Ok(()); // stale epoch, dead sender, or duplicate — fenced
    }
    if std::env::var_os("DLB_TRACE").is_some() {
        eprintln!(
            "[slave{} t={}] accept transfer from {} eff {} units {:?} (my_phase {my_phase}, sweep {})",
            st.idx, ctx.now(), t.from, t.effective_block,
            t.units.iter().map(|u| u.id).collect::<Vec<_>>(), st.sweep,
        );
    }
    let from_right = st.right == Some(t.from);
    let from_left = st.left == Some(t.from);
    if !from_right && !from_left {
        return Err(ProtocolError::NonNeighborTransfer {
            from: t.from,
            to: st.idx,
            sweep: st.sweep,
        });
    }
    if t.invocation != st.sweep {
        return Err(st.inconsistent(format!(
            "transfer for sweep {} accepted in sweep {}",
            t.invocation, st.sweep
        )));
    }
    let mut cols: Vec<PCol> = t
        .units
        .into_iter()
        .map(|mu| {
            let mut data: UnitData = mu.data;
            PCol {
                id: mu.id,
                data: if data.is_empty() {
                    Vec::new()
                } else {
                    data.swap_remove(0)
                },
                old: mu.old.unwrap_or_default(),
                phase: mu.updated_through,
            }
        })
        .collect();
    if cols.is_empty() {
        return Ok(());
    }
    if from_right {
        // From the right: columns are behind; catch them up (§4.5).
        let eff = t.effective_block;
        if eff > my_phase {
            return Err(st.inconsistent(format!(
                "right transfer effective at phase {eff} ahead of local phase {my_phase}"
            )));
        }
        if cols.first().expect("nonempty").id != st.last_id() + 1 {
            return Err(st.inconsistent(format!(
                "right transfer starting at {} does not abut block ending at {}",
                cols.first().expect("nonempty").id,
                st.last_id()
            )));
        }
        let from_ci = st.cols.len();
        st.cols.append(&mut cols);
        let right_old = t.right_old.ok_or_else(|| {
            st.inconsistent("right transfer missing its right-halo snapshot".into())
        })?;
        for b in eff..my_phase {
            compute_block_cols(ctx, common, st, kernel, b, from_ci, Some(&right_old));
            // The sender's remaining columns need our (new) last column's
            // values for the blocks we just caught up.
            send_boundary(ctx, common, st, b);
        }
        st.right_old = right_old;
    } else {
        // From the left: columns are ahead; set aside until we catch up.
        let eff = t.effective_block;
        if eff < my_phase {
            return Err(st.inconsistent(format!(
                "left transfer effective at phase {eff} behind local phase {my_phase}"
            )));
        }
        if eff == my_phase {
            let mut tmp = std::mem::take(&mut st.cols);
            cols.append(&mut tmp);
            st.cols = cols;
            st.check_contiguous()?;
        } else {
            st.set_aside.push((eff, cols));
        }
    }
    Ok(())
}

/// Drain now-useless messages of the finished sweep (boundaries made
/// redundant by mid-sweep moves). Halo values are pure functions of
/// sweep-start state, so any stragglers from before a rollback are
/// bit-identical to their replayed versions — no epoch fencing needed.
fn purge_stale(ctx: &ActorCtx<Msg>, sweep: u64) {
    while ctx
        .try_recv_match(|m| {
            matches!(m, Msg::Boundary { sweep: s, .. } if *s == sweep)
                || matches!(m, Msg::SweepOld { sweep: s, .. } if *s == sweep)
        })
        .is_some()
    {}
}
