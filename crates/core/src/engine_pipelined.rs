//! Slave engine for pipelined distributed loops (SOR-shaped programs).
//!
//! Columns are block-distributed; each sweep updates all interior rows in
//! strip-mined blocks (§4.4). Within a block the slave computes its columns
//! left-to-right; the left halo of its first column arrives from the left
//! neighbour as a [`Msg::Boundary`] tagged `(sweep, block, column-id)`, the
//! right halo of its last column is the right neighbour's previous-sweep
//! first column (exchanged once per sweep as [`Msg::SweepOld`], §2.1's
//! "communication outside the loop").
//!
//! Work movement is adjacent-only and mid-sweep (§4.5): columns received
//! from the **left** are one or more pipeline phases *ahead* and are set
//! aside until the local phase catches up; columns received from the
//! **right** are *behind* and are caught up on arrival, using the
//! sweep-start snapshots carried in the transfer as their right halos. The
//! result is bit-identical to sequential execution no matter when moves
//! happen — the property tests in `tests/` rely on that.
//!
//! Under fault injection this engine is *detect-and-abort*: the tight
//! neighbour coupling means a lost pipeline stage cannot be recomputed
//! locally, so every blocking wait carries a deadline and trouble surfaces
//! as a typed [`ProtocolError`] (never a panic or a deadlock).

use crate::balancer::InteractionMode;
use crate::error::{FaultToleranceConfig, ProtocolError};
use crate::kernels::PipelinedKernel;
use crate::msg::{Edge, MoveOrder, MovedUnit, Msg, TransferMsg, UnitData};
use crate::slave_common::{recv_start, SlaveCommon};
use dlb_sim::{ActorCtx, ActorId, CpuWork};
use std::ops::Range;
use std::sync::Arc;

/// One local column and its pipeline state.
struct PCol {
    /// Unit id (interior column index; global column id + 1).
    id: usize,
    data: Vec<f64>,
    /// Sweep-start snapshot (right halo for the column to the left).
    old: Vec<f64>,
    /// Blocks completed this sweep.
    phase: u64,
}

/// Static configuration for one pipelined-engine slave.
pub struct PipelinedSlave {
    pub idx: usize,
    pub master: ActorId,
    pub mode: InteractionMode,
    pub hook_check_cpu: CpuWork,
    pub kernel: Arc<dyn PipelinedKernel>,
    pub ft: Option<FaultToleranceConfig>,
}

struct State {
    idx: usize,
    n_units: usize,
    cols: Vec<PCol>,
    /// Transfers from the left whose effective phase is still ahead of us:
    /// `(effective_block, columns)`, incorporated when we reach that phase.
    set_aside: Vec<(u64, Vec<PCol>)>,
    /// Previous-sweep values of the column right of our last column.
    right_old: Vec<f64>,
    left_wall: Vec<f64>,
    right_wall: Vec<f64>,
    block_rows: u64,
    nblocks: u64,
    col_len: usize,
    /// Scratch full-length buffer holding the received left halo.
    left_halo: Vec<f64>,
    sweep: u64,
}

impl State {
    fn interior_rows(&self) -> usize {
        self.col_len - 2
    }

    fn rows_of_block(&self, b: u64) -> Range<usize> {
        let start = 1 + (b * self.block_rows) as usize;
        let end = (start + self.block_rows as usize).min(1 + self.interior_rows());
        start..end
    }

    fn first_id(&self) -> usize {
        self.cols.first().expect("nonempty").id
    }

    fn last_id(&self) -> usize {
        self.cols.last().expect("nonempty").id
    }

    fn is_leftmost(&self) -> bool {
        self.first_id() == 0
    }

    fn is_rightmost(&self) -> bool {
        self.last_id() == self.n_units - 1
    }

    fn active_units(&self) -> u64 {
        (self.cols.len() + self.set_aside.iter().map(|(_, v)| v.len()).sum::<usize>()) as u64
    }

    fn assert_contiguous(&self) {
        for w in self.cols.windows(2) {
            assert_eq!(w[0].id + 1, w[1].id, "column block not contiguous");
        }
    }
}

impl PipelinedSlave {
    /// Actor body. Never panics on protocol trouble: fatal errors are
    /// shipped to the master as [`Msg::SlaveError`].
    pub fn run(self, ctx: ActorCtx<Msg>) {
        let (idx, master) = (self.idx, self.master);
        match self.run_inner(&ctx) {
            Ok(()) | Err(ProtocolError::Aborted) | Err(ProtocolError::Evicted { .. }) => {}
            Err(error) => {
                let msg = Msg::SlaveError { slave: idx, error };
                let bytes = msg.wire_bytes();
                ctx.send(master, msg, bytes);
            }
        }
    }

    fn run_inner(self, ctx: &ActorCtx<Msg>) -> Result<(), ProtocolError> {
        let (slaves, assignment, block_rows) = recv_start(ctx, self.idx, self.ft.as_ref())?;
        let range = assignment[self.idx];
        let kernel = self.kernel;
        let mut common = SlaveCommon::new(
            self.idx,
            self.master,
            slaves,
            self.mode,
            self.hook_check_cpu,
            self.ft.clone(),
            ctx.now(),
        );
        let col_len = kernel.col_len();
        let interior = (col_len - 2) as u64;
        let nblocks = interior.div_ceil(block_rows.max(1));
        let mut st = State {
            idx: self.idx,
            n_units: kernel.n_units(),
            cols: (range.0..range.1)
                .map(|i| PCol {
                    id: i,
                    data: kernel.init_unit(i),
                    old: Vec::new(),
                    phase: 0,
                })
                .collect(),
            set_aside: Vec::new(),
            right_old: Vec::new(),
            left_wall: kernel.left_wall(),
            right_wall: kernel.right_wall(),
            block_rows: block_rows.max(1),
            nblocks,
            col_len,
            left_halo: vec![0.0; col_len],
            sweep: 0,
        };
        assert!(!st.cols.is_empty(), "pipelined slave needs >= 1 column");

        // Initial release: the end-of-sweep barrier consumes every later
        // InvocationStart.
        loop {
            let env = common.recv_blocking(
                ctx,
                |m| matches!(m, Msg::InvocationStart { .. } | Msg::Instructions(_)),
                "first sweep start",
            )?;
            match env.msg {
                Msg::InvocationStart { invocation: 0 } => break,
                Msg::InvocationStart { invocation } => {
                    return Err(common.unexpected(
                        "waiting for first sweep",
                        &Msg::InvocationStart { invocation },
                    ));
                }
                Msg::Instructions(_) => {}
                _ => unreachable!(),
            }
        }

        let sweeps = kernel.sweeps();
        for sweep in 0..sweeps {
            st.sweep = sweep;
            sweep_body(ctx, &mut common, &mut st, &*kernel)?;
            // Sweep complete: absorb queued transfers (their catch-up work
            // counts toward this sweep), then flush status and execute any
            // sweep-end moves.
            let nblocks = st.nblocks;
            drain_transfers(ctx, &mut common, &mut st, &*kernel, nblocks)?;
            let moves = common.fire(ctx, sweep, st.active_units())?;
            execute_moves(ctx, &mut common, &mut st, &*kernel, moves, nblocks);
            purge_stale(ctx, sweep);
            barrier(
                ctx,
                &mut common,
                &mut st,
                &*kernel,
                sweep,
                sweep + 1 == sweeps,
            )?;
        }

        gather(ctx, &mut common, st);
        Ok(())
    }
}

fn send_boundary(ctx: &ActorCtx<Msg>, common: &SlaveCommon, st: &State, b: u64) {
    if st.is_rightmost() {
        return;
    }
    let last = st.cols.last().expect("nonempty");
    let rows = st.rows_of_block(b);
    let msg = Msg::Boundary {
        sweep: st.sweep,
        block: b,
        col: last.id,
        values: last.data[rows].to_vec(),
    };
    common.send_slave(ctx, st.idx + 1, msg);
}

/// Fetch the left halo for block `b` into `st.left_halo`.
///
/// The wait must also service incoming [`Msg::Transfer`]s: if the left
/// neighbour has just shipped us its boundary columns (effective at this
/// very block), the halo we were waiting for *is inside the transfer* —
/// the columns become local, our first column changes, and we start
/// waiting for the neighbour's new last column instead. Blocking on the
/// boundary alone would deadlock with the transfer sitting in our own
/// mailbox.
fn fetch_left_halo(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    b: u64,
) -> Result<(), ProtocolError> {
    loop {
        if st.is_leftmost() {
            st.left_halo.copy_from_slice(&st.left_wall);
            return Ok(());
        }
        let want_col = st.first_id() - 1;
        let want_sweep = st.sweep;
        let env = common.recv_blocking(
            ctx,
            |m| {
                matches!(m, Msg::Boundary { sweep, block, col, .. }
                    if *sweep == want_sweep && *block == b && *col == want_col)
                    || matches!(m, Msg::Transfer(_))
            },
            "left halo boundary",
        )?;
        match env.msg {
            Msg::Boundary { values, .. } => {
                let rows = st.rows_of_block(b);
                assert_eq!(values.len(), rows.len(), "boundary segment length");
                st.left_halo[rows].copy_from_slice(&values);
                return Ok(());
            }
            Msg::Transfer(t) => {
                // We have completed `b` blocks at this point; a transfer
                // effective exactly here merges immediately and changes the
                // wanted halo column.
                accept_transfer(ctx, common, st, kernel, t, b)?;
                incorporate_set_asides(st, b);
            }
            _ => unreachable!(),
        }
    }
}

/// Compute block `b` for columns `lo..` of `st.cols` (normally all of
/// them; catch-up uses a sub-range starting at the appended columns).
fn compute_block_cols(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    b: u64,
    from_ci: usize,
    right_old_override: Option<&[f64]>,
) {
    let rows = st.rows_of_block(b);
    let cost = kernel.elem_cost() * rows.len() as u64;
    for ci in from_ci..st.cols.len() {
        common.compute(ctx, cost);
        let (left_part, rest) = st.cols.split_at_mut(ci);
        let (me, right_part) = rest.split_first_mut().expect("ci in range");
        let left: &[f64] = match left_part.last() {
            Some(l) => &l.data,
            None => &st.left_halo,
        };
        let right: &[f64] = match right_part.first() {
            Some(r) => &r.old,
            None => right_old_override.unwrap_or(if st.right_old.is_empty() {
                &st.right_wall
            } else {
                &st.right_old
            }),
        };
        kernel.compute_block(&mut me.data, left, right, rows.clone());
        me.phase = b + 1;
        // Work is counted in column-rows: blocks can have unequal heights
        // (the last block is a remainder), and uniform per-block counting
        // would skew sweep-end rate samples.
        common.record_done(rows.len() as u64);
    }
}

fn sweep_body(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
) -> Result<(), ProtocolError> {
    // Sweep start: snapshot old values, exchange halo columns (§2.1's
    // communication outside the distributed loop).
    for c in &mut st.cols {
        c.old = c.data.clone();
        c.phase = 0;
    }
    if !st.is_leftmost() {
        let msg = Msg::SweepOld {
            sweep: st.sweep,
            values: st.cols[0].old.clone(),
        };
        common.send_slave(ctx, st.idx - 1, msg);
    }
    st.right_old = if st.is_rightmost() {
        st.right_wall.clone()
    } else {
        let want = st.sweep;
        let env = common.recv_blocking(
            ctx,
            |m| matches!(m, Msg::SweepOld { sweep, .. } if *sweep == want),
            "right neighbour sweep-old column",
        )?;
        match env.msg {
            Msg::SweepOld { values, .. } => values,
            _ => unreachable!(),
        }
    };

    for b in 0..st.nblocks {
        incorporate_set_asides(st, b);
        fetch_left_halo(ctx, common, st, kernel, b)?;
        compute_block_cols(ctx, common, st, kernel, b, 0, None);
        send_boundary(ctx, common, st, b);
        let moves = common.hook(ctx, st.sweep, st.active_units())?;
        execute_moves(ctx, common, st, kernel, moves, b + 1);
        drain_transfers(ctx, common, st, kernel, b + 1)?;
    }
    incorporate_set_asides(st, st.nblocks);
    st.assert_contiguous();
    Ok(())
}

/// Prepend set-aside columns whose effective phase equals `phase`.
fn incorporate_set_asides(st: &mut State, phase: u64) {
    let mut i = 0;
    while i < st.set_aside.len() {
        if st.set_aside[i].0 == phase {
            let (_, mut cols) = st.set_aside.remove(i);
            assert_eq!(
                cols.last().expect("nonempty transfer").id + 1,
                st.first_id(),
                "set-aside columns must abut our block"
            );
            for c in &cols {
                assert_eq!(c.phase, phase, "set-aside phase mismatch");
            }
            cols.append(&mut st.cols);
            st.cols = cols;
        } else {
            i += 1;
        }
    }
}

fn execute_moves(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    moves: Vec<MoveOrder>,
    phase: u64,
) {
    let _ = kernel;
    if moves.is_empty() {
        return;
    }
    let t0 = ctx.now();
    let mut total = 0u64;
    for order in moves {
        assert!(
            order.to + 1 == common.idx || common.idx + 1 == order.to,
            "pipelined movement must be adjacent (got {} -> {})",
            common.idx,
            order.to
        );
        // Columns still set aside cannot be re-moved, and while any are
        // pending our low edge is not the true boundary — shipping resident
        // low columns would leave a gap below them. Skip such orders (an
        // empty transfer keeps the accounting settled; the master will
        // re-plan).
        let take = if order.edge == Edge::Low && !st.set_aside.is_empty() {
            0
        } else {
            (order.count as usize).min(st.cols.len().saturating_sub(1))
        };
        let (units, right_old) = match order.edge {
            Edge::High => {
                assert_eq!(order.to, common.idx + 1);
                let split = st.cols.len() - take;
                let moved: Vec<PCol> = st.cols.split_off(split);
                if let Some(first) = moved.first() {
                    // Our new right halo: the departing first column's
                    // sweep-start snapshot (we retain a copy).
                    st.right_old = first.old.clone();
                }
                (moved, None)
            }
            Edge::Low => {
                assert_eq!(order.to + 1, common.idx);
                let moved: Vec<PCol> = st.cols.drain(0..take).collect();
                let ro = st.cols.first().map(|c| c.old.clone());
                (moved, ro)
            }
        };
        total += units.len() as u64;
        if std::env::var_os("DLB_TRACE").is_some() {
            eprintln!(
                "[slave{} t={}] move {} cols {:?} -> slave{} at phase {phase} sweep {}",
                common.idx,
                ctx.now(),
                units.len(),
                units.iter().map(|c| c.id).collect::<Vec<_>>(),
                order.to,
                st.sweep,
            );
        }
        let moved_units: Vec<MovedUnit> = units
            .into_iter()
            .map(|c| {
                assert_eq!(c.phase, phase, "moved column phase mismatch");
                MovedUnit {
                    id: c.id,
                    done: false,
                    updated_through: c.phase,
                    data: vec![c.data],
                    old: Some(c.old),
                }
            })
            .collect();
        let msg = Msg::Transfer(TransferMsg {
            from: common.idx,
            invocation: st.sweep,
            effective_block: phase,
            units: moved_units,
            right_old,
        });
        common.transfers_sent += 1;
        common.send_slave(ctx, order.to, msg);
    }
    common.move_cost_sample = Some((total, ctx.now().saturating_since(t0)));
}

/// Process queued transfers. `my_phase` is the number of blocks we have
/// completed this sweep.
fn drain_transfers(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    my_phase: u64,
) -> Result<(), ProtocolError> {
    while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Transfer(_))) {
        if let Msg::Transfer(t) = env.msg {
            accept_transfer(ctx, common, st, kernel, t, my_phase)?;
        }
    }
    Ok(())
}

fn accept_transfer(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    t: TransferMsg,
    my_phase: u64,
) -> Result<(), ProtocolError> {
    if std::env::var_os("DLB_TRACE").is_some() {
        eprintln!(
            "[slave{} t={}] accept transfer from {} eff {} units {:?} (my_phase {my_phase}, sweep {})",
            st.idx, ctx.now(), t.from, t.effective_block,
            t.units.iter().map(|u| u.id).collect::<Vec<_>>(), st.sweep,
        );
    }
    if t.from != st.idx + 1 && t.from + 1 != st.idx {
        return Err(ProtocolError::NonNeighborTransfer {
            from: t.from,
            to: st.idx,
            sweep: st.sweep,
        });
    }
    common.received_from[t.from] += 1;
    assert_eq!(t.invocation, st.sweep, "cross-sweep transfer");
    let mut cols: Vec<PCol> = t
        .units
        .into_iter()
        .map(|mu| {
            let mut data: UnitData = mu.data;
            PCol {
                id: mu.id,
                data: data.swap_remove(0),
                old: mu.old.expect("pipelined transfer carries snapshots"),
                phase: mu.updated_through,
            }
        })
        .collect();
    if cols.is_empty() {
        return Ok(());
    }
    if t.from == st.idx + 1 {
        // From the right: columns are behind; catch them up (§4.5).
        let eff = t.effective_block;
        assert!(eff <= my_phase, "right transfer from the future");
        assert_eq!(
            cols.first().expect("nonempty").id,
            st.last_id() + 1,
            "right transfer must abut our block"
        );
        let from_ci = st.cols.len();
        st.cols.append(&mut cols);
        let right_old = t.right_old.expect("right transfer carries right halo");
        for b in eff..my_phase {
            compute_block_cols(ctx, common, st, kernel, b, from_ci, Some(&right_old));
            // The sender's remaining columns need our (new) last column's
            // values for the blocks we just caught up.
            send_boundary(ctx, common, st, b);
        }
        st.right_old = right_old;
    } else {
        // From the left: columns are ahead; set aside until we catch up.
        let eff = t.effective_block;
        assert!(eff >= my_phase, "left transfer from the past");
        if eff == my_phase {
            let mut tmp = std::mem::take(&mut st.cols);
            cols.append(&mut tmp);
            st.cols = cols;
            st.assert_contiguous();
        } else {
            st.set_aside.push((eff, cols));
        }
    }
    Ok(())
}

/// Drain now-useless messages of the finished sweep (boundaries made
/// redundant by mid-sweep moves).
fn purge_stale(ctx: &ActorCtx<Msg>, sweep: u64) {
    while ctx
        .try_recv_match(|m| {
            matches!(m, Msg::Boundary { sweep: s, .. } if *s == sweep)
                || matches!(m, Msg::SweepOld { sweep: s, .. } if *s == sweep)
        })
        .is_some()
    {}
}

fn send_done(ctx: &ActorCtx<Msg>, common: &mut SlaveCommon, sweep: u64) {
    let msg = Msg::InvocationDone {
        slave: common.idx,
        invocation: sweep,
        transfers_sent: common.transfers_sent,
        received_from: common.received_from.clone(),
        metric: 0.0,
        restore_seq: 0,
    };
    common.send_master(ctx, msg);
}

fn barrier(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    sweep: u64,
    is_final: bool,
) -> Result<(), ProtocolError> {
    if std::env::var_os("DLB_TRACE").is_some() {
        eprintln!(
            "[slave{} t={}] barrier sweep {sweep} cols {:?} sent {} recv {}",
            st.idx,
            ctx.now(),
            st.cols.iter().map(|c| c.id).collect::<Vec<_>>(),
            common.transfers_sent,
            common.received_from.iter().sum::<u64>(),
        );
    }
    send_done(ctx, common, sweep);
    let fault_mode = common.ft.is_some();
    let mut silent = 0u32;
    loop {
        let env = match common.ft.clone() {
            None => common.recv_blocking(ctx, |_| true, "sweep barrier")?,
            Some(ft) => match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
                Some(env) => {
                    silent = 0;
                    env
                }
                None => {
                    // Heartbeat: our done report (or the barrier release)
                    // may have been lost; refresh it.
                    silent += 1;
                    if silent > ft.give_up_tries {
                        return Err(ProtocolError::Timeout {
                            who: crate::error::slave_who(common.idx),
                            waiting_for: "sweep barrier",
                            at: ctx.now(),
                        });
                    }
                    send_done(ctx, common, sweep);
                    continue;
                }
            },
        };
        match env.msg {
            Msg::Transfer(t) => {
                accept_transfer(ctx, common, st, kernel, t, st.nblocks)?;
                // Catch-up work done while incorporating counts toward this
                // sweep: flush it (and any movement the reply requests)
                // before refreshing the done/counters message.
                let moves = common.fire(ctx, sweep, st.active_units())?;
                let nblocks = st.nblocks;
                execute_moves(ctx, common, st, kernel, moves, nblocks);
                send_done(ctx, common, sweep);
            }
            Msg::Instructions(instr) => {
                // Sweep-boundary moves keep the next sweep balanced. The
                // master cannot settle (and so cannot start the next sweep
                // or the gather) until these transfers are acknowledged, so
                // executing them here is always safe.
                if !instr.moves.is_empty() {
                    let nblocks = st.nblocks;
                    execute_moves(ctx, common, st, kernel, instr.moves, nblocks);
                    send_done(ctx, common, sweep);
                }
            }
            Msg::InvocationStart { invocation } => {
                if invocation == sweep + 1 && !is_final {
                    return Ok(());
                }
                if fault_mode && invocation <= sweep {
                    // Stale duplicate of an earlier release.
                    continue;
                }
                return Err(
                    common.unexpected("sweep barrier", &Msg::InvocationStart { invocation })
                );
            }
            Msg::Gather => {
                if is_final {
                    return Ok(());
                }
                return Err(common.unexpected("sweep barrier", &Msg::Gather));
            }
            Msg::Abort => return Err(ProtocolError::Aborted),
            Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
            Msg::Start { .. } | Msg::GatherAck if fault_mode => {} // duplicate deliveries
            other => return Err(common.unexpected("sweep barrier", &other)),
        }
    }
}

/// The final barrier consumed the Gather message; reply with our columns.
fn gather(ctx: &ActorCtx<Msg>, common: &mut SlaveCommon, st: State) {
    assert!(st.set_aside.is_empty(), "set-aside columns at gather");
    let units: Vec<(usize, UnitData)> = st.cols.into_iter().map(|c| (c.id, vec![c.data])).collect();
    let msg = Msg::GatherData {
        slave: common.idx,
        units,
    };
    common.send_master(ctx, msg);
}
