//! Slave engine for pipelined distributed loops (SOR-shaped programs).
//!
//! Columns are block-distributed; each sweep updates all interior rows in
//! strip-mined blocks (§4.4). Within a block the slave computes its columns
//! left-to-right; the left halo of its first column arrives from the left
//! neighbour as a [`Msg::Boundary`] tagged `(sweep, block, column-id)`, the
//! right halo of its last column is the right neighbour's previous-sweep
//! first column (exchanged once per sweep as [`Msg::SweepOld`], §2.1's
//! "communication outside the loop").
//!
//! Work movement is adjacent-only and mid-sweep (§4.5): columns received
//! from the **left** are one or more pipeline phases *ahead* and are set
//! aside until the local phase catches up; columns received from the
//! **right** are *behind* and are caught up on arrival, using the
//! sweep-start snapshots carried in the transfer as their right halos. The
//! result is bit-identical to sequential execution no matter when moves
//! happen — the property tests in `tests/` rely on that.
//!
//! Under fault injection this engine is *checkpointed*: at every sweep
//! barrier each slave ships its column state to the master
//! ([`Msg::Checkpoint`], best-effort). When a slave dies or wedges, the
//! master rolls every survivor back to the latest complete snapshot
//! ([`Msg::Rollback`]): the slave discards all engine state, adopts the
//! re-partitioned columns, derives its pipeline neighbours from the
//! survivor list, and resumes the tagged sweep in a new epoch. Boundary and
//! sweep-old values are pure functions of sweep-start state, so messages
//! surviving from before the rollback are bit-identical to their replayed
//! versions and need no fencing; transfers and balancing instructions are
//! epoch-fenced.

use crate::balancer::InteractionMode;
use crate::error::{slave_who, FaultToleranceConfig, ProtocolError};
use crate::kernels::PipelinedKernel;
use crate::msg::{Edge, MoveOrder, MovedUnit, Msg, TransferMsg, UnitData};
use crate::slave_common::{recv_start, RollbackInfo, SlaveCommon};
use dlb_sim::{ActorCtx, ActorId, CpuWork};
use std::ops::Range;
use std::sync::Arc;

/// One local column and its pipeline state.
struct PCol {
    /// Unit id (interior column index; global column id + 1).
    id: usize,
    data: Vec<f64>,
    /// Sweep-start snapshot (right halo for the column to the left).
    old: Vec<f64>,
    /// Blocks completed this sweep.
    phase: u64,
}

/// Static configuration for one pipelined-engine slave.
pub struct PipelinedSlave {
    pub idx: usize,
    pub master: ActorId,
    pub mode: InteractionMode,
    pub hook_check_cpu: CpuWork,
    pub kernel: Arc<dyn PipelinedKernel>,
    pub ft: Option<FaultToleranceConfig>,
}

struct State {
    idx: usize,
    cols: Vec<PCol>,
    /// Transfers from the left whose effective phase is still ahead of us:
    /// `(effective_block, columns)`, incorporated when we reach that phase.
    set_aside: Vec<(u64, Vec<PCol>)>,
    /// Previous-sweep values of the column right of our last column.
    right_old: Vec<f64>,
    left_wall: Vec<f64>,
    right_wall: Vec<f64>,
    block_rows: u64,
    nblocks: u64,
    col_len: usize,
    /// Scratch full-length buffer holding the received left halo.
    left_halo: Vec<f64>,
    sweep: u64,
    /// Pipeline neighbours: the adjacent *live* slaves (by slave index),
    /// derived from the survivor list at start-up and on every rollback.
    left: Option<usize>,
    right: Option<usize>,
}

impl State {
    fn interior_rows(&self) -> usize {
        self.col_len - 2
    }

    fn rows_of_block(&self, b: u64) -> Range<usize> {
        let start = 1 + (b * self.block_rows) as usize;
        let end = (start + self.block_rows as usize).min(1 + self.interior_rows());
        start..end
    }

    fn first_id(&self) -> usize {
        self.cols.first().expect("nonempty").id
    }

    fn last_id(&self) -> usize {
        self.cols.last().expect("nonempty").id
    }

    fn active_units(&self) -> u64 {
        (self.cols.len() + self.set_aside.iter().map(|(_, v)| v.len()).sum::<usize>()) as u64
    }

    fn check_contiguous(&self) -> Result<(), ProtocolError> {
        for w in self.cols.windows(2) {
            if w[0].id + 1 != w[1].id {
                return Err(ProtocolError::Inconsistent {
                    detail: format!(
                        "slave {}: column block not contiguous ({} then {})",
                        self.idx, w[0].id, w[1].id
                    ),
                });
            }
        }
        Ok(())
    }

    fn inconsistent(&self, detail: String) -> ProtocolError {
        ProtocolError::Inconsistent {
            detail: format!("slave {}: {detail}", self.idx),
        }
    }
}

impl PipelinedSlave {
    /// Actor body. Never panics on protocol trouble: fatal errors are
    /// shipped to the master as [`Msg::SlaveError`].
    pub fn run(self, ctx: ActorCtx<Msg>) {
        let (idx, master) = (self.idx, self.master);
        match self.run_inner(&ctx) {
            Ok(()) | Err(ProtocolError::Aborted) | Err(ProtocolError::Evicted { .. }) => {}
            Err(error) => {
                let msg = Msg::SlaveError { slave: idx, error };
                let bytes = msg.wire_bytes();
                ctx.send(master, msg, bytes);
            }
        }
    }

    fn run_inner(self, ctx: &ActorCtx<Msg>) -> Result<(), ProtocolError> {
        let (slaves, assignment, block_rows) = recv_start(ctx, self.idx, self.ft.as_ref())?;
        let n_slaves = slaves.len();
        let range = assignment[self.idx];
        let kernel = self.kernel;
        let mut common = SlaveCommon::new(
            self.idx,
            self.master,
            slaves,
            self.mode,
            self.hook_check_cpu,
            self.ft.clone(),
            ctx.now(),
        );
        let col_len = kernel.col_len();
        let interior = (col_len - 2) as u64;
        let nblocks = interior.div_ceil(block_rows.max(1));
        let mut st = State {
            idx: self.idx,
            cols: (range.0..range.1)
                .map(|i| PCol {
                    id: i,
                    data: kernel.init_unit(i),
                    old: Vec::new(),
                    phase: 0,
                })
                .collect(),
            set_aside: Vec::new(),
            right_old: Vec::new(),
            left_wall: kernel.left_wall(),
            right_wall: kernel.right_wall(),
            block_rows: block_rows.max(1),
            nblocks,
            col_len,
            left_halo: vec![0.0; col_len],
            sweep: 0,
            left: (self.idx > 0).then(|| self.idx - 1),
            right: (self.idx + 1 < n_slaves).then_some(self.idx + 1),
        };
        if st.cols.is_empty() {
            return Err(st.inconsistent("started with zero columns".into()));
        }

        let sweeps = kernel.sweeps();
        let mut start_sweep = 0u64;
        let mut need_release = true;
        loop {
            // The gather reply lives *inside* the restart loop: a peer can
            // die while the master is collecting results, and the resulting
            // rollback must re-run the lost sweeps on the survivors — so a
            // rollback arriving during the gather wait unwinds to here like
            // any other.
            let result = run_sweeps(
                ctx,
                &mut common,
                &mut st,
                &*kernel,
                start_sweep,
                sweeps,
                need_release,
            )
            .and_then(|()| reply_gather(ctx, &mut common, &st));
            match result {
                Ok(()) => return Ok(()),
                Err(ProtocolError::RolledBack) => {}
                Err(e) if common.ft.is_some() && recoverable(&e) => {
                    // Wedged (lost halo, torn protocol state): report and
                    // wait to be rolled back rather than dying — the master
                    // answers a SlaveError with a rollback, not an eviction.
                    let msg = Msg::SlaveError {
                        slave: common.idx,
                        error: e,
                    };
                    common.send_master(ctx, msg);
                    rescue_wait(ctx, &mut common)?;
                }
                Err(e) => return Err(e),
            }
            let rb = common.pending_rollback.take().ok_or_else(|| {
                st.inconsistent("rollback unwound with no pending payload".into())
            })?;
            start_sweep = apply_rollback(&mut common, &mut st, rb)?;
            // The rollback itself releases the resumed sweep; no
            // InvocationStart follows.
            need_release = false;
        }
    }
}

/// Errors a checkpointed slave reports and survives (by rollback) instead
/// of dying from.
fn recoverable(e: &ProtocolError) -> bool {
    matches!(
        e,
        ProtocolError::Timeout { .. }
            | ProtocolError::MissingPivot { .. }
            | ProtocolError::NonNeighborTransfer { .. }
            | ProtocolError::Inconsistent { .. }
            | ProtocolError::UnexpectedMessage { .. }
    )
}

/// After shipping a `SlaveError`, wait for the master's rollback (stashed in
/// `pending_rollback`), an abort, or an eviction.
fn rescue_wait(ctx: &ActorCtx<Msg>, common: &mut SlaveCommon) -> Result<(), ProtocolError> {
    let ft = common.ft.clone().expect("rescue_wait requires fault mode");
    let mut tries = 0u32;
    loop {
        match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
            None => {
                tries += 1;
                if tries > ft.give_up_tries {
                    return Err(ProtocolError::Timeout {
                        who: slave_who(common.idx),
                        waiting_for: "rescue rollback",
                        at: ctx.now(),
                    });
                }
            }
            Some(env) => match env.msg {
                Msg::Abort => return Err(ProtocolError::Aborted),
                Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
                m => {
                    if let Err(ProtocolError::RolledBack) = common.control(&m) {
                        return Ok(());
                    }
                    // anything else is stale traffic of the torn epoch — ignore
                }
            },
        }
    }
}

/// Adopt a rollback: discard all engine state, install the re-partitioned
/// columns, derive neighbours from the survivor list, enter the new epoch.
/// Returns the sweep to resume from.
fn apply_rollback(
    common: &mut SlaveCommon,
    st: &mut State,
    rb: RollbackInfo,
) -> Result<u64, ProtocolError> {
    let pos = rb
        .survivors
        .iter()
        .position(|&s| s == common.idx)
        .ok_or(ProtocolError::Evicted { slave: common.idx })?;
    for s in 0..common.dead.len() {
        common.dead[s] = !rb.survivors.contains(&s);
    }
    common.reclaimed.clear();
    common.own_report_due.clear();
    common.rebase_epoch(rb.epoch);
    st.left = pos.checked_sub(1).map(|p| rb.survivors[p]);
    st.right = rb.survivors.get(pos + 1).copied();
    let mut units = rb.units;
    units.sort_by_key(|(id, _)| *id);
    st.cols = units
        .into_iter()
        .map(|(id, mut d)| PCol {
            id,
            data: if d.is_empty() {
                Vec::new()
            } else {
                d.swap_remove(0)
            },
            old: Vec::new(),
            phase: 0,
        })
        .collect();
    if st.cols.is_empty() {
        return Err(st.inconsistent("rolled back to zero columns".into()));
    }
    st.check_contiguous()?;
    st.set_aside.clear();
    st.right_old = Vec::new();
    st.sweep = rb.invocation;
    Ok(rb.invocation)
}

/// The main sweep loop, from `start_sweep` to completion (ends by
/// consuming the final `Gather`). Unwinds with `RolledBack` whenever a
/// rollback arrives.
fn run_sweeps(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    start_sweep: u64,
    sweeps: u64,
    need_release: bool,
) -> Result<(), ProtocolError> {
    if need_release {
        // Initial release: the end-of-sweep barrier consumes every later
        // InvocationStart.
        loop {
            let env = common.recv_blocking(
                ctx,
                |m| matches!(m, Msg::InvocationStart { .. } | Msg::Instructions(_)),
                "first sweep start",
            )?;
            match env.msg {
                Msg::InvocationStart { invocation: 0 } => break,
                Msg::InvocationStart { invocation } => {
                    return Err(common.unexpected(
                        "waiting for first sweep",
                        &Msg::InvocationStart { invocation },
                    ));
                }
                Msg::Instructions(_) => {}
                _ => unreachable!(),
            }
        }
    }

    for sweep in start_sweep..sweeps {
        st.sweep = sweep;
        sweep_body(ctx, common, st, kernel)?;
        // Sweep complete: absorb queued transfers (their catch-up work
        // counts toward this sweep), then flush status and execute any
        // sweep-end moves.
        let nblocks = st.nblocks;
        drain_transfers(ctx, common, st, kernel, nblocks)?;
        let moves = common.fire(ctx, sweep, st.active_units())?;
        execute_moves(ctx, common, st, moves, nblocks)?;
        purge_stale(ctx, sweep);
        barrier(ctx, common, st, kernel, sweep, sweep + 1 == sweeps)?;
    }
    Ok(())
}

fn send_boundary(ctx: &ActorCtx<Msg>, common: &SlaveCommon, st: &State, b: u64) {
    let Some(right) = st.right else {
        return;
    };
    let last = st.cols.last().expect("nonempty");
    let rows = st.rows_of_block(b);
    let msg = Msg::Boundary {
        sweep: st.sweep,
        block: b,
        col: last.id,
        values: last.data[rows].to_vec(),
    };
    common.send_slave(ctx, right, msg);
}

/// Fetch the left halo for block `b` into `st.left_halo`.
///
/// The wait must also service incoming [`Msg::Transfer`]s: if the left
/// neighbour has just shipped us its boundary columns (effective at this
/// very block), the halo we were waiting for *is inside the transfer* —
/// the columns become local, our first column changes, and we start
/// waiting for the neighbour's new last column instead. Blocking on the
/// boundary alone would deadlock with the transfer sitting in our own
/// mailbox.
fn fetch_left_halo(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    b: u64,
) -> Result<(), ProtocolError> {
    loop {
        if st.left.is_none() {
            st.left_halo.copy_from_slice(&st.left_wall);
            return Ok(());
        }
        let want_col = st.first_id() - 1;
        let want_sweep = st.sweep;
        let env = common.recv_blocking(
            ctx,
            |m| {
                matches!(m, Msg::Boundary { sweep, block, col, .. }
                    if *sweep == want_sweep && *block == b && *col == want_col)
                    || matches!(m, Msg::Transfer(_))
            },
            "left halo boundary",
        )?;
        match env.msg {
            Msg::Boundary { values, .. } => {
                let rows = st.rows_of_block(b);
                if values.len() != rows.len() {
                    return Err(st.inconsistent(format!(
                        "boundary segment length {} != block height {}",
                        values.len(),
                        rows.len()
                    )));
                }
                st.left_halo[rows].copy_from_slice(&values);
                return Ok(());
            }
            Msg::Transfer(t) => {
                // We have completed `b` blocks at this point; a transfer
                // effective exactly here merges immediately and changes the
                // wanted halo column.
                accept_transfer(ctx, common, st, kernel, t, b)?;
                incorporate_set_asides(st, b)?;
            }
            _ => unreachable!(),
        }
    }
}

/// Compute block `b` for columns `lo..` of `st.cols` (normally all of
/// them; catch-up uses a sub-range starting at the appended columns).
fn compute_block_cols(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    b: u64,
    from_ci: usize,
    right_old_override: Option<&[f64]>,
) {
    let rows = st.rows_of_block(b);
    let cost = kernel.elem_cost() * rows.len() as u64;
    for ci in from_ci..st.cols.len() {
        common.compute(ctx, cost);
        let (left_part, rest) = st.cols.split_at_mut(ci);
        let (me, right_part) = rest.split_first_mut().expect("ci in range");
        let left: &[f64] = match left_part.last() {
            Some(l) => &l.data,
            None => &st.left_halo,
        };
        let right: &[f64] = match right_part.first() {
            Some(r) => &r.old,
            None => right_old_override.unwrap_or(if st.right_old.is_empty() {
                &st.right_wall
            } else {
                &st.right_old
            }),
        };
        kernel.compute_block(&mut me.data, left, right, rows.clone());
        me.phase = b + 1;
        // Work is counted in column-rows: blocks can have unequal heights
        // (the last block is a remainder), and uniform per-block counting
        // would skew sweep-end rate samples.
        common.record_done(rows.len() as u64);
    }
}

fn sweep_body(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
) -> Result<(), ProtocolError> {
    // Sweep start: snapshot old values, exchange halo columns (§2.1's
    // communication outside the distributed loop).
    for c in &mut st.cols {
        c.old = c.data.clone();
        c.phase = 0;
    }
    if let Some(left) = st.left {
        let msg = Msg::SweepOld {
            sweep: st.sweep,
            col: st.cols[0].id,
            values: st.cols[0].old.clone(),
        };
        common.send_slave(ctx, left, msg);
    }
    st.right_old = if st.right.is_none() {
        st.right_wall.clone()
    } else {
        let want = st.sweep;
        let want_col = st.last_id() + 1;
        let env = common.recv_blocking(
            ctx,
            |m| matches!(m, Msg::SweepOld { sweep, col, .. } if *sweep == want && *col == want_col),
            "right neighbour sweep-old column",
        )?;
        match env.msg {
            Msg::SweepOld { values, .. } => values,
            _ => unreachable!(),
        }
    };

    for b in 0..st.nblocks {
        incorporate_set_asides(st, b)?;
        fetch_left_halo(ctx, common, st, kernel, b)?;
        compute_block_cols(ctx, common, st, kernel, b, 0, None);
        send_boundary(ctx, common, st, b);
        let moves = common.hook(ctx, st.sweep, st.active_units())?;
        execute_moves(ctx, common, st, moves, b + 1)?;
        drain_transfers(ctx, common, st, kernel, b + 1)?;
    }
    incorporate_set_asides(st, st.nblocks)?;
    st.check_contiguous()
}

/// Prepend set-aside columns whose effective phase equals `phase`.
fn incorporate_set_asides(st: &mut State, phase: u64) -> Result<(), ProtocolError> {
    let mut i = 0;
    while i < st.set_aside.len() {
        if st.set_aside[i].0 == phase {
            let (_, mut cols) = st.set_aside.remove(i);
            let last = cols.last().expect("nonempty transfer");
            if last.id + 1 != st.first_id() {
                return Err(st.inconsistent(format!(
                    "set-aside columns ending at {} do not abut block starting at {}",
                    last.id,
                    st.first_id()
                )));
            }
            if let Some(c) = cols.iter().find(|c| c.phase != phase) {
                return Err(st.inconsistent(format!(
                    "set-aside column {} at phase {} incorporated at phase {phase}",
                    c.id, c.phase
                )));
            }
            cols.append(&mut st.cols);
            st.cols = cols;
        } else {
            i += 1;
        }
    }
    Ok(())
}

fn execute_moves(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    moves: Vec<MoveOrder>,
    phase: u64,
) -> Result<(), ProtocolError> {
    if moves.is_empty() {
        return Ok(());
    }
    let t0 = ctx.now();
    let mut total = 0u64;
    for order in moves {
        if common.dead[order.to] {
            // The peer was evicted after the master planned this move; the
            // next rollback (or re-plan) supersedes it.
            continue;
        }
        let is_right = st.right == Some(order.to);
        let is_left = st.left == Some(order.to);
        if !is_right && !is_left {
            return Err(st.inconsistent(format!(
                "pipelined movement must target a pipeline neighbour (got {} -> {})",
                common.idx, order.to
            )));
        }
        // Columns still set aside cannot be re-moved, and while any are
        // pending our low edge is not the true boundary — shipping resident
        // low columns would leave a gap below them. Skip such orders (an
        // empty transfer keeps the accounting settled; the master will
        // re-plan).
        let take = if order.edge == Edge::Low && !st.set_aside.is_empty() {
            0
        } else {
            (order.count as usize).min(st.cols.len().saturating_sub(1))
        };
        let (units, right_old) = match order.edge {
            Edge::High => {
                if !is_right {
                    return Err(st.inconsistent(format!(
                        "high-edge move must target the right neighbour (got {})",
                        order.to
                    )));
                }
                let split = st.cols.len() - take;
                let moved: Vec<PCol> = st.cols.split_off(split);
                if let Some(first) = moved.first() {
                    // Our new right halo: the departing first column's
                    // sweep-start snapshot (we retain a copy).
                    st.right_old = first.old.clone();
                }
                (moved, None)
            }
            Edge::Low => {
                if !is_left {
                    return Err(st.inconsistent(format!(
                        "low-edge move must target the left neighbour (got {})",
                        order.to
                    )));
                }
                let moved: Vec<PCol> = st.cols.drain(0..take).collect();
                let ro = st.cols.first().map(|c| c.old.clone());
                (moved, ro)
            }
        };
        total += units.len() as u64;
        if std::env::var_os("DLB_TRACE").is_some() {
            eprintln!(
                "[slave{} t={}] move {} cols {:?} -> slave{} at phase {phase} sweep {}",
                common.idx,
                ctx.now(),
                units.len(),
                units.iter().map(|c| c.id).collect::<Vec<_>>(),
                order.to,
                st.sweep,
            );
        }
        if let Some(c) = units.iter().find(|c| c.phase != phase) {
            return Err(st.inconsistent(format!(
                "moved column {} at phase {} shipped at phase {phase}",
                c.id, c.phase
            )));
        }
        let moved_units: Vec<MovedUnit> = units
            .into_iter()
            .map(|c| MovedUnit {
                id: c.id,
                done: false,
                updated_through: c.phase,
                data: vec![c.data],
                old: Some(c.old),
            })
            .collect();
        let from = common.idx;
        let sweep = st.sweep;
        common.send_transfer(ctx, order.to, |_| TransferMsg {
            from,
            seq: 0,
            epoch: 0,
            invocation: sweep,
            effective_block: phase,
            units: moved_units,
            right_old,
        });
    }
    common.move_cost_sample = Some((total, ctx.now().saturating_since(t0)));
    Ok(())
}

/// Process queued channel control traffic and transfers. `my_phase` is the
/// number of blocks we have completed this sweep.
fn drain_transfers(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    my_phase: u64,
) -> Result<(), ProtocolError> {
    common.drain_control(ctx)?;
    while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Transfer(_))) {
        if let Msg::Transfer(t) = env.msg {
            accept_transfer(ctx, common, st, kernel, t, my_phase)?;
        }
    }
    Ok(())
}

fn accept_transfer(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    t: TransferMsg,
    my_phase: u64,
) -> Result<(), ProtocolError> {
    if !common.accept_transfer(ctx, &t) {
        return Ok(()); // stale epoch, dead sender, or duplicate — fenced
    }
    if std::env::var_os("DLB_TRACE").is_some() {
        eprintln!(
            "[slave{} t={}] accept transfer from {} eff {} units {:?} (my_phase {my_phase}, sweep {})",
            st.idx, ctx.now(), t.from, t.effective_block,
            t.units.iter().map(|u| u.id).collect::<Vec<_>>(), st.sweep,
        );
    }
    let from_right = st.right == Some(t.from);
    let from_left = st.left == Some(t.from);
    if !from_right && !from_left {
        return Err(ProtocolError::NonNeighborTransfer {
            from: t.from,
            to: st.idx,
            sweep: st.sweep,
        });
    }
    if t.invocation != st.sweep {
        return Err(st.inconsistent(format!(
            "transfer for sweep {} accepted in sweep {}",
            t.invocation, st.sweep
        )));
    }
    let mut cols: Vec<PCol> = t
        .units
        .into_iter()
        .map(|mu| {
            let mut data: UnitData = mu.data;
            PCol {
                id: mu.id,
                data: if data.is_empty() {
                    Vec::new()
                } else {
                    data.swap_remove(0)
                },
                old: mu.old.unwrap_or_default(),
                phase: mu.updated_through,
            }
        })
        .collect();
    if cols.is_empty() {
        return Ok(());
    }
    if from_right {
        // From the right: columns are behind; catch them up (§4.5).
        let eff = t.effective_block;
        if eff > my_phase {
            return Err(st.inconsistent(format!(
                "right transfer effective at phase {eff} ahead of local phase {my_phase}"
            )));
        }
        if cols.first().expect("nonempty").id != st.last_id() + 1 {
            return Err(st.inconsistent(format!(
                "right transfer starting at {} does not abut block ending at {}",
                cols.first().expect("nonempty").id,
                st.last_id()
            )));
        }
        let from_ci = st.cols.len();
        st.cols.append(&mut cols);
        let right_old = t.right_old.ok_or_else(|| {
            st.inconsistent("right transfer missing its right-halo snapshot".into())
        })?;
        for b in eff..my_phase {
            compute_block_cols(ctx, common, st, kernel, b, from_ci, Some(&right_old));
            // The sender's remaining columns need our (new) last column's
            // values for the blocks we just caught up.
            send_boundary(ctx, common, st, b);
        }
        st.right_old = right_old;
    } else {
        // From the left: columns are ahead; set aside until we catch up.
        let eff = t.effective_block;
        if eff < my_phase {
            return Err(st.inconsistent(format!(
                "left transfer effective at phase {eff} behind local phase {my_phase}"
            )));
        }
        if eff == my_phase {
            let mut tmp = std::mem::take(&mut st.cols);
            cols.append(&mut tmp);
            st.cols = cols;
            st.check_contiguous()?;
        } else {
            st.set_aside.push((eff, cols));
        }
    }
    Ok(())
}

/// Drain now-useless messages of the finished sweep (boundaries made
/// redundant by mid-sweep moves). Halo values are pure functions of
/// sweep-start state, so any stragglers from before a rollback are
/// bit-identical to their replayed versions — no epoch fencing needed.
fn purge_stale(ctx: &ActorCtx<Msg>, sweep: u64) {
    while ctx
        .try_recv_match(|m| {
            matches!(m, Msg::Boundary { sweep: s, .. } if *s == sweep)
                || matches!(m, Msg::SweepOld { sweep: s, .. } if *s == sweep)
        })
        .is_some()
    {}
}

fn send_done(ctx: &ActorCtx<Msg>, common: &mut SlaveCommon, st: &State, sweep: u64) {
    let msg = Msg::InvocationDone {
        slave: common.idx,
        invocation: sweep,
        epoch: common.epoch,
        sent_to: common.sent_to_vec(),
        received_from: common.recv_watermarks(),
        metric: 0.0,
        restore_seq: common.master_chan.watermark(),
        owned_ids: st.cols.iter().map(|c| c.id).collect(),
    };
    common.send_master(ctx, msg);
}

/// Ship the sweep-barrier checkpoint: the state from which sweep
/// `sweep + 1` starts. Best-effort — a dropped checkpoint only means the
/// master rolls back to an older complete snapshot.
fn send_checkpoint(ctx: &ActorCtx<Msg>, common: &mut SlaveCommon, st: &State, sweep: u64) {
    if common.ft.is_none() {
        return;
    }
    let msg = Msg::Checkpoint {
        slave: common.idx,
        invocation: sweep + 1,
        units: st
            .cols
            .iter()
            .map(|c| (c.id, vec![c.data.clone()]))
            .collect(),
    };
    common.fault_stats.checkpoints_sent += 1;
    common.send_master(ctx, msg);
}

fn barrier(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn PipelinedKernel,
    sweep: u64,
    is_final: bool,
) -> Result<(), ProtocolError> {
    if std::env::var_os("DLB_TRACE").is_some() {
        eprintln!(
            "[slave{} t={}] barrier sweep {sweep} cols {:?}",
            st.idx,
            ctx.now(),
            st.cols.iter().map(|c| c.id).collect::<Vec<_>>(),
        );
    }
    send_done(ctx, common, st, sweep);
    send_checkpoint(ctx, common, st, sweep);
    let fault_mode = common.ft.is_some();
    let mut silent = 0u32;
    loop {
        let env = match common.ft.clone() {
            None => common.recv_blocking(ctx, |_| true, "sweep barrier")?,
            Some(ft) => match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
                Some(env) => {
                    silent = 0;
                    env
                }
                None => {
                    // Heartbeat: our done report (or the barrier release)
                    // may have been lost; refresh it, re-sending stalled
                    // transfers and the checkpoint with it.
                    silent += 1;
                    if silent > ft.give_up_tries {
                        return Err(ProtocolError::Timeout {
                            who: slave_who(common.idx),
                            waiting_for: "sweep barrier",
                            at: ctx.now(),
                        });
                    }
                    common.resend_stalled_transfers(ctx);
                    send_done(ctx, common, st, sweep);
                    send_checkpoint(ctx, common, st, sweep);
                    continue;
                }
            },
        };
        match env.msg {
            Msg::Transfer(t) => {
                accept_transfer(ctx, common, st, kernel, t, st.nblocks)?;
                // Catch-up work done while incorporating counts toward this
                // sweep: flush it (and any movement the reply requests)
                // before refreshing the done/counters message.
                let moves = common.fire(ctx, sweep, st.active_units())?;
                let nblocks = st.nblocks;
                execute_moves(ctx, common, st, moves, nblocks)?;
                send_done(ctx, common, st, sweep);
                send_checkpoint(ctx, common, st, sweep);
            }
            Msg::Instructions(instr) => {
                // Sweep-boundary moves keep the next sweep balanced. The
                // master cannot settle (and so cannot start the next sweep
                // or the gather) until these transfers are acknowledged, so
                // executing them here is always safe — routed through the
                // shared epoch/sequence fences so a duplicated delivery
                // cannot double-execute the moves.
                let moves = common.instructions_out_of_band(instr);
                if !moves.is_empty() {
                    let nblocks = st.nblocks;
                    execute_moves(ctx, common, st, moves, nblocks)?;
                    send_done(ctx, common, st, sweep);
                    send_checkpoint(ctx, common, st, sweep);
                }
            }
            Msg::InvocationStart { invocation } => {
                if invocation == sweep + 1 && !is_final {
                    return Ok(());
                }
                if fault_mode && invocation <= sweep {
                    // Stale duplicate of an earlier release.
                    continue;
                }
                return Err(
                    common.unexpected("sweep barrier", &Msg::InvocationStart { invocation })
                );
            }
            Msg::Gather => {
                if is_final {
                    return Ok(());
                }
                return Err(common.unexpected("sweep barrier", &Msg::Gather));
            }
            Msg::Abort => return Err(ProtocolError::Aborted),
            Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
            Msg::Start { .. } | Msg::GatherAck if fault_mode => {} // duplicate deliveries
            m @ (Msg::TransferAck { .. } | Msg::Evicted { .. } | Msg::Rollback { .. }) => {
                common.control(&m)?;
            }
            other => return Err(common.unexpected("sweep barrier", &other)),
        }
    }
}

/// The final barrier consumed the Gather message; reply with our columns.
/// In fault mode, wait for the master's acknowledgement (re-sending on
/// duplicate `Gather` requests) so a dropped reply cannot lose the result.
fn reply_gather(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &State,
) -> Result<(), ProtocolError> {
    if !st.set_aside.is_empty() {
        return Err(st.inconsistent("set-aside columns at gather".into()));
    }
    let payload: Vec<(usize, UnitData)> = st
        .cols
        .iter()
        .map(|c| (c.id, vec![c.data.clone()]))
        .collect();
    let msg = Msg::GatherData {
        slave: common.idx,
        units: payload.clone(),
        fault_stats: common.fault_stats.clone(),
    };
    common.send_master(ctx, msg);
    let Some(ft) = common.ft.clone() else {
        return Ok(());
    };
    let mut tries = 0u32;
    loop {
        match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
            None => {
                tries += 1;
                if tries > ft.gather_patience {
                    // Assume the data arrived and the ack was lost.
                    return Ok(());
                }
            }
            Some(env) => match env.msg {
                Msg::Gather => {
                    tries = 0;
                    let msg = Msg::GatherData {
                        slave: common.idx,
                        units: payload.clone(),
                        fault_stats: common.fault_stats.clone(),
                    };
                    common.send_master(ctx, msg);
                }
                Msg::GatherAck | Msg::Abort => return Ok(()),
                Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
                // A peer died while the master was collecting results: the
                // rollback (or transfer-ack bookkeeping that precedes it)
                // unwinds through the shared control path so the restart
                // loop re-runs the lost sweeps.
                m @ (Msg::TransferAck { .. } | Msg::Evicted { .. } | Msg::Rollback { .. }) => {
                    common.control(&m)?;
                }
                _ => {} // stale traffic
            },
        }
    }
}
