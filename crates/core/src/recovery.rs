//! Recovery bookkeeping for fault-mode runs.

use dlb_sim::SimTime;

/// Counters describing every recovery action the master and slaves took
/// during a fault-mode run. All zero for a fault-free run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryStats {
    /// Slaves the master declared dead after `suspicion` of silence.
    pub slaves_declared_dead: u64,
    /// Virtual time of the first death declaration, if any.
    pub first_death: Option<SimTime>,
    /// Work units re-scattered from dead slaves to survivors.
    pub units_restored: u64,
    /// Work units the master recomputed locally because their owner died
    /// during the final gather.
    pub units_recomputed: u64,
    /// `Restore` messages re-sent because they went unacknowledged.
    pub restore_resends: u64,
    /// Balancer instruction messages re-sent.
    pub instr_resends: u64,
    /// `Start` messages re-sent to slaves that never spoke.
    pub start_resends: u64,
    /// `InvocationStart` barrier releases re-broadcast.
    pub invocation_start_resends: u64,
    /// `Gather` requests re-sent.
    pub gather_resends: u64,
    /// Duplicate `Status` reports discarded by hook-sequence dedup.
    pub status_dups_ignored: u64,
    /// Duplicate or stale `InvocationDone` reports discarded.
    pub done_dups_ignored: u64,
    /// Duplicate `GatherData` payloads discarded.
    pub gather_dups_ignored: u64,
}

impl RecoveryStats {
    /// Whether any recovery action happened at all.
    pub fn any(&self) -> bool {
        self != &RecoveryStats::default()
    }
}

/// Round-robin a dead slave's work units over the surviving slaves.
///
/// Returns `(survivor_index, units)` pairs in survivor order; survivors that
/// receive nothing are omitted. Deterministic: unit order and survivor order
/// fully define the result.
pub fn redistribute(units: &[usize], survivors: &[usize]) -> Vec<(usize, Vec<usize>)> {
    if survivors.is_empty() || units.is_empty() {
        return Vec::new();
    }
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); survivors.len()];
    for (i, &u) in units.iter().enumerate() {
        buckets[i % survivors.len()].push(u);
    }
    survivors
        .iter()
        .zip(buckets)
        .filter(|(_, b)| !b.is_empty())
        .map(|(&s, b)| (s, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redistribute_round_robin() {
        let out = redistribute(&[10, 11, 12, 13, 14], &[0, 2]);
        assert_eq!(out, vec![(0, vec![10, 12, 14]), (2, vec![11, 13])]);
    }

    #[test]
    fn redistribute_degenerate() {
        assert!(redistribute(&[], &[0, 1]).is_empty());
        assert!(redistribute(&[1, 2], &[]).is_empty());
        let out = redistribute(&[7], &[3]);
        assert_eq!(out, vec![(3, vec![7])]);
    }

    #[test]
    fn any_reflects_counters() {
        let mut r = RecoveryStats::default();
        assert!(!r.any());
        r.units_restored = 1;
        assert!(r.any());
    }
}
