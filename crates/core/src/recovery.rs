//! Recovery bookkeeping for fault-mode runs.

use dlb_sim::{SimDuration, SimTime};

/// Counters describing every recovery action the master and slaves took
/// during a fault-mode run. All zero for a fault-free run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryStats {
    /// Slaves the master declared dead after `suspicion` of silence.
    pub slaves_declared_dead: u64,
    /// Virtual time of the first death declaration, if any.
    pub first_death: Option<SimTime>,
    /// Work units re-scattered from dead slaves to survivors.
    pub units_restored: u64,
    /// Work units the master recomputed locally because their owner died
    /// during the final gather.
    pub units_recomputed: u64,
    /// `Restore` messages re-sent because they went unacknowledged.
    pub restore_resends: u64,
    /// Balancer instruction messages re-sent.
    pub instr_resends: u64,
    /// `Start` messages re-sent to slaves that never spoke.
    pub start_resends: u64,
    /// `InvocationStart` barrier releases re-broadcast.
    pub invocation_start_resends: u64,
    /// `Gather` requests re-sent.
    pub gather_resends: u64,
    /// Duplicate `Status` reports discarded by hook-sequence dedup.
    pub status_dups_ignored: u64,
    /// Duplicate or stale `InvocationDone` reports discarded.
    pub done_dups_ignored: u64,
    /// Duplicate `GatherData` payloads discarded.
    pub gather_dups_ignored: u64,
    /// Gathers interrupted by a death: the master evicted the silent slave
    /// and (checkpointed engines) rolled the survivors back to redo the
    /// lost work before gathering again.
    pub gathers_interrupted: u64,
    // ---- crash-safe migration (all engines) ----
    /// Complete barrier checkpoints the master banked (checkpointed
    /// engines: pipelined / shrinking).
    pub checkpoints_banked: u64,
    /// Rollbacks the master initiated (each re-scatters a checkpoint over
    /// the survivors and restarts the invocation).
    pub rollbacks: u64,
    /// Work units re-scattered by rollbacks.
    pub units_rolled_back: u64,
    /// Speculative re-executions launched for silent suspects.
    pub speculations_launched: u64,
    /// Speculations committed (the suspect was evicted and the speculated
    /// units adopted without replay).
    pub speculations_committed: u64,
    /// Speculations cancelled (the suspect spoke again).
    pub speculations_cancelled: u64,
    /// Work units adopted from committed speculation buffers.
    pub units_speculated: u64,
    /// In-flight transfer units re-owned by survivors when their peer was
    /// evicted mid-move.
    pub units_reowned: u64,
    /// Duplicate gather payload units discarded (a unit restored while a
    /// dead sender's transfer was still in flight can briefly have two
    /// owners; both copies are fully computed and identical by gather).
    pub gather_dup_units_dropped: u64,
    // ---- elastic membership ----
    /// Slaves admitted mid-run through the `Join` handshake (latecomers
    /// and rejoiners alike; each admission counts once).
    pub joins_admitted: u64,
    /// Admissions that readmitted a previously evicted slave (a heal after
    /// a false suspicion, crash restart, or network partition).
    pub rejoins_after_eviction: u64,
    /// Bytes of state the master shipped to joiners at admission (the
    /// windowed rollback/re-scatter that seeds the newcomer).
    pub join_snapshot_bytes: u64,
    /// Admission rounds that included at least one rejoining slave — each
    /// corresponds to a healed partition or recovered pool of nodes.
    pub partitions_healed: u64,
    // ---- slave-reported (folded in at gather) ----
    /// Transfer messages re-sent by slaves because they went unacked.
    pub transfer_resends: u64,
    /// Duplicate transfer deliveries discarded by sequence dedup.
    pub transfer_dups_dropped: u64,
    /// Messages discarded because they belonged to a pre-rollback epoch.
    pub stale_epoch_dropped: u64,
    /// Rollbacks applied by slaves (counts each slave separately).
    pub rollbacks_applied: u64,
    /// Barrier checkpoints shipped by slaves.
    pub checkpoints_sent: u64,
    /// Speculation requests computed by survivors.
    pub speculations_computed: u64,
    // ---- master failover ----
    /// Master elections held (a deputy reached quorum and took over).
    pub elections_held: u64,
    /// Virtual time from the winning deputy last hearing the old master to
    /// its promotion (the failover blackout), for the last election held.
    pub takeover_latency: Option<SimDuration>,
    /// Control-plane replicas published to deputies (one per live deputy
    /// per cadence point — routine traffic, not a recovery action).
    pub replicas_published: u64,
    /// Bytes of control-plane replication the master(s) sent to deputies.
    pub replication_bytes: u64,
    /// Checkpoint generations the takeover lost because the winning
    /// deputy's replica lagged the old master's bank (0 = the takeover
    /// resumed from the newest checkpoint the old master ever banked).
    pub checkpoints_lost_to_stale_replica: u64,
}

impl RecoveryStats {
    /// Whether any recovery *action* happened at all. Routine control-plane
    /// replication to deputies runs in every fault-mode run, faults or not,
    /// so it is excluded.
    pub fn any(&self) -> bool {
        let routine = RecoveryStats {
            replicas_published: self.replicas_published,
            replication_bytes: self.replication_bytes,
            ..RecoveryStats::default()
        };
        self != &routine
    }

    /// Approximate wire size when these counters travel inside a
    /// [`crate::msg::ReplicaMsg`].
    pub const WIRE_BYTES: u64 = 304;

    /// Fold one slave's locally-counted fault statistics in (at gather).
    pub fn absorb(&mut self, s: &SlaveFaultStats) {
        self.transfer_resends += s.transfer_resends;
        self.transfer_dups_dropped += s.transfer_dups_dropped;
        self.stale_epoch_dropped += s.stale_epoch_dropped;
        self.rollbacks_applied += s.rollbacks_applied;
        self.checkpoints_sent += s.checkpoints_sent;
        self.speculations_computed += s.speculations_computed;
    }
}

/// Fault-protocol counters a slave accumulates locally and reports with its
/// `GatherData` (dead slaves' counters are lost with them, which is fine —
/// the numbers are diagnostics, not protocol state).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlaveFaultStats {
    /// Transfer messages re-sent because they went unacked.
    pub transfer_resends: u64,
    /// Duplicate transfer deliveries discarded by sequence dedup.
    pub transfer_dups_dropped: u64,
    /// Messages discarded for belonging to a pre-rollback epoch.
    pub stale_epoch_dropped: u64,
    /// Rollbacks this slave applied.
    pub rollbacks_applied: u64,
    /// Barrier checkpoints this slave shipped.
    pub checkpoints_sent: u64,
    /// Speculation requests this slave computed.
    pub speculations_computed: u64,
}

/// Round-robin a dead slave's work units over the surviving slaves.
///
/// Returns `(survivor_index, units)` pairs in survivor order; survivors that
/// receive nothing are omitted. Deterministic: unit order and survivor order
/// fully define the result.
pub fn redistribute(units: &[usize], survivors: &[usize]) -> Vec<(usize, Vec<usize>)> {
    if survivors.is_empty() || units.is_empty() {
        return Vec::new();
    }
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); survivors.len()];
    for (i, &u) in units.iter().enumerate() {
        buckets[i % survivors.len()].push(u);
    }
    survivors
        .iter()
        .zip(buckets)
        .filter(|(_, b)| !b.is_empty())
        .map(|(&s, b)| (s, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redistribute_round_robin() {
        let out = redistribute(&[10, 11, 12, 13, 14], &[0, 2]);
        assert_eq!(out, vec![(0, vec![10, 12, 14]), (2, vec![11, 13])]);
    }

    #[test]
    fn redistribute_degenerate() {
        assert!(redistribute(&[], &[0, 1]).is_empty());
        assert!(redistribute(&[1, 2], &[]).is_empty());
        let out = redistribute(&[7], &[3]);
        assert_eq!(out, vec![(3, vec![7])]);
    }

    #[test]
    fn any_reflects_counters() {
        let mut r = RecoveryStats::default();
        assert!(!r.any());
        r.units_restored = 1;
        assert!(r.any());
    }
}
