//! Typed runtime errors and fault-tolerance configuration.
//!
//! The runtime never panics on protocol trouble: masters and slaves return
//! [`ProtocolError`] values, slaves ship theirs to the master in
//! [`crate::msg::Msg::SlaveError`], and the driver surfaces everything as a
//! [`RunError`] carrying the partial measurements of the failed run.

use crate::balancer::BalancerStats;
use crate::master::TimelineSample;
use crate::recovery::RecoveryStats;
use dlb_sim::{SimDuration, SimReport, SimTime};
use std::fmt;

/// A protocol-level failure in the master/slave runtime.
///
/// `Clone` because slave errors travel to the master inside a message.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolError {
    /// A message arrived that the receiver's protocol state cannot accept.
    UnexpectedMessage {
        /// Who was confused: `"master"` or `"slave N"`.
        who: String,
        /// What the receiver was doing.
        context: &'static str,
        /// Debug rendering of the offending message (truncated).
        message: String,
    },
    /// A blocking protocol step exceeded its deadline (fault mode only).
    Timeout {
        who: String,
        waiting_for: &'static str,
        at: SimTime,
    },
    /// Shrinking engine: an update needed a pivot that never arrived.
    MissingPivot {
        step: usize,
        column: usize,
        slave: usize,
    },
    /// Pipelined engine: a work transfer arrived from a non-adjacent slave.
    NonNeighborTransfer { from: usize, to: usize, sweep: u64 },
    /// The master declared this slave dead after `suspicion` of silence.
    SlaveDead { slave: usize, at: SimTime },
    /// Every slave was declared dead; nobody is left to run the program.
    AllSlavesDead,
    /// A slave reported a fatal error of its own.
    SlaveFailed {
        slave: usize,
        error: Box<ProtocolError>,
    },
    /// The master told this process to stop (propagated, not reported).
    Aborted,
    /// The master evicted this slave after (possibly false) suspicion.
    Evicted { slave: usize },
    /// Internal control flow, never surfaced to the driver: a
    /// [`crate::msg::Msg::Rollback`] arrived inside a blocking receive and
    /// the checkpointed engine must unwind to its restart loop to apply it
    /// (the payload is stashed in `SlaveCommon::pending_rollback`).
    RolledBack,
    /// Bookkeeping that must balance did not (lost/duplicated units, bad
    /// completion counts).
    Inconsistent { detail: String },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnexpectedMessage {
                who,
                context,
                message,
            } => {
                write!(f, "{who}: unexpected message at {context}: {message}")
            }
            ProtocolError::Timeout {
                who,
                waiting_for,
                at,
            } => {
                write!(f, "{who}: timed out at t={at} waiting for {waiting_for}")
            }
            ProtocolError::MissingPivot {
                step,
                column,
                slave,
            } => write!(
                f,
                "slave {slave}: missing pivot {step} while updating column {column}"
            ),
            ProtocolError::NonNeighborTransfer { from, to, sweep } => write!(
                f,
                "slave {to}: transfer from non-neighbor {from} in sweep {sweep}"
            ),
            ProtocolError::SlaveDead { slave, at } => {
                write!(f, "slave {slave} declared dead at t={at}")
            }
            ProtocolError::AllSlavesDead => write!(f, "all slaves declared dead"),
            ProtocolError::SlaveFailed { slave, error } => {
                write!(f, "slave {slave} failed: {error}")
            }
            ProtocolError::Aborted => write!(f, "aborted by master"),
            ProtocolError::Evicted { slave } => write!(f, "slave {slave} evicted"),
            ProtocolError::RolledBack => {
                write!(f, "rollback in progress (internal control flow)")
            }
            ProtocolError::Inconsistent { detail } => {
                write!(f, "inconsistent bookkeeping: {detail}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// `who` strings for error construction.
pub(crate) fn slave_who(idx: usize) -> String {
    format!("slave {idx}")
}

/// Timeouts and retry bounds for fault-mode runs.
///
/// All values are virtual time. The defaults suit the chaos tests (unit
/// compute times well under a second); `suspicion` must comfortably exceed
/// the longest stretch a healthy slave can go without sending anything —
/// roughly one unit compute plus the balancing period — or healthy slaves
/// get evicted.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultToleranceConfig {
    /// Master receive granularity: how often it checks timers.
    pub master_tick: SimDuration,
    /// Silence after which the master declares a slave dead.
    pub suspicion: SimDuration,
    /// Silence after which the master speculatively races the suspect's
    /// units on an idle survivor (independent engine; must be below
    /// `suspicion` to buy anything).
    pub speculate_after: SimDuration,
    /// Silence after which the master re-sends control messages
    /// (Start / InvocationStart / Restore / Gather).
    pub nudge: SimDuration,
    /// Maximum re-sends of one unacknowledged instruction message.
    pub instr_retries: u32,
    /// Idle-slave heartbeat: how often an idle slave re-sends its
    /// `InvocationDone`.
    pub slave_heartbeat: SimDuration,
    /// Deadline for any single blocking protocol step on a slave
    /// (pipelined/shrinking waits, start-up).
    pub op_timeout: SimDuration,
    /// Heartbeats an idle slave tolerates with no traffic at all before
    /// giving up on the master.
    pub give_up_tries: u32,
    /// Heartbeats a slave waits for a gather acknowledgement before
    /// assuming its data arrived and exiting.
    pub gather_patience: u32,
    /// Adaptive checkpoint cadence: the most consecutive barriers a slave
    /// may skip snapshotting when restarts look cheap. Zero disables the
    /// adaptation (a checkpoint at every barrier — the safest cadence).
    pub ckpt_max_skip: u64,
    /// Adaptive checkpoint cadence: target bound on the expected recompute
    /// time a rollback may cost. The stride is chosen so that
    /// `stride × EMA(invocation time)` stays at or under this budget.
    pub ckpt_loss_budget: SimDuration,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            master_tick: SimDuration::from_millis(250),
            suspicion: SimDuration::from_secs(8),
            speculate_after: SimDuration::from_secs(4),
            nudge: SimDuration::from_secs(2),
            instr_retries: 3,
            slave_heartbeat: SimDuration::from_secs(1),
            op_timeout: SimDuration::from_secs(30),
            give_up_tries: 90,
            gather_patience: 10,
            ckpt_max_skip: 0,
            ckpt_loss_budget: SimDuration::from_secs(2),
        }
    }
}

/// A failed run: the typed cause plus everything that was still measurable.
#[derive(Debug)]
pub struct RunError {
    pub error: ProtocolError,
    /// Total virtual time until the run stopped.
    pub elapsed: SimDuration,
    pub stats: BalancerStats,
    pub recovery: RecoveryStats,
    pub timeline: Vec<TimelineSample>,
    /// Full simulator report (fault counters, trace hash, per-node CPU).
    pub sim: SimReport,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run failed after {}: {}", self.elapsed, self.error)
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::MissingPivot {
            step: 3,
            column: 7,
            slave: 1,
        };
        assert!(e.to_string().contains("pivot 3"));
        let e = ProtocolError::SlaveFailed {
            slave: 2,
            error: Box::new(ProtocolError::Aborted),
        };
        assert!(e.to_string().contains("slave 2"));
    }

    #[test]
    fn defaults_are_ordered_sanely() {
        let t = FaultToleranceConfig::default();
        assert!(t.master_tick < t.nudge);
        assert!(t.nudge < t.suspicion);
        assert!(t.slave_heartbeat < t.suspicion);
        assert!(t.speculate_after < t.suspicion);
        assert!(t.suspicion < t.op_timeout);
    }
}
