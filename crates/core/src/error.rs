//! Typed runtime errors and fault-tolerance configuration.
//!
//! The runtime never panics on protocol trouble: masters and slaves return
//! [`ProtocolError`] values, slaves ship theirs to the master in
//! [`crate::msg::Msg::SlaveError`], and the driver surfaces everything as a
//! [`RunError`] carrying the partial measurements of the failed run.

use crate::balancer::BalancerStats;
use crate::master::TimelineSample;
use crate::recovery::RecoveryStats;
use dlb_sim::{SimDuration, SimReport, SimTime};
use std::fmt;

/// A protocol-level failure in the master/slave runtime.
///
/// `Clone` because slave errors travel to the master inside a message.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolError {
    /// A message arrived that the receiver's protocol state cannot accept.
    UnexpectedMessage {
        /// Who was confused: `"master"` or `"slave N"`.
        who: String,
        /// What the receiver was doing.
        context: &'static str,
        /// Debug rendering of the offending message (truncated).
        message: String,
    },
    /// A blocking protocol step exceeded its deadline (fault mode only).
    Timeout {
        who: String,
        waiting_for: &'static str,
        at: SimTime,
    },
    /// Shrinking engine: an update needed a pivot that never arrived.
    MissingPivot {
        step: usize,
        column: usize,
        slave: usize,
    },
    /// Pipelined engine: a work transfer arrived from a non-adjacent slave.
    NonNeighborTransfer { from: usize, to: usize, sweep: u64 },
    /// The master declared this slave dead after `suspicion` of silence.
    SlaveDead { slave: usize, at: SimTime },
    /// Every slave was declared dead; nobody is left to run the program.
    AllSlavesDead,
    /// A slave reported a fatal error of its own.
    SlaveFailed {
        slave: usize,
        error: Box<ProtocolError>,
    },
    /// The master told this process to stop (propagated, not reported).
    Aborted,
    /// The master evicted this slave after (possibly false) suspicion.
    Evicted { slave: usize },
    /// This slave exhausted its rejoin budget: every `Msg::Join` attempt
    /// was refused, dropped, or outlived its backoff window. The slave
    /// exits silently, like an eviction it could not reverse.
    JoinRefused { slave: usize, attempts: u32 },
    /// Internal control flow, never surfaced to the driver: a
    /// [`crate::msg::Msg::Rollback`] arrived inside a blocking receive and
    /// the checkpointed engine must unwind to its restart loop to apply it
    /// (the payload is stashed in `SlaveCommon::pending_rollback`).
    RolledBack,
    /// Internal control flow, never surfaced to the driver: this slave won
    /// a master election and must unwind its engine to take over as master
    /// (the takeover seed is stashed in `SlaveCommon::takeover`).
    Elected { term: u64 },
    /// A newer master was elected while this master still believed it was
    /// in charge (it was frozen, not dead). The superseded master exits
    /// silently: no abort broadcast, no outcome write — the new master owns
    /// the run now.
    Superseded { term: u64 },
    /// Bookkeeping that must balance did not (lost/duplicated units, bad
    /// completion counts).
    Inconsistent { detail: String },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnexpectedMessage {
                who,
                context,
                message,
            } => {
                write!(f, "{who}: unexpected message at {context}: {message}")
            }
            ProtocolError::Timeout {
                who,
                waiting_for,
                at,
            } => {
                write!(f, "{who}: timed out at t={at} waiting for {waiting_for}")
            }
            ProtocolError::MissingPivot {
                step,
                column,
                slave,
            } => write!(
                f,
                "slave {slave}: missing pivot {step} while updating column {column}"
            ),
            ProtocolError::NonNeighborTransfer { from, to, sweep } => write!(
                f,
                "slave {to}: transfer from non-neighbor {from} in sweep {sweep}"
            ),
            ProtocolError::SlaveDead { slave, at } => {
                write!(f, "slave {slave} declared dead at t={at}")
            }
            ProtocolError::AllSlavesDead => write!(f, "all slaves declared dead"),
            ProtocolError::SlaveFailed { slave, error } => {
                write!(f, "slave {slave} failed: {error}")
            }
            ProtocolError::Aborted => write!(f, "aborted by master"),
            ProtocolError::Evicted { slave } => write!(f, "slave {slave} evicted"),
            ProtocolError::JoinRefused { slave, attempts } => {
                write!(f, "slave {slave}: join refused after {attempts} attempts")
            }
            ProtocolError::RolledBack => {
                write!(f, "rollback in progress (internal control flow)")
            }
            ProtocolError::Elected { term } => {
                write!(f, "elected master for term {term} (internal control flow)")
            }
            ProtocolError::Superseded { term } => {
                write!(f, "superseded by the master elected in term {term}")
            }
            ProtocolError::Inconsistent { detail } => {
                write!(f, "inconsistent bookkeeping: {detail}")
            }
        }
    }
}

impl ProtocolError {
    /// Approximate payload size when this error travels inside a
    /// [`crate::msg::Msg::SlaveError`]: the variant's actual fields, not a
    /// flat guess — long diagnostics must be charged to the network model.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            ProtocolError::UnexpectedMessage {
                who,
                context,
                message,
            } => (who.len() + context.len() + message.len()) as u64,
            ProtocolError::Timeout {
                who, waiting_for, ..
            } => 8 + (who.len() + waiting_for.len()) as u64,
            ProtocolError::MissingPivot { .. } => 24,
            ProtocolError::NonNeighborTransfer { .. } => 24,
            ProtocolError::SlaveDead { .. } => 16,
            ProtocolError::AllSlavesDead => 0,
            ProtocolError::SlaveFailed { error, .. } => 8 + error.payload_bytes(),
            ProtocolError::Aborted | ProtocolError::RolledBack => 0,
            ProtocolError::Evicted { .. } => 8,
            ProtocolError::JoinRefused { .. } => 12,
            ProtocolError::Elected { .. } | ProtocolError::Superseded { .. } => 8,
            ProtocolError::Inconsistent { detail } => detail.len() as u64,
        }
    }
}

impl std::error::Error for ProtocolError {}

/// `who` strings for error construction.
pub(crate) fn slave_who(idx: usize) -> String {
    format!("slave {idx}")
}

/// Timeouts and retry bounds for fault-mode runs.
///
/// All values are virtual time. The defaults suit the chaos tests (unit
/// compute times well under a second); `suspicion` must comfortably exceed
/// the longest stretch a healthy slave can go without sending anything —
/// roughly one unit compute plus the balancing period — or healthy slaves
/// get evicted.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultToleranceConfig {
    /// Master receive granularity: how often it checks timers.
    pub master_tick: SimDuration,
    /// Silence after which the master declares a slave dead.
    pub suspicion: SimDuration,
    /// Silence after which the master speculatively races the suspect's
    /// units on an idle survivor (independent engine; must be below
    /// `suspicion` to buy anything).
    pub speculate_after: SimDuration,
    /// Silence after which the master re-sends control messages
    /// (Start / InvocationStart / Restore / Gather).
    pub nudge: SimDuration,
    /// Maximum re-sends of one unacknowledged instruction message.
    pub instr_retries: u32,
    /// Idle-slave heartbeat: how often an idle slave re-sends its
    /// `InvocationDone`.
    pub slave_heartbeat: SimDuration,
    /// Deadline for any single blocking protocol step on a slave
    /// (pipelined/shrinking waits, start-up).
    pub op_timeout: SimDuration,
    /// Heartbeats an idle slave tolerates with no traffic at all before
    /// giving up on the master.
    pub give_up_tries: u32,
    /// Heartbeats a slave waits for a gather acknowledgement before
    /// assuming its data arrived and exiting.
    pub gather_patience: u32,
    /// Adaptive checkpoint cadence: the most consecutive barriers a slave
    /// may skip snapshotting when restarts look cheap. Zero disables the
    /// adaptation (a checkpoint at every barrier — the safest cadence).
    pub ckpt_max_skip: u64,
    /// Adaptive checkpoint cadence: target bound on the expected recompute
    /// time a rollback may cost. The stride is chosen so that
    /// `stride × EMA(invocation time)` stays at or under this budget.
    pub ckpt_loss_budget: SimDuration,
    /// Master failover: size of the deputy set (the lowest-ranked slaves
    /// that receive control-plane replicas and may stand for election when
    /// the master falls silent). Clamped to the slave count; an election
    /// needs a majority of the deputy set, so 3 tolerates one dead deputy.
    pub deputies: usize,
    /// Master failover: how often the master pings its deputies when it has
    /// no protocol traffic for them (the master-side analogue of
    /// `slave_heartbeat`; defers the election trigger only).
    pub master_heartbeat: SimDuration,
    /// Master failover: master silence (neither protocol traffic nor pings)
    /// after which the rank-0 deputy stands for election.
    pub master_suspicion: SimDuration,
    /// Master failover: extra silence per deputy rank before standing, so
    /// the lowest live rank with a fresh replica wins without a vote split.
    /// Must exceed `slave_heartbeat`: the election timer is checked from
    /// heartbeat slices, so a finer stagger cannot separate two deputies
    /// whose timer wakes happen to align — they would stand in the same
    /// slice, cross candidacies, and each refuse the other (both spent
    /// their term's vote on themselves) term after term.
    pub election_stagger: SimDuration,
    /// Master failover: replication cadence — publish a control-plane
    /// replica to the deputies every this-many settled invocations
    /// (1 = every barrier; larger values trade replication bytes for a
    /// staler takeover point).
    pub replicate_every: u64,
    /// Elastic membership: how many times an evicted (or late-starting)
    /// slave re-sends `Msg::Join` before giving up with
    /// [`ProtocolError::JoinRefused`]. Zero disables rejoin entirely —
    /// eviction stays final and joiners never form (the default, matching
    /// the fail-stop model).
    pub rejoin_attempts: u32,
    /// Elastic membership: base delay between join attempts. Doubles each
    /// retry (with deterministic per-slave jitter) so refused joiners
    /// cannot hot-loop the master; capped at 8× the base.
    pub rejoin_backoff: SimDuration,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            master_tick: SimDuration::from_millis(250),
            suspicion: SimDuration::from_secs(8),
            speculate_after: SimDuration::from_secs(4),
            nudge: SimDuration::from_secs(2),
            instr_retries: 3,
            slave_heartbeat: SimDuration::from_secs(1),
            op_timeout: SimDuration::from_secs(30),
            give_up_tries: 90,
            gather_patience: 10,
            ckpt_max_skip: 0,
            ckpt_loss_budget: SimDuration::from_secs(2),
            deputies: 3,
            master_heartbeat: SimDuration::from_secs(1),
            master_suspicion: SimDuration::from_secs(8),
            election_stagger: SimDuration::from_secs(2),
            replicate_every: 1,
            rejoin_attempts: 0,
            rejoin_backoff: SimDuration::from_secs(2),
        }
    }
}

/// A failed run: the typed cause plus everything that was still measurable.
#[derive(Debug)]
pub struct RunError {
    pub error: ProtocolError,
    /// Total virtual time until the run stopped.
    pub elapsed: SimDuration,
    pub stats: BalancerStats,
    pub recovery: RecoveryStats,
    pub timeline: Vec<TimelineSample>,
    /// Full simulator report (fault counters, trace hash, per-node CPU).
    pub sim: SimReport,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run failed after {}: {}", self.elapsed, self.error)
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::MissingPivot {
            step: 3,
            column: 7,
            slave: 1,
        };
        assert!(e.to_string().contains("pivot 3"));
        let e = ProtocolError::SlaveFailed {
            slave: 2,
            error: Box::new(ProtocolError::Aborted),
        };
        assert!(e.to_string().contains("slave 2"));
    }

    #[test]
    fn defaults_are_ordered_sanely() {
        let t = FaultToleranceConfig::default();
        assert!(t.master_tick < t.nudge);
        assert!(t.nudge < t.suspicion);
        assert!(t.slave_heartbeat < t.suspicion);
        assert!(t.speculate_after < t.suspicion);
        assert!(t.suspicion < t.op_timeout);
        // Failover: the master's pings must outpace the election trigger by
        // a wide margin, the stagger must separate candidacies well inside
        // one suspicion window, and the whole election must finish long
        // before blocked slaves give up on the run.
        assert!(t.master_heartbeat * 4 <= t.master_suspicion);
        assert!(t.election_stagger * (t.deputies as u64) < t.master_suspicion);
        assert!(
            t.election_stagger > t.slave_heartbeat,
            "a stagger finer than the heartbeat tick cannot separate candidacies"
        );
        assert!(
            t.master_suspicion + t.election_stagger * (t.deputies as u64) < t.op_timeout,
            "an election must complete within one op timeout"
        );
        assert!(t.deputies >= 1);
        assert!(t.replicate_every >= 1);
        assert_eq!(t.rejoin_attempts, 0, "rejoin is opt-in");
        assert!(
            t.rejoin_backoff >= t.nudge,
            "joiners must not out-chatter the master's own nudge cadence"
        );
    }

    #[test]
    fn payload_bytes_follow_the_variant() {
        assert_eq!(ProtocolError::Aborted.payload_bytes(), 0);
        let long = ProtocolError::Inconsistent {
            detail: "y".repeat(300),
        };
        assert_eq!(long.payload_bytes(), 300);
        let nested = ProtocolError::SlaveFailed {
            slave: 1,
            error: Box::new(long),
        };
        assert_eq!(nested.payload_bytes(), 308);
    }
}
