//! Top-level driver: build the simulated cluster, wire master and slaves,
//! run, and collect a [`RunReport`].
//!
//! Two entry points: [`try_run`] returns `Result` and is the only way to
//! observe a fault-injected run's typed failure; [`run`] is the historical
//! panicking wrapper for fault-free callers.

use crate::balancer::{Balancer, BalancerConfig, InteractionMode};
use crate::engine_independent::IndependentSlave;
use crate::engine_pipelined::PipelinedSlave;
use crate::engine_shrinking::ShrinkingSlave;
use crate::error::{FaultToleranceConfig, ProtocolError, RunError};
use crate::kernels::{IndependentKernel, PipelinedKernel, ShrinkingKernel};
use crate::master::{
    run_master, MasterConfig, MasterFt, MasterOutcome, TakeoverKit, TimelineSample,
};
use crate::msg::{Msg, UnitData};
use crate::recovery::RecoveryStats;
use dlb_compiler::{grain_iterations, GrainPolicy, ParallelPlan, Pattern};
use dlb_sim::{
    CpuWork, FaultPlan, NetConfig, NodeConfig, SimBuilder, SimDuration, SimReport, SimTime,
};
use std::sync::{Arc, Mutex};

/// The application to run: one kernel per compiler pattern.
#[derive(Clone)]
pub enum AppSpec {
    Independent(Arc<dyn IndependentKernel>),
    Pipelined(Arc<dyn PipelinedKernel>),
    Shrinking(Arc<dyn ShrinkingKernel>),
}

/// Which slave engine the runtime uses for a plan. Factored out of
/// [`try_run`]'s dispatch so static analysis (`dlb-analyze`'s agreement
/// check) can ask "which engine would actually run?" without running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    Independent,
    Pipelined,
    Shrinking,
}

/// The engine [`try_run`] selects for `plan` — dispatch is purely on the
/// plan's pattern, and [`try_run`] asserts the kernel agrees.
pub fn engine_for(plan: &ParallelPlan) -> EngineKind {
    match plan.pattern {
        Pattern::Independent => EngineKind::Independent,
        Pattern::Pipelined => EngineKind::Pipelined,
        Pattern::Shrinking => EngineKind::Shrinking,
    }
}

impl AppSpec {
    fn pattern(&self) -> Pattern {
        match self {
            AppSpec::Independent(_) => Pattern::Independent,
            AppSpec::Pipelined(_) => Pattern::Pipelined,
            AppSpec::Shrinking(_) => Pattern::Shrinking,
        }
    }

    fn n_units(&self) -> usize {
        match self {
            AppSpec::Independent(k) => k.n_units(),
            AppSpec::Pipelined(k) => k.n_units(),
            AppSpec::Shrinking(k) => k.n_units(),
        }
    }
}

/// How the initial block distribution is sized (§3.2 note: the paper
/// starts equal and lets measured rates correct it; speed-proportional
/// startup is a natural extension when relative speeds are known).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StartupDistribution {
    /// Equal block sizes (the paper's choice).
    #[default]
    Equal,
    /// Blocks proportional to configured node speeds.
    SpeedProportional,
}

/// Cluster + policy configuration for one run.
pub struct RunConfig {
    /// One node per slave (speed, quantum, competing load).
    pub slave_nodes: Vec<NodeConfig>,
    /// The master's node (dedicated by default).
    pub master_node: NodeConfig,
    pub net: NetConfig,
    pub balancer: BalancerConfig,
    /// CPU charged per hook check on slaves.
    pub hook_check_cpu: CpuWork,
    /// CPU charged per status decision on the master.
    pub decision_cpu: CpuWork,
    /// Record the master's balancing timeline (Fig. 9).
    pub record_timeline: bool,
    /// Initial block sizing.
    pub startup: StartupDistribution,
    /// Deterministic fault injection. `Some` switches the runtime into
    /// fault mode: the fault-tolerant control loops run on both sides with
    /// the dynamic balancer live — in-flight moves survive drops,
    /// duplicates, and crashes of either endpoint through the sequenced
    /// transfer-window protocol. The pipelined interaction mode is forced
    /// (a synchronous hook must never block on a droppable Instructions
    /// message).
    pub fault_plan: Option<FaultPlan>,
    /// Timeouts and retry bounds used when `fault_plan` is set.
    pub fault_tolerance: FaultToleranceConfig,
    /// Record the kernel event trace into `RunReport::sim.trace` (the
    /// `dlb-lint --conform` input). Election messages are tagged via
    /// [`Msg::trace_tag`]; off by default — traces grow with every send.
    pub record_trace: bool,
    /// Latecomers: `(slave index, join time)` pairs. A listed slave starts
    /// with an empty assignment (its slot is carved out of the initial
    /// distribution), idles until the given instant, then joins the running
    /// pool via the [`Msg::Join`] handshake — the master admits it at the
    /// next barrier and re-scatters work onto it. Requires fault mode and
    /// `fault_tolerance.rejoin_attempts > 0`.
    pub late_joiners: Vec<(usize, SimTime)>,
}

impl RunConfig {
    /// A homogeneous dedicated cluster of `n` reference-speed slaves.
    pub fn homogeneous(n: usize) -> RunConfig {
        RunConfig {
            slave_nodes: vec![NodeConfig::default(); n],
            master_node: NodeConfig::default(),
            net: NetConfig::default(),
            balancer: BalancerConfig::default(),
            hook_check_cpu: CpuWork::from_micros(10),
            decision_cpu: CpuWork::from_micros(200),
            record_timeline: false,
            startup: StartupDistribution::Equal,
            fault_plan: None,
            fault_tolerance: FaultToleranceConfig::default(),
            record_trace: false,
            late_joiners: Vec::new(),
        }
    }
}

/// Everything measured in one run.
#[derive(Debug)]
pub struct RunReport {
    /// Total virtual time, including gather.
    pub elapsed: SimDuration,
    /// Virtual time until the last invocation settled (compute only).
    pub compute_time: SimDuration,
    /// Final unit data, ordered by unit id.
    pub result: Vec<UnitData>,
    pub timeline: Vec<TimelineSample>,
    pub stats: crate::balancer::BalancerStats,
    pub bounds: Option<crate::frequency::PeriodBounds>,
    /// Recovery actions taken; all-zero outside fault mode.
    pub recovery: RecoveryStats,
    pub sim: SimReport,
    pub n_slaves: usize,
}

impl RunReport {
    /// The paper's efficiency metric (§5.1):
    /// `seq_time / Σ_slaves (elapsed − competing_cpu)`.
    ///
    /// `seq_time` is the sequential execution time on one dedicated
    /// reference node. Only slave nodes count (nodes `1..=n_slaves`; node 0
    /// is the master).
    pub fn efficiency(&self, seq_time: SimDuration) -> f64 {
        let mut denom = 0.0;
        for i in 0..self.n_slaves {
            let node = dlb_sim::NodeId(i + 1);
            denom += self
                .sim
                .available_cpu(node)
                .as_secs_f64()
                .min(self.compute_time.as_secs_f64());
        }
        seq_time.as_secs_f64() / denom
    }

    /// Speedup relative to a sequential run.
    pub fn speedup(&self, seq_time: SimDuration) -> f64 {
        seq_time.as_secs_f64() / self.compute_time.as_secs_f64()
    }
}

/// Run `app` (compiled to `plan`) on the configured cluster.
///
/// Panicking wrapper around [`try_run`] for fault-free callers. Panics on
/// configuration mismatches and on any [`RunError`].
pub fn run(app: AppSpec, plan: &ParallelPlan, cfg: RunConfig) -> RunReport {
    try_run(app, plan, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Run `app` (compiled to `plan`) on the configured cluster.
///
/// The plan supplies the movement rule, grain policy, and per-unit movement
/// size estimate; the kernel supplies data and costs. Panics if the plan's
/// pattern does not match the kernel's (caller bug, not a runtime fault);
/// every runtime failure — including everything fault injection can
/// provoke — comes back as a boxed [`RunError`] carrying the partial
/// measurements.
pub fn try_run(
    app: AppSpec,
    plan: &ParallelPlan,
    cfg: RunConfig,
) -> Result<RunReport, Box<RunError>> {
    assert_eq!(
        plan.pattern,
        app.pattern(),
        "plan pattern does not match kernel"
    );
    let n_slaves = cfg.slave_nodes.len();
    assert!(n_slaves > 0, "need at least one slave");
    let n_units = app.n_units();
    assert!(n_units >= n_slaves, "fewer units than slaves");
    let fault_mode = cfg.fault_plan.is_some();

    // Latecomer slots: carved out of the initial distribution, parked until
    // their join time, admitted mid-run through the elastic-membership
    // handshake.
    let late_at: Vec<Option<SimTime>> = {
        let mut v = vec![None; n_slaves];
        for &(i, at) in &cfg.late_joiners {
            assert!(i < n_slaves, "late joiner index {i} out of range");
            v[i] = Some(at);
        }
        v
    };
    if !cfg.late_joiners.is_empty() {
        assert!(fault_mode, "late joiners require fault mode");
        assert!(
            cfg.fault_tolerance.rejoin_attempts > 0,
            "late joiners require rejoin_attempts > 0"
        );
    }
    let active: Vec<usize> = (0..n_slaves).filter(|&i| late_at[i].is_none()).collect();
    assert!(
        !active.is_empty(),
        "need at least one slave present at start"
    );

    // Initial block distribution over the slaves present at start; late
    // slots get an empty range at the boundary they sit on.
    let active_ranges: Vec<(usize, usize)> = match cfg.startup {
        StartupDistribution::Equal => block_ranges(n_units, active.len()),
        StartupDistribution::SpeedProportional => {
            let speeds: Vec<f64> = active.iter().map(|&i| cfg.slave_nodes[i].speed).collect();
            let shares = crate::alloc::proportional_allocation(n_units as u64, &speeds, 1);
            let mut lo = 0usize;
            shares
                .iter()
                .map(|&s| {
                    let r = (lo, lo + s as usize);
                    lo = r.1;
                    r
                })
                .collect()
        }
    };
    let assignment: Vec<(usize, usize)> = {
        let mut out = Vec::with_capacity(n_slaves);
        let mut k = 0usize;
        let mut cursor = 0usize;
        for late in late_at.iter().take(n_slaves) {
            if late.is_none() {
                let r = active_ranges[k];
                k += 1;
                cursor = r.1;
                out.push(r);
            } else {
                out.push((cursor, cursor));
            }
        }
        out
    };
    let initial_owned: Vec<u64> = assignment.iter().map(|&(l, h)| (h - l) as u64).collect();

    // Grain selection (§4.4): pipelined block size from the cost model, the
    // OS quantum, and the startup distribution.
    let quantum = cfg.master_node.quantum;
    let (block_rows, _nblocks, invocations, units_scale): (u64, u64, u64, f64) = match &app {
        AppSpec::Independent(k) => (1, 1, k.invocations(), 1.0),
        AppSpec::Pipelined(k) => {
            let rows = (k.col_len() - 2) as u64;
            let local_cols = (n_units / n_slaves).max(1) as u64;
            let per_row = k.elem_cost().dedicated_duration(1.0) * local_cols;
            let block = match plan.grain {
                GrainPolicy::FixedBlock { iterations } => iterations.clamp(1, rows),
                GrainPolicy::AutoBlock { quantum_factor } => {
                    grain_iterations(per_row, quantum, quantum_factor, rows)
                }
                GrainPolicy::Unit => 1,
            };
            let nblocks = rows.div_ceil(block);
            // Work deltas are counted in column-rows; `rows` of them make
            // one column (the allocation unit).
            (block, nblocks, k.sweeps(), rows as f64)
        }
        AppSpec::Shrinking(k) => (1, 1, (k.n_units() as u64).saturating_sub(1), 1.0),
    };

    // Movement-time estimate per unit: wire + latency from the plan's size.
    let per_unit_move_est = {
        let xfer = cfg.net.transfer_time(plan.unit_bytes);
        cfg.net.latency + xfer
    };

    let mut balancer_cfg = cfg.balancer.clone();
    balancer_cfg.movement = plan.movement;
    if matches!(app.pattern(), Pattern::Shrinking) {
        // LU: late steps have fewer active columns than slaves.
        balancer_cfg.min_per_slave = 0;
    }
    let slave_mode = if fault_mode {
        // Balancing stays live under fault injection: transfers ride the
        // sequenced per-channel windows and evictions fence every channel
        // before units are re-scattered, so movement and crash recovery
        // compose. Only the interaction mode is forced — a synchronous-mode
        // hook blocking on a droppable Instructions message could stall a
        // healthy slave forever.
        balancer_cfg.mode = InteractionMode::Pipelined;
        InteractionMode::Pipelined
    } else {
        cfg.balancer.mode
    };
    // Expected work units (in allocation units) between hook firings: one
    // hook per unit for the independent/shrinking engines, one hook per row
    // block (= local_cols / nblocks columns of progress) for the pipelined
    // engine.
    let units_per_hook = match &app {
        AppSpec::Pipelined(k) => {
            // One hook per row block: local_cols × block_rows column-rows,
            // i.e. local_cols × block_rows / rows allocation units.
            let rows = (k.col_len() - 2) as f64;
            (n_units as f64 / n_slaves as f64) * block_rows as f64 / rows
        }
        _ => 1.0,
    };
    // The whole master configuration is built by a factory so a promoted
    // deputy can rebuild the master role from scratch mid-run (the balancer
    // is not replicated — the new reign re-learns rates from the first
    // statuses it sees).
    let make_master_cfg: Arc<dyn Fn() -> MasterConfig + Send + Sync> = {
        let app = app.clone();
        let tol = cfg.fault_tolerance.clone();
        let decision_cpu = cfg.decision_cpu;
        let record_timeline = cfg.record_timeline;
        Arc::new(move || {
            let mut balancer = Balancer::new(
                balancer_cfg.clone(),
                initial_owned.clone(),
                quantum,
                per_unit_move_est,
                invocations,
                units_per_hook,
            );
            balancer.set_units_scale(units_scale);

            // Expected completions per invocation.
            let expected_units: Box<dyn Fn(u64) -> u64 + Send> = match &app {
                AppSpec::Independent(_) => {
                    let n = n_units as u64;
                    Box::new(move |_| n)
                }
                AppSpec::Pipelined(k) => {
                    let n = n_units as u64;
                    let rows = (k.col_len() - 2) as u64;
                    Box::new(move |_| n * rows)
                }
                AppSpec::Shrinking(_) => {
                    let n = n_units as u64;
                    Box::new(move |k| n - 1 - k)
                }
            };
            let converged: Box<dyn Fn(u64, f64) -> bool + Send> = match &app {
                AppSpec::Independent(k) => {
                    let k = Arc::clone(k);
                    Box::new(move |inv, metric| k.converged(inv, metric))
                }
                _ => Box::new(|_, _| false),
            };
            // Fault mode wires the master's failure detector. The
            // independent pattern gets the unit-reconstruction closures that
            // enable in-place recovery; pipelined/shrinking get the
            // epoch-zero snapshot closure that seeds checkpoint rollback.
            let ft = if fault_mode {
                use crate::master::{InitUnitFn, RecomputeUnitFn};
                let (init_unit, recompute_unit, checkpoint_init): (
                    Option<InitUnitFn>,
                    Option<RecomputeUnitFn>,
                    Option<InitUnitFn>,
                ) = match &app {
                    AppSpec::Independent(k) => {
                        let ki = Arc::clone(k);
                        let kr = Arc::clone(k);
                        (
                            Some(Box::new(move |id| ki.init_unit(id))),
                            Some(Box::new(move |id, invs| {
                                let mut d = kr.init_unit(id);
                                for i in 0..invs {
                                    kr.compute(id, &mut d, i);
                                }
                                d
                            })),
                            None,
                        )
                    }
                    AppSpec::Pipelined(k) => {
                        let kp = Arc::clone(k);
                        (
                            None,
                            None,
                            Some(Box::new(move |id| vec![kp.init_unit(id)]) as InitUnitFn),
                        )
                    }
                    AppSpec::Shrinking(k) => {
                        let kp = Arc::clone(k);
                        (
                            None,
                            None,
                            Some(Box::new(move |id| vec![kp.init_unit(id)]) as InitUnitFn),
                        )
                    }
                };
                Some(MasterFt {
                    tolerance: tol.clone(),
                    init_unit,
                    recompute_unit,
                    checkpoint_init,
                })
            } else {
                None
            };
            MasterConfig {
                balancer,
                invocations,
                expected_units,
                units_per_hook: None,
                decision_cpu,
                record_timeline,
                converged,
                ft,
            }
        })
    };

    let mut sim = SimBuilder::<Msg>::new()
        .net(cfg.net.clone())
        .trace_tag(|m: &Msg| m.trace_tag())
        .record_trace(cfg.record_trace);
    if let Some(p) = &cfg.fault_plan {
        sim = sim.fault_plan(p.clone());
    }
    let master_node = sim.add_node(cfg.master_node.clone());
    let slave_nodes: Vec<_> = cfg
        .slave_nodes
        .iter()
        .map(|nc| sim.add_node(nc.clone()))
        .collect();

    let outcome = Arc::new(Mutex::new(MasterOutcome::default()));
    // Spawn order fixes actor ids: master = 0, slaves = 1..=n.
    let master_id = dlb_sim::ActorId(0);
    let slave_ids: Vec<_> = (1..=n_slaves).map(dlb_sim::ActorId).collect();

    {
        let outcome = Arc::clone(&outcome);
        let slave_ids = slave_ids.clone();
        let assignment = assignment.clone();
        let master_cfg = make_master_cfg();
        sim.spawn(master_node, "master", move |ctx| {
            run_master(ctx, master_cfg, slave_ids, assignment, block_rows, outcome)
        });
    }

    // In fault mode every slave carries the takeover kit: the election
    // winner uses it to rebuild the master role in place.
    let takeover_kit = fault_mode.then(|| {
        let make_cfg = Arc::clone(&make_master_cfg);
        Arc::new(TakeoverKit {
            make_cfg: Box::new(move || make_cfg()),
            master: master_id,
            slaves: slave_ids.clone(),
            assignment: assignment.clone(),
            block_rows,
            outcome: Arc::clone(&outcome),
        })
    });

    let slave_ft = fault_mode.then(|| cfg.fault_tolerance.clone());
    for (i, node) in slave_nodes.into_iter().enumerate() {
        let mode = slave_mode;
        let hook_cpu = cfg.hook_check_cpu;
        let ft = slave_ft.clone();
        let takeover = takeover_kit.clone();
        match &app {
            AppSpec::Independent(k) => {
                let slave = IndependentSlave {
                    idx: i,
                    master: master_id,
                    mode,
                    hook_check_cpu: hook_cpu,
                    kernel: Arc::clone(k),
                    ft,
                    takeover,
                    join_at: late_at[i],
                };
                sim.spawn(node, format!("slave{i}"), move |ctx| slave.run(ctx));
            }
            AppSpec::Pipelined(k) => {
                let slave = PipelinedSlave {
                    idx: i,
                    master: master_id,
                    mode,
                    hook_check_cpu: hook_cpu,
                    kernel: Arc::clone(k),
                    ft,
                    takeover,
                    join_at: late_at[i],
                };
                sim.spawn(node, format!("slave{i}"), move |ctx| slave.run(ctx));
            }
            AppSpec::Shrinking(k) => {
                let slave = ShrinkingSlave {
                    idx: i,
                    master: master_id,
                    mode,
                    hook_check_cpu: hook_cpu,
                    kernel: Arc::clone(k),
                    ft,
                    takeover,
                    join_at: late_at[i],
                };
                sim.spawn(node, format!("slave{i}"), move |ctx| slave.run(ctx));
            }
        }
    }

    let sim_report = sim.run();
    let mut o = outcome.lock().unwrap_or_else(|p| p.into_inner());
    let elapsed = sim_report.end_time - SimTime::ZERO;
    let fail = |error: ProtocolError, o: &mut MasterOutcome, sim: SimReport| {
        Box::new(RunError {
            error,
            elapsed,
            stats: o.stats,
            recovery: o.recovery.clone(),
            timeline: std::mem::take(&mut o.timeline),
            sim,
        })
    };
    if let Some(err) = o.error.take() {
        return Err(fail(err, &mut o, sim_report));
    }
    if !o.completed {
        // The simulation drained without the master finishing: something
        // deadlocked in a way the failure detector did not see.
        return Err(fail(
            ProtocolError::Inconsistent {
                detail: "master never completed (simulation drained early)".to_string(),
            },
            &mut o,
            sim_report,
        ));
    }

    let mut gathered = std::mem::take(&mut o.result);
    gathered.sort_by_key(|(id, _)| *id);
    if gathered.len() != n_units || gathered.iter().enumerate().any(|(i, (id, _))| *id != i) {
        let detail = format!(
            "gather lost or duplicated units: got {} of {n_units}",
            gathered.len()
        );
        return Err(fail(
            ProtocolError::Inconsistent { detail },
            &mut o,
            sim_report,
        ));
    }
    let result = gathered.into_iter().map(|(_, d)| d).collect();

    Ok(RunReport {
        elapsed,
        compute_time: o.compute_done - SimTime::ZERO,
        result,
        timeline: std::mem::take(&mut o.timeline),
        stats: o.stats,
        bounds: o.bounds,
        recovery: o.recovery.clone(),
        sim: sim_report,
        n_slaves,
    })
}

/// Contiguous block distribution of `n` units over `p` slaves.
pub fn block_ranges(n: usize, p: usize) -> Vec<(usize, usize)> {
    let base = n / p;
    let rem = n % p;
    let mut out = Vec::with_capacity(p);
    let mut lo = 0;
    for i in 0..p {
        let len = base + usize::from(i < rem);
        out.push((lo, lo + len));
        lo += len;
    }
    debug_assert_eq!(lo, n);
    out
}
