//! Pure transition rules for the sequence-numbered reliable-delivery
//! sub-protocol (Restore / ack-watermark / re-send).
//!
//! The fault-tolerant runtime must move state (restored work units,
//! balancing instructions) over a network that drops and duplicates
//! messages. It does so with a classic window protocol: the sender stamps
//! each message with a monotone per-destination sequence number and keeps it
//! until acknowledged; the receiver deduplicates by sequence number and
//! acknowledges with a *contiguous watermark* (the largest `k` such that
//! every sequence `1..=k` was applied); unacknowledged messages are re-sent
//! on silence.
//!
//! These rules used to live inline in `master.rs` and
//! `engine_independent.rs`, where only example-based chaos tests could reach
//! them. They are factored here as two small pure types — [`SenderWindow`]
//! and [`AckTracker`] — used verbatim by the runtime *and* by the
//! model-checkable [`RestoreModel`], an abstracted master/slaves/network
//! system that `dlb-analyze` exhaustively explores for lost work, duplicate
//! application, and deadlock (the properties Eleliemy & Ciorba and Zafari &
//! Larsson identify as the hard part of distributed self-scheduling).

use crate::recovery::redistribute;
use dlb_sim::TransitionSystem;
use std::collections::{BTreeMap, BTreeSet};

/// Receiver side: sequence-number deduplication plus the contiguous
/// acknowledgement watermark reported back to the sender.
///
/// Sequences may arrive out of order under drops and re-sends, so the full
/// applied set is kept; the watermark only advances over a gap once the gap
/// is filled.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct AckTracker {
    applied: BTreeSet<u64>,
}

impl AckTracker {
    /// Record `seq` as applied. Returns `true` if it was fresh — the caller
    /// must apply the payload exactly when this returns `true`.
    pub fn fresh(&mut self, seq: u64) -> bool {
        self.applied.insert(seq)
    }

    /// Largest `k` such that every sequence `1..=k` has been applied; zero
    /// when nothing has.
    pub fn watermark(&self) -> u64 {
        let mut w = 0;
        while self.applied.contains(&(w + 1)) {
            w += 1;
        }
        w
    }
}

/// Sender side: monotone sequence numbers and the pending-until-acked
/// window that drives re-sends.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SenderWindow<T> {
    seq_sent: u64,
    watermark: u64,
    pending: Vec<(u64, T)>,
}

impl<T> SenderWindow<T> {
    pub fn new() -> SenderWindow<T> {
        SenderWindow {
            seq_sent: 0,
            watermark: 0,
            pending: Vec::new(),
        }
    }

    /// Allocate the next sequence number, build the payload with it, and
    /// retain it for re-sends. Returns the payload just stored.
    pub fn send_with(&mut self, make: impl FnOnce(u64) -> T) -> &T {
        self.seq_sent += 1;
        let payload = make(self.seq_sent);
        self.pending.push((self.seq_sent, payload));
        &self.pending.last().expect("just pushed").1
    }

    /// Process an acknowledgement watermark: watermarks are monotone, and
    /// everything at or below the watermark is no longer pending.
    pub fn ack(&mut self, watermark: u64) {
        self.watermark = self.watermark.max(watermark);
        let w = self.watermark;
        self.pending.retain(|(seq, _)| *seq > w);
    }

    /// Highest sequence number handed out.
    pub fn seq_sent(&self) -> u64 {
        self.seq_sent
    }

    /// Highest acknowledgement watermark seen.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Everything sent but not yet covered by an acknowledgement, in
    /// sequence order — the re-send set.
    pub fn unacked(&self) -> impl Iterator<Item = &(u64, T)> {
        self.pending.iter()
    }

    /// True once every sequence handed out has been acknowledged.
    pub fn fully_acked(&self) -> bool {
        self.watermark >= self.seq_sent
    }
}

// ---------------------------------------------------------------------------
// Model-checkable abstraction
// ---------------------------------------------------------------------------

/// A message in flight in the [`RestoreModel`]'s network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Wire {
    /// Master → survivor: adopt these units (sequence-numbered).
    Restore {
        to: usize,
        seq: u64,
        units: Vec<usize>,
    },
    /// Survivor → master: contiguous applied watermark (carried by
    /// `InvocationDone::restore_seq` in the real runtime).
    Ack { from: usize, watermark: u64 },
}

/// One enabled step of the model.
///
/// The wire is a *set* of distinct in-flight messages (idempotent
/// network): re-sending an identical message merges with the copy already
/// in flight, and duplicate delivery is modeled by [`Step::DeliverCopy`],
/// which applies a message without consuming it. This is the standard
/// sound reduction for drop/duplicate networks — it preserves every
/// receiver-visible delivery sequence while keeping the state space small
/// enough to exhaust.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Master scatters wave `w` of dead units over the survivors.
    Scatter(usize),
    /// Deliver the `i`-th in-flight message (and consume it).
    Deliver(usize),
    /// The network delivers a duplicate of the `i`-th in-flight message:
    /// effects apply but the original stays in flight (bounded budget).
    DeliverCopy(usize),
    /// The network drops the `i`-th in-flight message (bounded budget).
    Drop(usize),
    /// The master's nudge timer fires for survivor `s`: re-send everything
    /// unacknowledged that is not already in flight.
    Resend(usize),
    /// Survivor `s` heartbeats its current watermark (`InvocationDone`
    /// re-send in the real runtime), while the ack carries news.
    Heartbeat(usize),
}

/// Per-survivor receiver state in the model.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SlaveModel {
    pub tracker: AckTracker,
    /// Units held, with how many times each was *applied* — a count above
    /// one is a duplicate application (double compute / double insert).
    pub holding: BTreeMap<usize, u32>,
}

/// Full model state: master windows, survivor trackers, and the network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RestoreState {
    pub windows: Vec<SenderWindow<Vec<usize>>>,
    pub slaves: Vec<SlaveModel>,
    /// In flight: a sorted set of distinct messages (idempotent network).
    pub wire: Vec<Wire>,
    pub scattered_waves: usize,
    pub drops_used: u32,
    pub dups_used: u32,
}

/// The abstracted master/slaves/network system around the restore protocol.
///
/// The master scatters `waves` of dead-slave units over `survivors`
/// (round-robin, exactly as [`crate::recovery::redistribute`] does), the
/// network may drop or duplicate a bounded number of messages, and both
/// sides run the [`SenderWindow`]/[`AckTracker`] rules. `dedup_acks = false`
/// switches the receiver to a deliberately broken variant that acknowledges
/// without deduplicating — the model checker must find the duplicate-apply
/// counterexample (and does; see `dlb-analyze`).
#[derive(Clone, Debug)]
pub struct RestoreModel {
    pub survivors: usize,
    /// Unit ids scattered per wave (each wave is one eviction's re-scatter).
    pub waves: Vec<Vec<usize>>,
    pub max_drops: u32,
    pub max_dups: u32,
    /// True = the real protocol (receiver dedups by sequence number).
    pub dedup_acks: bool,
}

impl RestoreModel {
    /// The standard checked configuration: two survivors, one eviction wave
    /// of three units followed by a second single-unit wave, one drop and
    /// one duplication budget.
    pub fn standard() -> RestoreModel {
        RestoreModel {
            survivors: 2,
            waves: vec![vec![0, 1, 2], vec![3]],
            max_drops: 1,
            max_dups: 1,
            dedup_acks: true,
        }
    }

    /// The broken variant: acknowledgements without receiver dedup.
    pub fn broken_no_dedup() -> RestoreModel {
        RestoreModel {
            dedup_acks: false,
            ..RestoreModel::standard()
        }
    }

    /// Receiver/sender effects of one message delivery (shared by
    /// [`Step::Deliver`] and [`Step::DeliverCopy`]).
    fn deliver(&self, n: &mut RestoreState, msg: Wire) {
        match msg {
            Wire::Restore { to, seq, units } => {
                let slave = &mut n.slaves[to];
                let fresh = if self.dedup_acks {
                    slave.tracker.fresh(seq)
                } else {
                    // Broken variant: acknowledge the sequence but apply
                    // unconditionally.
                    slave.tracker.fresh(seq);
                    true
                };
                if fresh {
                    for u in units {
                        *slave.holding.entry(u).or_insert(0) += 1;
                    }
                }
                let ack = Wire::Ack {
                    from: to,
                    watermark: n.slaves[to].tracker.watermark(),
                };
                insert_unique(&mut n.wire, ack);
            }
            Wire::Ack { from, watermark } => {
                n.windows[from].ack(watermark);
            }
        }
    }

    fn all_units(&self) -> usize {
        self.waves.iter().map(|w| w.len()).sum()
    }

    fn quiescent(&self, s: &RestoreState) -> bool {
        s.scattered_waves == self.waves.len()
            && s.wire.is_empty()
            && s.windows.iter().all(|w| w.fully_acked())
    }
}

fn insert_unique(wire: &mut Vec<Wire>, msg: Wire) {
    if let Err(at) = wire.binary_search(&msg) {
        wire.insert(at, msg);
    }
}

impl TransitionSystem for RestoreModel {
    type State = RestoreState;
    type Action = Step;

    fn initial(&self) -> RestoreState {
        RestoreState {
            windows: vec![SenderWindow::new(); self.survivors],
            slaves: vec![SlaveModel::default(); self.survivors],
            wire: Vec::new(),
            scattered_waves: 0,
            drops_used: 0,
            dups_used: 0,
        }
    }

    fn actions(&self, s: &RestoreState) -> Vec<Step> {
        let mut out = Vec::new();
        if s.scattered_waves < self.waves.len() {
            out.push(Step::Scatter(s.scattered_waves));
        }
        for i in 0..s.wire.len() {
            out.push(Step::Deliver(i));
            if s.drops_used < self.max_drops {
                out.push(Step::Drop(i));
            }
            if s.dups_used < self.max_dups {
                out.push(Step::DeliverCopy(i));
            }
        }
        for t in 0..self.survivors {
            // Nudge: at most one copy of a pending message in flight at a
            // time (the timer refires, so this loses no behaviours — it
            // only bounds the wire occupancy).
            let resendable = s.windows[t].unacked().any(|(seq, units)| {
                !s.wire.contains(&Wire::Restore {
                    to: t,
                    seq: *seq,
                    units: units.clone(),
                })
            });
            if resendable {
                out.push(Step::Resend(t));
            }
            let hb = Wire::Ack {
                from: t,
                watermark: s.slaves[t].tracker.watermark(),
            };
            // Heartbeat while it carries news (the ack was lost): in the
            // runtime a slave re-sends `InvocationDone` until released, and
            // stops once settled — so the model stops at quiescence too,
            // which keeps quiescent states terminal for deadlock detection.
            if s.slaves[t].tracker.watermark() > s.windows[t].watermark() && !s.wire.contains(&hb) {
                out.push(Step::Heartbeat(t));
            }
        }
        out
    }

    fn apply(&self, s: &RestoreState, a: &Step) -> RestoreState {
        let mut n = s.clone();
        match a {
            Step::Scatter(w) => {
                let survivors: Vec<usize> = (0..self.survivors).collect();
                for (t, units) in redistribute(&self.waves[*w], &survivors) {
                    n.windows[t].send_with(|_| units.clone());
                    let msg = Wire::Restore {
                        to: t,
                        seq: n.windows[t].seq_sent(),
                        units,
                    };
                    insert_unique(&mut n.wire, msg);
                }
                n.scattered_waves += 1;
            }
            Step::Deliver(i) => {
                let msg = n.wire.remove(*i);
                self.deliver(&mut n, msg);
            }
            Step::DeliverCopy(i) => {
                let msg = n.wire[*i].clone();
                n.dups_used += 1;
                self.deliver(&mut n, msg);
            }
            Step::Drop(i) => {
                n.wire.remove(*i);
                n.drops_used += 1;
            }
            Step::Resend(t) => {
                let msgs: Vec<Wire> = n.windows[*t]
                    .unacked()
                    .map(|(seq, units)| Wire::Restore {
                        to: *t,
                        seq: *seq,
                        units: units.clone(),
                    })
                    .filter(|m| !n.wire.contains(m))
                    .collect();
                for m in msgs {
                    insert_unique(&mut n.wire, m);
                }
            }
            Step::Heartbeat(t) => {
                let hb = Wire::Ack {
                    from: *t,
                    watermark: n.slaves[*t].tracker.watermark(),
                };
                insert_unique(&mut n.wire, hb);
            }
        }
        n
    }

    fn violation(&self, s: &RestoreState) -> Option<String> {
        for (idx, slave) in s.slaves.iter().enumerate() {
            for (unit, applies) in &slave.holding {
                if *applies > 1 {
                    return Some(format!(
                        "unit {unit} applied {applies} times on survivor {idx} (duplicate apply)"
                    ));
                }
            }
        }
        // A unit held by two survivors at once is also a duplicate.
        let mut owners: BTreeMap<usize, usize> = BTreeMap::new();
        for (idx, slave) in s.slaves.iter().enumerate() {
            for unit in slave.holding.keys() {
                if let Some(prev) = owners.insert(*unit, idx) {
                    return Some(format!(
                        "unit {unit} held by survivors {prev} and {idx} simultaneously"
                    ));
                }
            }
        }
        if self.quiescent(s) {
            let held: usize = s.slaves.iter().map(|sl| sl.holding.len()).sum();
            if held != self.all_units() {
                return Some(format!(
                    "quiescent with {held} of {} units restored (lost work)",
                    self.all_units()
                ));
            }
        }
        None
    }

    fn is_accepting(&self, s: &RestoreState) -> bool {
        self.quiescent(s)
    }
}

// ---------------------------------------------------------------------------
// Slave ↔ slave transfer channel
// ---------------------------------------------------------------------------

/// One direction of a slave↔slave work-migration channel: the sender half
/// ([`SenderWindow`]) for payloads we originate plus the receiver half
/// ([`AckTracker`]) for payloads the peer originates, and an `open` flag
/// that closes the channel for good once the peer is evicted.
///
/// The runtime keeps one `TransferWindow` per peer on every slave. Sends
/// allocate a per-channel sequence number and retain the payload for
/// event-triggered re-sends; receipts are deduplicated by sequence number
/// and acknowledged with the contiguous watermark. Closing the channel
/// (peer evicted) drains the unacknowledged payloads so the survivor can
/// re-own the units that were still in flight — the peer either never
/// applied them (they died on the wire) or died holding them; either way
/// the survivor's copy is the only live one.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct TransferWindow<T> {
    out: SenderWindow<T>,
    inn: AckTracker,
    open: bool,
}

impl<T> TransferWindow<T> {
    pub fn new() -> TransferWindow<T> {
        TransferWindow {
            out: SenderWindow::new(),
            inn: AckTracker::default(),
            open: true,
        }
    }

    /// False once the peer was evicted: no sends, no accepts.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Allocate the next outbound sequence number and retain the payload.
    /// Returns `None` without allocating when the channel is closed — an
    /// offer to an evicted slave is refused locally, never put on the wire.
    pub fn send_with(&mut self, make: impl FnOnce(u64) -> T) -> Option<&T> {
        if !self.open {
            return None;
        }
        Some(self.out.send_with(make))
    }

    /// Process the peer's acknowledgement watermark (monotone; duplicate
    /// acks are absorbed). Harmless after close — the pending set is
    /// already drained.
    pub fn ack(&mut self, watermark: u64) {
        self.out.ack(watermark);
    }

    /// Deduplicate an inbound payload: `true` exactly when `seq` is fresh
    /// *and* the channel is open — the caller applies the payload (and
    /// counts the receipt) iff this returns `true`.
    pub fn accept(&mut self, seq: u64) -> bool {
        self.open && self.inn.fresh(seq)
    }

    /// Contiguous watermark of inbound payloads applied — what we
    /// acknowledge back to the peer.
    pub fn recv_watermark(&self) -> u64 {
        self.inn.watermark()
    }

    /// Outbound payloads not yet covered by an acknowledgement.
    pub fn unacked(&self) -> impl Iterator<Item = &(u64, T)> {
        self.out.unacked()
    }

    pub fn fully_acked(&self) -> bool {
        self.out.fully_acked()
    }

    pub fn seq_sent(&self) -> u64 {
        self.out.seq_sent()
    }

    /// Highest acknowledgement watermark seen from the peer.
    pub fn acked_watermark(&self) -> u64 {
        self.out.watermark()
    }

    /// Close the channel (peer evicted) and drain the unacknowledged
    /// outbound payloads for re-owning. Idempotent: a second close drains
    /// nothing.
    pub fn close(&mut self) -> Vec<T> {
        if !self.open {
            return Vec::new();
        }
        self.open = false;
        let w = self.out.watermark();
        std::mem::take(&mut self.out.pending)
            .into_iter()
            .filter(|(seq, _)| *seq > w)
            .map(|(_, payload)| payload)
            .collect()
    }

    /// Forget all channel state and reopen (rollback to a checkpoint: every
    /// in-flight transfer is fenced off by the epoch bump, so both sides
    /// restart from sequence zero).
    pub fn reset(&mut self) {
        *self = TransferWindow::new();
    }
}

/// A message in flight in the [`TransferModel`]'s network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TWire {
    /// Sender → receiver: adopt these units (sequence-numbered move).
    Transfer { seq: u64, units: Vec<usize> },
    /// Receiver → sender: contiguous applied watermark.
    Ack { watermark: u64 },
}

/// One enabled step of the [`TransferModel`]. Same idempotent-wire
/// reduction as [`Step`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TStep {
    /// The balancer orders move `m`: the sender sheds its units onto the
    /// channel (or keeps them, if the receiver was already evicted).
    Offer(usize),
    /// Deliver the `i`-th in-flight message (and consume it). Deliveries
    /// to an evicted receiver are discarded, as the fail-stop network does.
    Deliver(usize),
    /// Deliver a duplicate of the `i`-th message (bounded budget).
    DeliverCopy(usize),
    /// Drop the `i`-th message (bounded budget).
    Drop(usize),
    /// The sender's re-send trigger fires: re-send everything
    /// unacknowledged that is not already in flight.
    Resend,
    /// The receiver re-acknowledges while the ack carries news.
    Heartbeat,
    /// The receiver fail-stops: the master evicts it, the sender closes
    /// the channel and re-owns in-flight units, and the master re-scatters
    /// whatever no survivor reports owning (bounded budget).
    Evict,
}

/// Full [`TransferModel`] state: both channel endpoints, both unit sets
/// (with apply counts), and the network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TransferState {
    /// Sender endpoint of the channel (the slave shedding work).
    pub sender: TransferWindow<Vec<usize>>,
    /// Receiver endpoint (the slave gaining work).
    pub receiver: TransferWindow<Vec<usize>>,
    pub sender_holding: BTreeMap<usize, u32>,
    pub receiver_holding: BTreeMap<usize, u32>,
    pub wire: Vec<TWire>,
    pub offered: usize,
    pub receiver_evicted: bool,
    pub drops_used: u32,
    pub dups_used: u32,
}

/// The abstracted slave↔slave work-migration system around
/// [`TransferWindow`] — the runtime's MoveOrder execution path, minus
/// everything that does not affect unit safety.
///
/// The sender starts holding every unit; the balancer orders `moves`
/// (disjoint unit batches) shed to the receiver; the network may drop or
/// duplicate a bounded number of messages; and the receiver may fail-stop
/// once ([`TStep::Evict`]), upon which the sender re-owns the in-flight
/// units and the master re-scatters exactly the units no survivor reports.
/// `dedup_transfers = false` is the deliberately broken variant that
/// applies transfer payloads without sequence-number dedup — the checker
/// must find the duplicate-unit counterexample (`dlb-analyze` maps it to
/// E104).
#[derive(Clone, Debug)]
pub struct TransferModel {
    /// Unit ids the sender starts with (the receiver starts empty).
    pub units: Vec<usize>,
    /// Unit batches shed to the receiver, in order (disjoint subsets of
    /// `units`).
    pub moves: Vec<Vec<usize>>,
    pub max_drops: u32,
    pub max_dups: u32,
    /// Whether the receiver may fail-stop mid-protocol.
    pub allow_evict: bool,
    /// True = the real protocol (receiver dedups by sequence number).
    pub dedup_transfers: bool,
}

impl TransferModel {
    /// The standard checked configuration: four units, two move batches,
    /// one drop and one duplication budget, eviction enabled.
    pub fn standard() -> TransferModel {
        TransferModel {
            units: vec![0, 1, 2, 3],
            moves: vec![vec![0, 1], vec![2]],
            max_drops: 1,
            max_dups: 1,
            allow_evict: true,
            dedup_transfers: true,
        }
    }

    /// The broken variant: transfer payloads applied without dedup.
    pub fn broken_no_dedup() -> TransferModel {
        TransferModel {
            dedup_transfers: false,
            ..TransferModel::standard()
        }
    }

    fn deliver(&self, n: &mut TransferState, msg: TWire) {
        match msg {
            TWire::Transfer { seq, units } => {
                if n.receiver_evicted {
                    // Fail-stop: deliveries to a crashed node vanish.
                    return;
                }
                let fresh = if self.dedup_transfers {
                    n.receiver.accept(seq)
                } else {
                    // Broken variant: acknowledge the sequence but apply
                    // unconditionally.
                    n.receiver.accept(seq);
                    true
                };
                if fresh {
                    for u in units {
                        *n.receiver_holding.entry(u).or_insert(0) += 1;
                    }
                }
                let ack = TWire::Ack {
                    watermark: n.receiver.recv_watermark(),
                };
                insert_unique_t(&mut n.wire, ack);
            }
            TWire::Ack { watermark } => {
                n.sender.ack(watermark);
            }
        }
    }

    fn quiescent(&self, s: &TransferState) -> bool {
        s.offered == self.moves.len()
            && s.wire.is_empty()
            && (s.receiver_evicted || s.sender.fully_acked())
    }
}

fn insert_unique_t(wire: &mut Vec<TWire>, msg: TWire) {
    if let Err(at) = wire.binary_search(&msg) {
        wire.insert(at, msg);
    }
}

impl TransitionSystem for TransferModel {
    type State = TransferState;
    type Action = TStep;

    fn initial(&self) -> TransferState {
        TransferState {
            sender: TransferWindow::new(),
            receiver: TransferWindow::new(),
            sender_holding: self.units.iter().map(|&u| (u, 1)).collect(),
            receiver_holding: BTreeMap::new(),
            wire: Vec::new(),
            offered: 0,
            receiver_evicted: false,
            drops_used: 0,
            dups_used: 0,
        }
    }

    fn actions(&self, s: &TransferState) -> Vec<TStep> {
        let mut out = Vec::new();
        if s.offered < self.moves.len() {
            out.push(TStep::Offer(s.offered));
        }
        for i in 0..s.wire.len() {
            out.push(TStep::Deliver(i));
            if s.drops_used < self.max_drops {
                out.push(TStep::Drop(i));
            }
            if s.dups_used < self.max_dups {
                out.push(TStep::DeliverCopy(i));
            }
        }
        if !s.receiver_evicted {
            let resendable = s.sender.unacked().any(|(seq, units)| {
                !s.wire.contains(&TWire::Transfer {
                    seq: *seq,
                    units: units.clone(),
                })
            });
            if resendable {
                out.push(TStep::Resend);
            }
            let hb = TWire::Ack {
                watermark: s.receiver.recv_watermark(),
            };
            // Re-ack while it carries news, as [`Step::Heartbeat`] does —
            // quiescent states stay terminal.
            if s.receiver.recv_watermark() > s.sender.acked_watermark() && !s.wire.contains(&hb) {
                out.push(TStep::Heartbeat);
            }
            if self.allow_evict {
                out.push(TStep::Evict);
            }
        }
        out
    }

    fn apply(&self, s: &TransferState, a: &TStep) -> TransferState {
        let mut n = s.clone();
        match a {
            TStep::Offer(m) => {
                if n.receiver_evicted {
                    // Offer to an evicted slave: refused locally, the
                    // sender keeps the units.
                    n.offered += 1;
                } else {
                    let units = self.moves[*m].clone();
                    for u in &units {
                        let gone = n.sender_holding.remove(u).is_some();
                        debug_assert!(gone, "move batches must be disjoint owned units");
                    }
                    n.sender.send_with(|_| units.clone());
                    let msg = TWire::Transfer {
                        seq: n.sender.seq_sent(),
                        units,
                    };
                    insert_unique_t(&mut n.wire, msg);
                    n.offered += 1;
                }
            }
            TStep::Deliver(i) => {
                let msg = n.wire.remove(*i);
                self.deliver(&mut n, msg);
            }
            TStep::DeliverCopy(i) => {
                let msg = n.wire[*i].clone();
                n.dups_used += 1;
                self.deliver(&mut n, msg);
            }
            TStep::Drop(i) => {
                n.wire.remove(*i);
                n.drops_used += 1;
            }
            TStep::Resend => {
                let msgs: Vec<TWire> = n
                    .sender
                    .unacked()
                    .map(|(seq, units)| TWire::Transfer {
                        seq: *seq,
                        units: units.clone(),
                    })
                    .filter(|m| !n.wire.contains(m))
                    .collect();
                for m in msgs {
                    insert_unique_t(&mut n.wire, m);
                }
            }
            TStep::Heartbeat => {
                let hb = TWire::Ack {
                    watermark: n.receiver.recv_watermark(),
                };
                insert_unique_t(&mut n.wire, hb);
            }
            TStep::Evict => {
                n.receiver_evicted = true;
                // The survivor re-owns everything still unacknowledged on
                // its channel to the dead peer...
                for units in n.sender.close() {
                    for u in units {
                        *n.sender_holding.entry(u).or_insert(0) += 1;
                    }
                }
                // ...then the master re-scatters exactly the units no
                // survivor reports owning (the OwnReport fence): with one
                // survivor, that is everything the sender does not hold.
                let missing: Vec<usize> = self
                    .units
                    .iter()
                    .copied()
                    .filter(|u| !n.sender_holding.contains_key(u))
                    .collect();
                for u in missing {
                    *n.sender_holding.entry(u).or_insert(0) += 1;
                }
            }
        }
        n
    }

    fn violation(&self, s: &TransferState) -> Option<String> {
        for (who, holding) in [
            ("sender", &s.sender_holding),
            ("receiver", &s.receiver_holding),
        ] {
            for (unit, applies) in holding.iter() {
                if *applies > 1 {
                    return Some(format!(
                        "duplicate work unit {unit} applied {applies} times on {who}"
                    ));
                }
            }
        }
        if !s.receiver_evicted {
            for unit in s.sender_holding.keys() {
                if s.receiver_holding.contains_key(unit) {
                    return Some(format!("duplicate work unit {unit} held by both endpoints"));
                }
            }
        }
        if self.quiescent(s) {
            let held = s.sender_holding.len()
                + if s.receiver_evicted {
                    0
                } else {
                    s.receiver_holding.len()
                };
            if held != self.units.len() {
                return Some(format!(
                    "lost work unit: quiescent with {held} of {} units owned",
                    self.units.len()
                ));
            }
        }
        None
    }

    fn is_accepting(&self, s: &TransferState) -> bool {
        self.quiescent(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_is_contiguous() {
        let mut t = AckTracker::default();
        assert_eq!(t.watermark(), 0);
        assert!(t.fresh(2));
        assert_eq!(t.watermark(), 0, "gap at 1 holds the watermark");
        assert!(t.fresh(1));
        assert_eq!(t.watermark(), 2);
        assert!(!t.fresh(2), "duplicate must not be fresh");
    }

    #[test]
    fn window_retains_until_acked() {
        let mut w: SenderWindow<&'static str> = SenderWindow::new();
        w.send_with(|_| "a");
        w.send_with(|_| "b");
        assert_eq!(w.seq_sent(), 2);
        assert!(!w.fully_acked());
        w.ack(1);
        let left: Vec<u64> = w.unacked().map(|(s, _)| *s).collect();
        assert_eq!(left, vec![2]);
        w.ack(0); // stale watermark must not regress
        assert_eq!(w.watermark(), 1);
        w.ack(2);
        assert!(w.fully_acked());
    }

    #[test]
    fn model_quiesces_on_the_happy_path() {
        let m = RestoreModel::standard();
        let mut s = m.initial();
        // Scatter both waves, then deliver everything FIFO until quiescent.
        while !m.is_accepting(&s) {
            let acts = m.actions(&s);
            let a = acts
                .iter()
                .find(|a| matches!(a, Step::Scatter(_) | Step::Deliver(_)))
                .expect("happy path always has a scatter or deliver");
            s = m.apply(&s, a);
            assert_eq!(m.violation(&s), None, "happy path must stay clean");
        }
        let held: usize = s.slaves.iter().map(|sl| sl.holding.len()).sum();
        assert_eq!(held, 4);
    }

    #[test]
    fn broken_variant_double_applies_on_duplicate_delivery() {
        let m = RestoreModel::broken_no_dedup();
        let mut s = m.initial();
        s = m.apply(&s, &Step::Scatter(0));
        // Deliver a duplicate of the first restore, then the original.
        s = m.apply(&s, &Step::DeliverCopy(0));
        assert_eq!(m.violation(&s), None);
        s = m.apply(&s, &Step::Deliver(0));
        let v = m.violation(&s).expect("duplicate apply must be detected");
        assert!(v.contains("duplicate apply"), "{v}");
    }

    #[test]
    fn dedup_variant_ignores_duplicate_delivery() {
        let m = RestoreModel::standard();
        let mut s = m.initial();
        s = m.apply(&s, &Step::Scatter(0));
        s = m.apply(&s, &Step::DeliverCopy(0));
        s = m.apply(&s, &Step::Deliver(0));
        assert_eq!(m.violation(&s), None, "dedup must absorb the duplicate");
    }

    #[test]
    fn transfer_window_crash_mid_payload_reowns_only_unacked() {
        let mut w: TransferWindow<Vec<usize>> = TransferWindow::new();
        w.send_with(|_| vec![0, 1]);
        w.send_with(|_| vec![2]);
        w.ack(1);
        // The peer crashes with sequence 2 still on the wire: closing the
        // channel re-owns exactly the unacked payload.
        let reowned = w.close();
        assert_eq!(reowned, vec![vec![2]]);
        assert!(!w.is_open());
        assert_eq!(w.close(), Vec::<Vec<usize>>::new(), "close is idempotent");
    }

    #[test]
    fn transfer_window_absorbs_duplicate_acks() {
        let mut w: TransferWindow<&'static str> = TransferWindow::new();
        w.send_with(|_| "a");
        w.send_with(|_| "b");
        w.ack(1);
        w.ack(1); // duplicated ack delivery
        w.ack(0); // stale ack must not regress the watermark
        assert_eq!(w.acked_watermark(), 1);
        assert_eq!(w.unacked().count(), 1);
        w.ack(2);
        assert!(w.fully_acked());
    }

    #[test]
    fn transfer_window_refuses_offer_to_evicted_slave() {
        let mut w: TransferWindow<Vec<usize>> = TransferWindow::new();
        w.close();
        assert!(w.send_with(|_| vec![7]).is_none(), "no sends after close");
        assert_eq!(w.seq_sent(), 0, "no sequence allocated for the refusal");
        assert!(!w.accept(1), "inbound from an evicted peer is ignored");
        assert_eq!(w.recv_watermark(), 0);
    }

    #[test]
    fn transfer_window_dedups_and_acks_inbound() {
        let mut w: TransferWindow<()> = TransferWindow::new();
        assert!(w.accept(2));
        assert!(!w.accept(2), "duplicate payload must not be fresh");
        assert_eq!(w.recv_watermark(), 0, "gap at 1 holds the watermark");
        assert!(w.accept(1));
        assert_eq!(w.recv_watermark(), 2);
        w.reset();
        assert!(w.accept(1), "reset reopens a fresh channel");
        assert_eq!(w.seq_sent(), 0);
    }

    #[test]
    fn transfer_model_quiesces_on_the_happy_path() {
        let m = TransferModel::standard();
        let mut s = m.initial();
        while !m.is_accepting(&s) {
            let acts = m.actions(&s);
            let a = acts
                .iter()
                .find(|a| matches!(a, TStep::Offer(_) | TStep::Deliver(_)))
                .expect("happy path always has an offer or deliver");
            s = m.apply(&s, a);
            assert_eq!(m.violation(&s), None, "happy path must stay clean");
        }
        assert_eq!(s.sender_holding.len(), 1, "unit 3 stays at the sender");
        assert_eq!(s.receiver_holding.len(), 3);
    }

    #[test]
    fn transfer_model_eviction_reowns_in_flight_units() {
        let m = TransferModel::standard();
        let mut s = m.initial();
        s = m.apply(&s, &TStep::Offer(0));
        // The receiver crashes with the transfer still on the wire.
        s = m.apply(&s, &TStep::Evict);
        assert_eq!(m.violation(&s), None);
        assert_eq!(
            s.sender_holding.len(),
            4,
            "sender re-owns the in-flight units"
        );
        // Offer 1 is refused locally; the stale transfer on the wire is
        // discarded at the dead node. No unit is lost or duplicated.
        s = m.apply(&s, &TStep::Offer(1));
        s = m.apply(&s, &TStep::Deliver(0));
        assert_eq!(m.violation(&s), None);
        assert!(m.is_accepting(&s));
    }

    #[test]
    fn broken_transfer_variant_double_applies_on_duplicate_delivery() {
        let m = TransferModel::broken_no_dedup();
        let mut s = m.initial();
        s = m.apply(&s, &TStep::Offer(0));
        s = m.apply(&s, &TStep::DeliverCopy(0));
        assert_eq!(m.violation(&s), None);
        s = m.apply(&s, &TStep::Deliver(0));
        let v = m.violation(&s).expect("duplicate apply must be detected");
        assert!(v.contains("duplicate work unit"), "{v}");
    }
}
