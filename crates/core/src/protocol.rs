//! Pure transition rules for the sequence-numbered reliable-delivery
//! sub-protocol (Restore / ack-watermark / re-send).
//!
//! The fault-tolerant runtime must move state (restored work units,
//! balancing instructions) over a network that drops and duplicates
//! messages. It does so with a classic window protocol: the sender stamps
//! each message with a monotone per-destination sequence number and keeps it
//! until acknowledged; the receiver deduplicates by sequence number and
//! acknowledges with a *contiguous watermark* (the largest `k` such that
//! every sequence `1..=k` was applied); unacknowledged messages are re-sent
//! on silence.
//!
//! These rules used to live inline in `master.rs` and
//! `engine_independent.rs`, where only example-based chaos tests could reach
//! them. They are factored here as three small pure types — [`SenderWindow`],
//! [`AckTracker`], and [`TransferWindow`] — used verbatim by the runtime
//! *and* by the model-checkable abstractions in
//! [`crate::session::model`] ([`crate::session::model::RestoreModel`],
//! [`crate::session::model::TransferModel`]), which `dlb-analyze`
//! exhaustively explores for lost work, duplicate application, and deadlock
//! (the properties Eleliemy & Ciorba and Zafari & Larsson identify as the
//! hard part of distributed self-scheduling).

use std::collections::BTreeSet;

/// Receiver side: sequence-number deduplication plus the contiguous
/// acknowledgement watermark reported back to the sender.
///
/// Sequences may arrive out of order under drops and re-sends, so the full
/// applied set is kept; the watermark only advances over a gap once the gap
/// is filled.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AckTracker {
    applied: BTreeSet<u64>,
}

impl AckTracker {
    /// Record `seq` as applied. Returns `true` if it was fresh — the caller
    /// must apply the payload exactly when this returns `true`.
    pub fn fresh(&mut self, seq: u64) -> bool {
        self.applied.insert(seq)
    }

    /// Largest `k` such that every sequence `1..=k` has been applied; zero
    /// when nothing has.
    pub fn watermark(&self) -> u64 {
        let mut w = 0;
        while self.applied.contains(&(w + 1)) {
            w += 1;
        }
        w
    }
}

/// Sender side: monotone sequence numbers and the pending-until-acked
/// window that drives re-sends.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SenderWindow<T> {
    seq_sent: u64,
    watermark: u64,
    pending: Vec<(u64, T)>,
}

impl<T> SenderWindow<T> {
    pub fn new() -> SenderWindow<T> {
        SenderWindow {
            seq_sent: 0,
            watermark: 0,
            pending: Vec::new(),
        }
    }

    /// Allocate the next sequence number, build the payload with it, and
    /// retain it for re-sends. Returns the payload just stored.
    pub fn send_with(&mut self, make: impl FnOnce(u64) -> T) -> &T {
        self.seq_sent += 1;
        let payload = make(self.seq_sent);
        self.pending.push((self.seq_sent, payload));
        &self.pending.last().expect("just pushed").1
    }

    /// Process an acknowledgement watermark: watermarks are monotone, and
    /// everything at or below the watermark is no longer pending.
    pub fn ack(&mut self, watermark: u64) {
        self.watermark = self.watermark.max(watermark);
        let w = self.watermark;
        self.pending.retain(|(seq, _)| *seq > w);
    }

    /// Highest sequence number handed out.
    pub fn seq_sent(&self) -> u64 {
        self.seq_sent
    }

    /// Highest acknowledgement watermark seen.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Everything sent but not yet covered by an acknowledgement, in
    /// sequence order — the re-send set.
    pub fn unacked(&self) -> impl Iterator<Item = &(u64, T)> {
        self.pending.iter()
    }

    /// True once every sequence handed out has been acknowledged.
    pub fn fully_acked(&self) -> bool {
        self.watermark >= self.seq_sent
    }

    /// Rewrite every retained payload in place. Exists for symmetry
    /// canonicalization in [`crate::session::model`], where payloads carry
    /// peer indices that must be relabeled consistently with the rest of
    /// the state; sequence numbers and watermarks are untouched.
    pub fn map_payloads(&mut self, mut f: impl FnMut(&mut T)) {
        for (_, payload) in &mut self.pending {
            f(payload);
        }
    }
}

// ---------------------------------------------------------------------------
// Slave ↔ slave transfer channel
// ---------------------------------------------------------------------------

/// One direction of a slave↔slave work-migration channel: the sender half
/// ([`SenderWindow`]) for payloads we originate plus the receiver half
/// ([`AckTracker`]) for payloads the peer originates, and an `open` flag
/// that closes the channel for good once the peer is evicted.
///
/// The runtime keeps one `TransferWindow` per peer on every slave. Sends
/// allocate a per-channel sequence number and retain the payload for
/// event-triggered re-sends; receipts are deduplicated by sequence number
/// and acknowledged with the contiguous watermark. Closing the channel
/// (peer evicted) drains the unacknowledged payloads so the survivor can
/// re-own the units that were still in flight — the peer either never
/// applied them (they died on the wire) or died holding them; either way
/// the survivor's copy is the only live one.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferWindow<T> {
    out: SenderWindow<T>,
    inn: AckTracker,
    open: bool,
}

impl<T> TransferWindow<T> {
    pub fn new() -> TransferWindow<T> {
        TransferWindow {
            out: SenderWindow::new(),
            inn: AckTracker::default(),
            open: true,
        }
    }

    /// False once the peer was evicted: no sends, no accepts.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Allocate the next outbound sequence number and retain the payload.
    /// Returns `None` without allocating when the channel is closed — an
    /// offer to an evicted slave is refused locally, never put on the wire.
    pub fn send_with(&mut self, make: impl FnOnce(u64) -> T) -> Option<&T> {
        if !self.open {
            return None;
        }
        Some(self.out.send_with(make))
    }

    /// Process the peer's acknowledgement watermark (monotone; duplicate
    /// acks are absorbed). Harmless after close — the pending set is
    /// already drained.
    pub fn ack(&mut self, watermark: u64) {
        self.out.ack(watermark);
    }

    /// Deduplicate an inbound payload: `true` exactly when `seq` is fresh
    /// *and* the channel is open — the caller applies the payload (and
    /// counts the receipt) iff this returns `true`.
    pub fn accept(&mut self, seq: u64) -> bool {
        self.open && self.inn.fresh(seq)
    }

    /// Contiguous watermark of inbound payloads applied — what we
    /// acknowledge back to the peer.
    pub fn recv_watermark(&self) -> u64 {
        self.inn.watermark()
    }

    /// Outbound payloads not yet covered by an acknowledgement.
    pub fn unacked(&self) -> impl Iterator<Item = &(u64, T)> {
        self.out.unacked()
    }

    pub fn fully_acked(&self) -> bool {
        self.out.fully_acked()
    }

    pub fn seq_sent(&self) -> u64 {
        self.out.seq_sent()
    }

    /// Highest acknowledgement watermark seen from the peer.
    pub fn acked_watermark(&self) -> u64 {
        self.out.watermark()
    }

    /// Close the channel (peer evicted) and drain the unacknowledged
    /// outbound payloads for re-owning. Idempotent: a second close drains
    /// nothing.
    pub fn close(&mut self) -> Vec<T> {
        if !self.open {
            return Vec::new();
        }
        self.open = false;
        let w = self.out.watermark();
        std::mem::take(&mut self.out.pending)
            .into_iter()
            .filter(|(seq, _)| *seq > w)
            .map(|(_, payload)| payload)
            .collect()
    }

    /// Forget all channel state and reopen (rollback to a checkpoint: every
    /// in-flight transfer is fenced off by the epoch bump, so both sides
    /// restart from sequence zero).
    pub fn reset(&mut self) {
        *self = TransferWindow::new();
    }

    /// Rewrite every retained outbound payload in place (see
    /// [`SenderWindow::map_payloads`]).
    pub fn map_payloads(&mut self, f: impl FnMut(&mut T)) {
        self.out.map_payloads(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_is_contiguous() {
        let mut t = AckTracker::default();
        assert_eq!(t.watermark(), 0);
        assert!(t.fresh(2));
        assert_eq!(t.watermark(), 0, "gap at 1 holds the watermark");
        assert!(t.fresh(1));
        assert_eq!(t.watermark(), 2);
        assert!(!t.fresh(2), "duplicate must not be fresh");
    }

    #[test]
    fn window_retains_until_acked() {
        let mut w: SenderWindow<&'static str> = SenderWindow::new();
        w.send_with(|_| "a");
        w.send_with(|_| "b");
        assert_eq!(w.seq_sent(), 2);
        assert!(!w.fully_acked());
        w.ack(1);
        let left: Vec<u64> = w.unacked().map(|(s, _)| *s).collect();
        assert_eq!(left, vec![2]);
        w.ack(0); // stale watermark must not regress
        assert_eq!(w.watermark(), 1);
        w.ack(2);
        assert!(w.fully_acked());
    }

    #[test]
    fn transfer_window_crash_mid_payload_reowns_only_unacked() {
        let mut w: TransferWindow<Vec<usize>> = TransferWindow::new();
        w.send_with(|_| vec![0, 1]);
        w.send_with(|_| vec![2]);
        w.ack(1);
        // The peer crashes with sequence 2 still on the wire: closing the
        // channel re-owns exactly the unacked payload.
        let reowned = w.close();
        assert_eq!(reowned, vec![vec![2]]);
        assert!(!w.is_open());
        assert_eq!(w.close(), Vec::<Vec<usize>>::new(), "close is idempotent");
    }

    #[test]
    fn transfer_window_absorbs_duplicate_acks() {
        let mut w: TransferWindow<&'static str> = TransferWindow::new();
        w.send_with(|_| "a");
        w.send_with(|_| "b");
        w.ack(1);
        w.ack(1); // duplicated ack delivery
        w.ack(0); // stale ack must not regress the watermark
        assert_eq!(w.acked_watermark(), 1);
        assert_eq!(w.unacked().count(), 1);
        w.ack(2);
        assert!(w.fully_acked());
    }

    #[test]
    fn transfer_window_refuses_offer_to_evicted_slave() {
        let mut w: TransferWindow<Vec<usize>> = TransferWindow::new();
        w.close();
        assert!(w.send_with(|_| vec![7]).is_none(), "no sends after close");
        assert_eq!(w.seq_sent(), 0, "no sequence allocated for the refusal");
        assert!(!w.accept(1), "inbound from an evicted peer is ignored");
        assert_eq!(w.recv_watermark(), 0);
    }

    #[test]
    fn transfer_window_dedups_and_acks_inbound() {
        let mut w: TransferWindow<()> = TransferWindow::new();
        assert!(w.accept(2));
        assert!(!w.accept(2), "duplicate payload must not be fresh");
        assert_eq!(w.recv_watermark(), 0, "gap at 1 holds the watermark");
        assert!(w.accept(1));
        assert_eq!(w.recv_watermark(), 2);
        w.reset();
        assert!(w.accept(1), "reset reopens a fresh channel");
        assert_eq!(w.seq_sent(), 0);
    }
}
