//! # dlb-core — run-time system with dynamic load balancing
//!
//! The primary contribution of Siegell & Steenkiste (HPDC 1994): a
//! master/slave run-time library that executes compiler-generated SPMD
//! programs on a network of workstations and **dynamically rebalances**
//! loop iterations as competing load comes and goes.
//!
//! * [`balancer`] — the central decision engine: trend-filtered rates
//!   ([`rate`]), rate-proportional allocation and movement planning
//!   ([`alloc`]), automatic frequency selection ([`frequency`]), the 10 %
//!   threshold and profitability refinements (§3.2).
//! * [`master`] — the master process: program control mimicking the
//!   application's loop structure (§4.1), status/instruction exchange
//!   (pipelined or synchronous, Fig. 2), invocation settlement, gather.
//! * Engines — compiler patterns from `dlb-compiler`:
//!   [`engine_independent`] (MM), [`engine_pipelined`] (SOR, with
//!   set-aside/catch-up work movement, §4.5), [`engine_shrinking`] (LU,
//!   active/inactive slices, §4.7).
//! * [`driver`] — one-call execution: [`driver::run`] builds the simulated
//!   cluster, wires everything, and returns a [`driver::RunReport`] with
//!   timings, the paper's efficiency metric, the balancing timeline
//!   (Fig. 9), and the verified result data.
//!
//! ```
//! use dlb_core::driver::{run, AppSpec, RunConfig};
//! use dlb_core::kernels::IndependentKernel;
//! use dlb_sim::CpuWork;
//! use std::sync::Arc;
//!
//! struct Halve {
//!     n: usize,
//! }
//! impl IndependentKernel for Halve {
//!     fn n_units(&self) -> usize {
//!         self.n
//!     }
//!     fn invocations(&self) -> u64 {
//!         1
//!     }
//!     fn init_unit(&self, idx: usize) -> Vec<Vec<f64>> {
//!         vec![vec![idx as f64]]
//!     }
//!     fn compute(&self, _idx: usize, unit: &mut Vec<Vec<f64>>, _inv: u64) {
//!         unit[0][0] /= 2.0;
//!     }
//!     fn unit_cost(&self) -> CpuWork {
//!         CpuWork::from_millis(20)
//!     }
//! }
//!
//! let program = dlb_compiler::programs::matmul(16, 1); // stand-in plan
//! let plan = dlb_compiler::compile(&program).unwrap();
//! let report = run(
//!     AppSpec::Independent(Arc::new(Halve { n: 16 })),
//!     &plan,
//!     RunConfig::homogeneous(4),
//! );
//! assert_eq!(report.result[6][0][0], 3.0);
//! ```

#![forbid(unsafe_code)]

pub mod alloc;
pub mod balancer;
pub mod driver;
pub mod engine_independent;
pub mod engine_pipelined;
pub mod engine_shrinking;
pub mod error;
pub mod frequency;
pub mod kernels;
pub mod master;
pub mod msg;
pub mod protocol;
pub mod rate;
pub mod recovery;
pub mod session;
pub mod slave_common;

pub use balancer::{Balancer, BalancerConfig, BalancerStats, InteractionMode};
pub use driver::{
    block_ranges, engine_for, run, try_run, AppSpec, EngineKind, RunConfig, RunReport,
    StartupDistribution,
};
pub use error::{FaultToleranceConfig, ProtocolError, RunError};
pub use frequency::{FrequencyController, PeriodBounds};
pub use kernels::{IndependentKernel, PipelinedKernel, ShrinkingKernel};
pub use master::{TakeoverKit, TimelineSample};
pub use msg::{Edge, Instructions, MoveOrder, MovedUnit, Msg, Status, TransferMsg, UnitData};
pub use protocol::{AckTracker, SenderWindow, TransferWindow};
pub use rate::RateFilter;
pub use recovery::{RecoveryStats, SlaveFaultStats};
pub use session::model::{
    DeputyModel, EStep, EWire, ElectionModel, ElectionState, JStep, JWire, JoinModel, JoinPhase,
    JoinSlotMaster, JoinSlotSlave, JoinState, ReceiverSlot, RestoreModel, RestoreState, Step,
    TStep, TWire, TransferModel, TransferState, Wire,
};
pub use session::replica::{DeputyState, TakeoverSeed};
