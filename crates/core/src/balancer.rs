//! The central load balancer's decision engine (§3.2).
//!
//! This is the pure, deterministic core the master actor drives: it keeps
//! per-slave trend-filtered rates, computes rate-proportional target
//! distributions, applies the paper's two refinements against excessive
//! movement — the ≥10 % projected-improvement **threshold** and the
//! **profitability** comparison of movement cost against projected benefit
//! — and plans movement orders under the compiler-supplied restriction
//! (direct or adjacent-only). It never touches the network, so every policy
//! is unit-testable.

use crate::alloc::{
    plan_adjacent_shifts, plan_direct_moves, projected_time, proportional_allocation,
};
use crate::frequency::{CostAverage, FrequencyController, PeriodBounds};
use crate::msg::{Instructions, MoveOrder, Status};
use crate::rate::RateFilter;
use dlb_compiler::MovementRule;
use dlb_sim::SimDuration;
use std::collections::VecDeque;

/// How slaves interact with the master at hooks (§3.2, Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InteractionMode {
    /// Fig. 2b: the slave sends status and continues computing; the reply
    /// (based on the *previous* status) is applied at the next hook. Hides
    /// the master round-trip off the critical path.
    Pipelined,
    /// Fig. 2a: the slave blocks at the hook until instructions based on
    /// the status it just sent arrive.
    Synchronous,
}

/// Balancer policy knobs.
#[derive(Clone, Debug)]
pub struct BalancerConfig {
    /// Master switch: disabled = static distribution (the paper's
    /// "parallel execution without DLB" baseline).
    pub enabled: bool,
    pub mode: InteractionMode,
    /// Minimum projected execution-time reduction to act (paper: 10 %).
    pub threshold: f64,
    /// Enable the detailed profitability determination phase.
    pub profitability: bool,
    /// Every slave keeps at least this many units (a pipelined slave with
    /// zero columns would break the boundary chain).
    pub min_per_slave: u64,
    /// Movement restriction from the compiler.
    pub movement: MovementRule,
    /// Rate samples over computation windows shorter than this are ignored
    /// (they are dominated by quantum and catch-up noise; cf. §4.3's
    /// 5-quanta rule).
    pub min_sample: SimDuration,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            enabled: true,
            mode: InteractionMode::Pipelined,
            threshold: 0.10,
            profitability: true,
            min_per_slave: 1,
            movement: MovementRule::Direct,
            min_sample: SimDuration::from_millis(100),
        }
    }
}

/// Counters for reporting and ablation experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct BalancerStats {
    pub statuses: u64,
    pub decisions: u64,
    pub moves_issued: u64,
    pub units_moved: u64,
    pub skipped_balanced: u64,
    pub cancelled_threshold: u64,
    pub cancelled_profitability: u64,
}

/// What the balancer decided for one incoming status.
#[derive(Clone, Debug)]
pub struct Decision {
    pub instructions: Instructions,
    pub raw_rate: f64,
    pub adjusted_rate: f64,
    /// The balancer's post-decision view of the reporting slave's units.
    pub owned_after: u64,
}

/// The decision engine.
pub struct Balancer {
    cfg: BalancerConfig,
    n: usize,
    filters: Vec<RateFilter>,
    /// Last reported active units per slave (sender-accurate).
    reported: Vec<u64>,
    /// Evicted slaves: excluded from every allocation and adjacency
    /// computation, their pending entries cleared.
    dead: Vec<bool>,
    /// Rollback epoch stamped into every instruction (zero outside the
    /// checkpointed engines).
    epoch: u64,
    /// Fixed surcharge on the profitability cost side (seconds): in
    /// recoverable runs, movement enlarges the state that a crash forces
    /// the protocol to restore or roll back, so moves must also buy back
    /// their share of the expected restart cost.
    restart_cost_s: f64,
    /// Transfers we ordered that the receiver has not yet acknowledged, as
    /// a FIFO per receiver of `(units, sender)`.
    pending_in: Vec<VecDeque<(u64, usize)>>,
    /// Orders issued whose sender has not yet confirmed applying them
    /// (by reporting `last_applied_seq`): `(instruction seq, units)`.
    pending_out: Vec<VecDeque<(u64, u64)>>,
    /// Last seen per-sender received counters, per receiver.
    last_received_from: Vec<Vec<u64>>,
    freq: FrequencyController,
    /// Measured per-unit movement time (seconds), exponentially averaged.
    per_unit_move_s: f64,
    move_samples: CostAverage,
    /// How many more times the distributed loop will run (benefit horizon).
    remaining_invocations: u64,
    /// Expected work units between consecutive hook instances on a slave.
    units_per_hook: f64,
    /// Sub-minimum measurement windows accumulate here until they amount
    /// to a usable sample (units, computation time).
    acc: Vec<(u64, SimDuration)>,
    /// Raw-rate divisor: done deltas are counted in sub-units (pipelined
    /// column-blocks), `units_scale` of which make one allocation unit.
    units_scale: f64,
    seq: u64,
    stats: BalancerStats,
}

impl Balancer {
    /// `initial_owned`: the initial block distribution. `per_unit_move_est`:
    /// compiler/network estimate of the time to move one unit, refined by
    /// measurements at run time.
    pub fn new(
        cfg: BalancerConfig,
        initial_owned: Vec<u64>,
        quantum: SimDuration,
        per_unit_move_est: SimDuration,
        remaining_invocations: u64,
        units_per_hook: f64,
    ) -> Balancer {
        let n = initial_owned.len();
        assert!(n > 0);
        Balancer {
            cfg,
            n,
            filters: vec![RateFilter::default(); n],
            reported: initial_owned,
            dead: vec![false; n],
            epoch: 0,
            restart_cost_s: 0.0,
            pending_in: vec![VecDeque::new(); n],
            pending_out: vec![VecDeque::new(); n],
            acc: vec![(0, SimDuration::ZERO); n],
            last_received_from: vec![vec![0; n]; n],
            freq: FrequencyController::new(quantum),
            per_unit_move_s: per_unit_move_est.as_secs_f64(),
            move_samples: CostAverage::default(),
            remaining_invocations: remaining_invocations.max(1),
            units_per_hook,
            units_scale: 1.0,
            seq: 0,
            stats: BalancerStats::default(),
        }
    }

    /// Adjust the benefit horizon (called by the master at invocation
    /// boundaries).
    pub fn set_remaining_invocations(&mut self, r: u64) {
        self.remaining_invocations = r.max(1);
    }

    /// Adjust the expected units per hook (LU's units shrink per step).
    pub fn set_units_per_hook(&mut self, u: f64) {
        self.units_per_hook = u;
    }

    /// Fold a fixed restart-cost surcharge (checkpoint restore / rollback
    /// replay time) into every profitability comparison.
    pub fn set_restart_cost(&mut self, d: SimDuration) {
        self.restart_cost_s = d.as_secs_f64();
    }

    /// The named slave was evicted: drop it from every future allocation
    /// and clear its in-flight accounting (its channels are fenced; units
    /// in flight were re-owned by the survivors, which re-report).
    pub fn mark_dead(&mut self, s: usize) {
        if self.dead[s] {
            return;
        }
        self.dead[s] = true;
        self.reported[s] = 0;
        self.acc[s] = (0, SimDuration::ZERO);
        self.pending_in[s].clear();
        self.pending_out[s].clear();
        for q in &mut self.pending_in {
            q.retain(|&(_, src)| src != s);
        }
    }

    /// The named slave (re)joined: make it allocatable again with clean
    /// accounting. The caller follows up with [`Self::rebase`] (the
    /// admission re-scatter bumps the epoch), which installs the joiner's
    /// new ownership; until its first `Status` report the balancer sees it
    /// as rate-unknown, exactly like a slave at start-up.
    pub fn admit(&mut self, s: usize) {
        self.dead[s] = false;
        self.filters[s] = RateFilter::default();
        self.reported[s] = 0;
        self.acc[s] = (0, SimDuration::ZERO);
        self.pending_in[s].clear();
        self.pending_out[s].clear();
        for row in &mut self.last_received_from {
            row[s] = 0;
        }
        self.last_received_from[s].iter_mut().for_each(|v| *v = 0);
    }

    /// Rollback: adopt a new epoch (stamped into every instruction so
    /// stale orders are discarded), discard all in-flight accounting, and
    /// install the post-rollback distribution.
    pub fn rebase(&mut self, epoch: u64, owned: Vec<u64>) {
        self.epoch = epoch;
        self.reported = owned;
        for q in &mut self.pending_in {
            q.clear();
        }
        for q in &mut self.pending_out {
            q.clear();
        }
        for row in &mut self.last_received_from {
            row.iter_mut().for_each(|v| *v = 0);
        }
        for a in &mut self.acc {
            *a = (0, SimDuration::ZERO);
        }
    }

    /// Set the raw-rate divisor: the pipelined engine counts done deltas in
    /// column-blocks, `nblocks` of which make one column (the allocation
    /// unit). Rates are then columns/second, commensurate with `active`.
    pub fn set_units_scale(&mut self, scale: f64) {
        assert!(scale > 0.0 && scale.is_finite());
        self.units_scale = scale;
    }

    /// Record one master↔slave interaction cost sample.
    pub fn record_interaction(&mut self, d: SimDuration) {
        self.freq.record_interaction(d);
    }

    /// Current frequency bounds (for Fig. 4 reporting).
    pub fn period_bounds(&self) -> PeriodBounds {
        self.freq.bounds()
    }

    pub fn stats(&self) -> BalancerStats {
        self.stats
    }

    /// The balancer's current view of per-slave unit counts.
    pub fn owned_view(&self) -> Vec<u64> {
        (0..self.n).map(|i| self.owned(i)).collect()
    }

    fn owned(&self, i: usize) -> u64 {
        let unapplied: u64 = self.pending_out[i].iter().map(|&(_, u)| u).sum();
        let incoming: u64 = self.pending_in[i].iter().map(|&(u, _)| u).sum();
        self.reported[i].saturating_sub(unapplied) + incoming
    }

    /// Adjacent boundaries (`min(src, dst)`) that still have an
    /// unacknowledged transfer in flight. Issuing another order across such
    /// a boundary could cross an in-flight transfer in the opposite
    /// direction and tear the block distribution apart.
    fn busy_boundaries(&self, alive: &[usize]) -> Vec<bool> {
        let pos = |i: usize| alive.iter().position(|&a| a == i);
        let mut busy = vec![false; alive.len().saturating_sub(1)];
        for (dst, q) in self.pending_in.iter().enumerate() {
            for &(_, src) in q {
                if let (Some(ps), Some(pd)) = (pos(src), pos(dst)) {
                    if ps + 1 == pd || pd + 1 == ps {
                        busy[ps.min(pd)] = true;
                    }
                }
            }
        }
        busy
    }

    /// Acknowledge a slave's cumulative per-sender received counters,
    /// clearing matched in-flight entries. Per-sender matching matters:
    /// transfers from different senders to the same receiver are unordered,
    /// and popping the wrong entry would clear a busy boundary early.
    pub fn ack_transfers(&mut self, slave: usize, received_from: &[u64]) {
        for (sender, &seen) in received_from.iter().enumerate() {
            let newly = seen.saturating_sub(self.last_received_from[slave][sender]);
            self.last_received_from[slave][sender] = seen;
            for _ in 0..newly {
                if let Some(pos) = self.pending_in[slave]
                    .iter()
                    .position(|&(_, src)| src == sender)
                {
                    self.pending_in[slave].remove(pos);
                }
            }
        }
    }

    /// Number of issued move orders whose transfer has not yet been
    /// acknowledged by the receiver. The master must not settle an
    /// invocation while this is nonzero: a still-unexecuted order would
    /// otherwise fire after the barrier and tear the next invocation's
    /// bookkeeping apart.
    pub fn outstanding_orders(&self) -> usize {
        self.pending_in.iter().map(|q| q.len()).sum()
    }

    /// Process one status message and produce instructions for that slave.
    pub fn on_status(&mut self, s: &Status) -> Decision {
        assert!(s.slave < self.n, "unknown slave");
        self.stats.statuses += 1;
        self.ack_transfers(s.slave, &s.received_from);
        // Orders the slave has applied are now reflected in its report.
        while let Some(&(seq, _)) = self.pending_out[s.slave].front() {
            if seq <= s.last_applied_seq {
                self.pending_out[s.slave].pop_front();
            } else {
                break;
            }
        }

        // Rate measurement + filtering. Individual windows can be shorter
        // than the scheduling quantum (catch-up bursts, bootstrap before
        // skip counts arrive); accumulate them until the sample spans at
        // least `min_sample` of computation, per §4.3's averaging rule.
        let (acc_units, acc_busy) = &mut self.acc[s.slave];
        *acc_units += s.units_done_delta;
        *acc_busy += s.elapsed;
        let (raw, adjusted) = if *acc_busy >= self.cfg.min_sample {
            let raw = *acc_units as f64 / (acc_busy.as_secs_f64() * self.units_scale);
            self.acc[s.slave] = (0, SimDuration::ZERO);
            (raw, self.filters[s.slave].update(raw))
        } else {
            let f = &self.filters[s.slave];
            (f.last_raw(), f.adjusted())
        };
        self.reported[s.slave] = s.active_units;

        // Cost measurements.
        if let Some(d) = s.interaction_cost_sample {
            self.freq.record_interaction(d);
        }
        if let Some((units, d)) = s.move_cost_sample {
            self.freq.record_movement(d);
            if units > 0 {
                let per = d.as_secs_f64() / units as f64;
                // Exponential refinement of the per-unit estimate.
                self.per_unit_move_s += 0.3 * (per - self.per_unit_move_s);
                self.move_samples.record(d);
            }
        }

        let moves = self.decide_moves(s.slave);
        let hooks_to_skip = self.freq.hooks_to_skip(adjusted, self.units_per_hook);
        self.seq += 1; // matches the seq recorded for pending_out entries
        Decision {
            instructions: Instructions {
                seq: self.seq,
                epoch: self.epoch,
                moves,
                hooks_to_skip,
            },
            raw_rate: raw,
            adjusted_rate: adjusted,
            owned_after: self.owned(s.slave),
        }
    }

    fn decide_moves(&mut self, reporting: usize) -> Vec<MoveOrder> {
        if !self.cfg.enabled || self.dead[reporting] {
            return Vec::new();
        }
        // Allocation runs over the *live* slaves only: evicted slaves are
        // compacted away, which also makes "adjacent" mean adjacent
        // surviving pipeline neighbours.
        let alive: Vec<usize> = (0..self.n).filter(|&i| !self.dead[i]).collect();
        if alive.len() < 2 {
            return Vec::new();
        }
        if alive.iter().any(|&i| !self.filters[i].is_initialized()) {
            return Vec::new();
        }
        self.stats.decisions += 1;
        let rates: Vec<f64> = alive.iter().map(|&i| self.filters[i].adjusted()).collect();
        let owned: Vec<u64> = alive.iter().map(|&i| self.owned(i)).collect();
        let total: u64 = owned.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        let target = proportional_allocation(total, &rates, self.cfg.min_per_slave);
        if target == owned {
            self.stats.skipped_balanced += 1;
            return Vec::new();
        }

        // Refinement 1: require >= threshold projected improvement.
        let t_cur = projected_time(&owned, &rates);
        let t_new = projected_time(&target, &rates);
        if !(t_cur.is_finite()) {
            // A stalled slave holding work: always act.
        } else if t_cur <= 0.0 || (t_cur - t_new) / t_cur < self.cfg.threshold {
            self.stats.cancelled_threshold += 1;
            return Vec::new();
        }

        // Refinement 2: profitability — movement must pay for itself over
        // the remaining invocations, including the restart-cost surcharge
        // recoverable runs put on every reconfiguration.
        let units_to_move: u64 = owned
            .iter()
            .zip(&target)
            .map(|(&o, &t)| o.saturating_sub(t))
            .sum();
        if self.cfg.profitability && t_cur.is_finite() {
            let est_cost = units_to_move as f64 * self.per_unit_move_s + self.restart_cost_s;
            let benefit = (t_cur - t_new) * self.remaining_invocations as f64;
            if est_cost > benefit {
                self.stats.cancelled_profitability += 1;
                return Vec::new();
            }
        }

        let all_orders = match self.cfg.movement {
            MovementRule::Direct => plan_direct_moves(&owned, &target),
            MovementRule::AdjacentOnly => plan_adjacent_shifts(&owned, &target),
        };
        // Only the reporting slave gets its orders now; other slaves will be
        // re-planned when they report. Apply optimistic accounting so the
        // same move is not issued twice, and never issue across an adjacent
        // boundary that still has a transfer in flight (a crossing pair of
        // opposite-direction transfers would break block contiguity).
        let busy = self.busy_boundaries(&alive);
        let mut mine = Vec::new();
        for (from_c, order_c) in all_orders {
            let from = alive[from_c];
            if from != reporting {
                continue;
            }
            let to = alive[order_c.to];
            let adjacent = from_c + 1 == order_c.to || order_c.to + 1 == from_c;
            if adjacent && busy[from_c.min(order_c.to)] {
                continue;
            }
            let order = MoveOrder {
                to,
                count: order_c.count,
                edge: order_c.edge,
            };
            self.pending_out[reporting].push_back((self.seq + 1, order.count));
            self.pending_in[to].push_back((order.count, reporting));
            self.stats.moves_issued += 1;
            self.stats.units_moved += order.count;
            mine.push(order);
        }
        mine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_sim::SimDuration;

    fn status(slave: usize, done: u64, secs: f64, active: u64) -> Status {
        Status {
            slave,
            invocation: 0,
            hook_seq: 0,
            units_done_delta: done,
            elapsed: SimDuration::from_secs_f64(secs),
            active_units: active,
            last_applied_seq: u64::MAX, // tests: reports always current
            epoch: 0,
            sent_to: Vec::new(),
            received_from: Vec::new(),
            move_cost_sample: None,
            interaction_cost_sample: None,
        }
    }

    fn quantum() -> SimDuration {
        SimDuration::from_millis(100)
    }

    fn mk(cfg: BalancerConfig, owned: Vec<u64>) -> Balancer {
        Balancer::new(cfg, owned, quantum(), SimDuration::from_millis(10), 1, 1.0)
    }

    /// Warm all slaves with equal rates.
    fn warm(b: &mut Balancer, n: usize, units_each: u64) {
        for i in 0..n {
            let d = b.on_status(&status(i, 10, 1.0, units_each));
            assert!(d.instructions.moves.is_empty(), "no moves while warming");
        }
    }

    #[test]
    fn no_moves_when_balanced() {
        let mut b = mk(BalancerConfig::default(), vec![25; 4]);
        warm(&mut b, 4, 25);
        for i in 0..4 {
            let d = b.on_status(&status(i, 10, 1.0, 25));
            assert!(d.instructions.moves.is_empty());
        }
        assert!(b.stats().units_moved == 0);
    }

    #[test]
    fn slow_slave_sheds_work() {
        let mut b = mk(BalancerConfig::default(), vec![25; 4]);
        warm(&mut b, 4, 25);
        // Slave 0's rate collapses to half; persistent trend over a few
        // statuses so the filter follows.
        let mut moved = 0;
        for _ in 0..5 {
            let d = b.on_status(&status(0, 5, 1.0, 25 - moved));
            for m in &d.instructions.moves {
                assert_ne!(m.to, 0);
                moved += m.count;
            }
            for i in 1..4 {
                b.on_status(&status(i, 10, 1.0, 25));
            }
        }
        assert!(moved >= 3, "expected shedding, moved {moved}");
        // Final view: slave 0 below equal share.
        assert!(b.owned_view()[0] < 25);
    }

    #[test]
    fn threshold_blocks_small_imbalance() {
        let mut b = mk(BalancerConfig::default(), vec![25; 4]);
        warm(&mut b, 4, 25);
        // 10% slower: rebalancing would only shave ~6% off the projected
        // completion time -> below the 10% threshold, no move.
        for _ in 0..6 {
            let d = b.on_status(&status(0, 90, 10.0, 25));
            assert!(d.instructions.moves.is_empty(), "{:?}", d.instructions);
            for i in 1..4 {
                b.on_status(&status(i, 100, 10.0, 25));
            }
        }
        assert!(b.stats().cancelled_threshold > 0);
        assert_eq!(b.stats().units_moved, 0);
    }

    #[test]
    fn disabled_balancer_never_moves() {
        let cfg = BalancerConfig {
            enabled: false,
            ..Default::default()
        };
        let mut b = mk(cfg, vec![25; 4]);
        for _ in 0..3 {
            for i in 0..4 {
                let rate = if i == 0 { 1 } else { 100 };
                let d = b.on_status(&status(i, rate, 1.0, 25));
                assert!(d.instructions.moves.is_empty());
            }
        }
    }

    #[test]
    fn profitability_blocks_one_shot_gain() {
        // Movement very expensive, single invocation remaining, modest gain.
        let mut b = Balancer::new(
            BalancerConfig::default(),
            vec![25; 4],
            quantum(),
            SimDuration::from_secs(100), // 100 s per unit moved!
            1,
            1.0,
        );
        warm(&mut b, 4, 25);
        for _ in 0..4 {
            let d = b.on_status(&status(0, 5, 1.0, 25));
            assert!(d.instructions.moves.is_empty());
            for i in 1..4 {
                b.on_status(&status(i, 10, 1.0, 25));
            }
        }
        assert!(b.stats().cancelled_profitability > 0);
    }

    #[test]
    fn restart_cost_suppresses_marginal_moves() {
        let mut b = mk(BalancerConfig::default(), vec![25; 4]);
        b.set_restart_cost(SimDuration::from_secs(10_000));
        warm(&mut b, 4, 25);
        for _ in 0..5 {
            let d = b.on_status(&status(0, 5, 1.0, 25));
            assert!(d.instructions.moves.is_empty(), "{:?}", d.instructions);
            for i in 1..4 {
                b.on_status(&status(i, 10, 1.0, 25));
            }
        }
        assert!(b.stats().cancelled_profitability > 0);
        assert_eq!(b.stats().units_moved, 0);
    }

    #[test]
    fn dead_slave_excluded_from_allocation() {
        let mut b = mk(BalancerConfig::default(), vec![25; 4]);
        warm(&mut b, 4, 25);
        b.mark_dead(3);
        // Slave 0 collapses; orders must never target the dead slave, and
        // the allocation rebalances among survivors only.
        let mut moved = 0;
        for _ in 0..5 {
            let d = b.on_status(&status(0, 5, 1.0, 25 - moved));
            for m in &d.instructions.moves {
                assert_ne!(m.to, 3, "move targeted a dead slave");
                assert_ne!(m.to, 0);
                moved += m.count;
            }
            for i in 1..3 {
                b.on_status(&status(i, 10, 1.0, 25));
            }
        }
        assert!(
            moved >= 3,
            "expected shedding among survivors, moved {moved}"
        );
        // A status from the dead slave itself yields no moves.
        let d = b.on_status(&status(3, 10, 1.0, 25));
        assert!(d.instructions.moves.is_empty());
    }

    #[test]
    fn profitability_allows_repeated_gain() {
        // Same expensive movement, but 1000 invocations remain: pays off.
        let mut b = Balancer::new(
            BalancerConfig::default(),
            vec![25; 4],
            quantum(),
            SimDuration::from_millis(100),
            1000,
            1.0,
        );
        warm(&mut b, 4, 25);
        let mut moved = 0;
        for _ in 0..5 {
            let d = b.on_status(&status(0, 5, 1.0, 25));
            moved += d.instructions.moves.iter().map(|m| m.count).sum::<u64>();
            for i in 1..4 {
                b.on_status(&status(i, 10, 1.0, 25));
            }
        }
        assert!(moved > 0);
    }

    #[test]
    fn adjacent_mode_only_moves_to_neighbors() {
        let cfg = BalancerConfig {
            movement: MovementRule::AdjacentOnly,
            ..Default::default()
        };
        let mut b = mk(cfg, vec![25; 4]);
        warm(&mut b, 4, 25);
        for round in 0..6 {
            for i in 0..4 {
                let rate = if i == 0 { 4 } else { 10 };
                let d = b.on_status(&status(i, rate, 1.0, b.owned_view()[i]));
                for m in &d.instructions.moves {
                    assert!(
                        m.to + 1 == i || i + 1 == m.to,
                        "round {round}: slave {i} ordered to send to non-neighbor {}",
                        m.to
                    );
                }
            }
        }
    }

    #[test]
    fn optimistic_accounting_prevents_duplicate_orders() {
        let mut b = mk(BalancerConfig::default(), vec![25; 4]);
        warm(&mut b, 4, 25);
        // Slave 0 is slow; it reports twice in a row before anyone else's
        // counts change. Total ordered out of slave 0 must not exceed its
        // holdings or double-issue.
        let mut total_ordered = 0;
        for _ in 0..2 {
            let d = b.on_status(&status(0, 5, 1.0, 25 - total_ordered));
            total_ordered += d.instructions.moves.iter().map(|m| m.count).sum::<u64>();
        }
        assert!(total_ordered <= 25);
        // View stays conserved.
        assert_eq!(b.owned_view().iter().sum::<u64>(), 100);
    }

    #[test]
    fn transfer_acks_clear_pending() {
        let mut b = mk(BalancerConfig::default(), vec![25, 25]);
        warm(&mut b, 2, 25);
        // Force issues by making slave 0 slow; count the transfer messages.
        let mut sent_units = 0;
        let mut transfer_msgs = 0;
        for _ in 0..5 {
            let d = b.on_status(&status(0, 2, 1.0, 25 - sent_units));
            for m in &d.instructions.moves {
                sent_units += m.count;
                transfer_msgs += 1;
            }
            b.on_status(&status(1, 10, 1.0, 25));
        }
        assert!(sent_units > 0, "expected the balancer to shed work");
        // The view stays conserved while transfers are in flight...
        assert_eq!(b.owned_view().iter().sum::<u64>(), 50);
        // ...and after the receiver acknowledges all of them.
        let mut st = status(1, 10, 1.0, 25 + sent_units);
        st.received_from = vec![transfer_msgs, 0];
        b.on_status(&st);
        assert_eq!(b.owned_view().iter().sum::<u64>(), 50);
        assert_eq!(b.owned_view()[1], 25 + sent_units);
    }

    #[test]
    fn hooks_to_skip_scales_with_rate() {
        let mut b = mk(BalancerConfig::default(), vec![25; 4]);
        warm(&mut b, 4, 25);
        let slow = b.on_status(&status(0, 10, 1.0, 25));
        let fast = b.on_status(&status(1, 1000, 1.0, 25));
        assert!(fast.instructions.hooks_to_skip > slow.instructions.hooks_to_skip);
    }

    #[test]
    fn rates_exposed_in_decision() {
        let mut b = mk(BalancerConfig::default(), vec![10, 10]);
        let d = b.on_status(&status(0, 50, 2.0, 10));
        assert_eq!(d.raw_rate, 25.0);
        assert_eq!(d.adjusted_rate, 25.0); // first sample adopted
    }
}

#[cfg(test)]
mod tests_accounting {
    use super::*;
    use dlb_sim::SimDuration;

    fn status(slave: usize, done: u64, secs: f64, active: u64) -> Status {
        Status {
            slave,
            invocation: 0,
            hook_seq: 0,
            units_done_delta: done,
            elapsed: SimDuration::from_secs_f64(secs),
            active_units: active,
            last_applied_seq: u64::MAX,
            epoch: 0,
            sent_to: Vec::new(),
            received_from: Vec::new(),
            move_cost_sample: None,
            interaction_cost_sample: None,
        }
    }

    fn mk(owned: Vec<u64>) -> Balancer {
        Balancer::new(
            BalancerConfig::default(),
            owned,
            SimDuration::from_millis(100),
            SimDuration::from_millis(10),
            1,
            1.0,
        )
    }

    #[test]
    fn units_scale_divides_raw_rate() {
        let mut b = mk(vec![10, 10]);
        b.set_units_scale(10.0);
        let d = b.on_status(&status(0, 100, 1.0, 10));
        assert_eq!(d.raw_rate, 10.0); // 100 sub-units / (1 s * scale 10)
    }

    #[test]
    fn min_sample_window_ignored() {
        let mut b = mk(vec![10, 10]);
        b.on_status(&status(0, 100, 1.0, 10)); // raw 100
                                               // A 1 ms window with absurd implied rate must not move the filter.
        let d = b.on_status(&status(0, 50, 0.001, 10));
        assert_eq!(d.raw_rate, 100.0, "short window should reuse last raw");
    }

    #[test]
    fn stale_status_does_not_double_issue() {
        // After issuing an order, a status that has NOT yet applied it
        // (last_applied_seq older) must not make the balancer re-issue.
        let mut b = mk(vec![25, 25]);
        // Warm filters.
        b.on_status(&status(0, 10, 1.0, 25));
        b.on_status(&status(1, 10, 1.0, 25));
        // Slave 0 is slow; force an order.
        let mut first = None;
        for _ in 0..4 {
            let mut st = status(0, 3, 1.0, 25);
            st.last_applied_seq = 0; // nothing applied yet
            let d = b.on_status(&st);
            if !d.instructions.moves.is_empty() {
                first = Some(d.instructions.clone());
                break;
            }
            b.on_status(&status(1, 10, 1.0, 25));
        }
        let first = first.expect("an order should be issued");
        let moved: u64 = first.moves.iter().map(|m| m.count).sum();
        // Another stale status (active still 25, seq still 0): the pending
        // outbound order must be discounted, so no duplicate order.
        let mut st = status(0, 3, 1.0, 25);
        st.last_applied_seq = 0;
        let d2 = b.on_status(&st);
        let moved2: u64 = d2.instructions.moves.iter().map(|m| m.count).sum();
        assert!(
            moved2 < moved.max(2),
            "stale report re-issued {moved2} after {moved}"
        );
        assert_eq!(b.owned_view().iter().sum::<u64>(), 50);
    }

    #[test]
    fn outstanding_orders_tracked_until_receiver_ack() {
        let mut b = mk(vec![25, 25]);
        b.on_status(&status(0, 10, 1.0, 25));
        b.on_status(&status(1, 10, 1.0, 25));
        let mut issued = 0;
        for _ in 0..4 {
            let d = b.on_status(&status(0, 3, 1.0, b.owned_view()[0]));
            issued += d.instructions.moves.len();
            b.on_status(&status(1, 10, 1.0, 25));
            if issued > 0 {
                break;
            }
        }
        assert!(issued > 0);
        assert!(b.outstanding_orders() > 0);
        // Receiver acknowledges all transfers from slave 0.
        let mut st = status(1, 10, 1.0, 40);
        st.received_from = vec![issued as u64, 0];
        b.on_status(&st);
        assert_eq!(b.outstanding_orders(), 0);
    }

    #[test]
    fn period_bounds_reflect_samples() {
        let mut b = mk(vec![10, 10]);
        let mut st = status(0, 10, 1.0, 10);
        st.interaction_cost_sample = Some(SimDuration::from_millis(40));
        st.move_cost_sample = Some((5, SimDuration::from_secs(10)));
        b.on_status(&st);
        let bounds = b.period_bounds();
        assert_eq!(bounds.interaction_bound, SimDuration::from_millis(800));
        assert_eq!(bounds.movement_bound, SimDuration::from_secs(1));
        assert_eq!(bounds.target, SimDuration::from_secs(1));
    }
}
