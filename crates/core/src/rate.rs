//! Computation-rate measurement and trend-weighted filtering (§3.2).
//!
//! Slave performance is expressed in **work units per second**, where work
//! units are iterations of the distributed loop. With this application-
//! specific measure there is no need to measure processor load directly or
//! to weight heterogeneous processors: a slave that is twice as fast (or
//! half as loaded) simply reports twice the rate.
//!
//! Raw rates oscillate — OS time-slicing, message waits, and cache effects
//! all perturb a single measurement. The paper filters new rate information
//! by averaging it with older information, *"with relative weights set
//! according to trends observed in the rates"*: a persistent trend means
//! the load really changed and the filter should follow quickly; an
//! isolated spike should be damped.

/// Trend-weighted exponential rate filter for one slave.
#[derive(Clone, Debug)]
pub struct RateFilter {
    /// Current filtered (adjusted) rate, units/second.
    adjusted: f64,
    /// Previous raw sample.
    last_raw: f64,
    /// Signed count of consecutive same-direction deviations of the raw
    /// samples from the adjusted rate (positive = consistently above).
    trend: i32,
    /// Weight given to a new sample when no trend is established.
    base_weight: f64,
    /// Weight given to a new sample once a trend is confirmed.
    trend_weight: f64,
    /// Deviations smaller than this fraction of the adjusted rate are
    /// treated as noise and do not build a trend.
    dead_band: f64,
    initialized: bool,
}

impl Default for RateFilter {
    fn default() -> Self {
        RateFilter::new(0.25, 0.8, 0.05)
    }
}

impl RateFilter {
    /// Create a filter: `base_weight` applies to isolated deviations,
    /// `trend_weight` once two consecutive samples deviate the same way,
    /// `dead_band` is the relative noise threshold.
    pub fn new(base_weight: f64, trend_weight: f64, dead_band: f64) -> RateFilter {
        assert!((0.0..=1.0).contains(&base_weight));
        assert!((0.0..=1.0).contains(&trend_weight));
        RateFilter {
            adjusted: 0.0,
            last_raw: 0.0,
            trend: 0,
            base_weight,
            trend_weight,
            dead_band,
            initialized: false,
        }
    }

    /// Feed one raw measurement; returns the new adjusted rate.
    pub fn update(&mut self, raw: f64) -> f64 {
        assert!(raw.is_finite() && raw >= 0.0, "raw rate must be >= 0");
        if !self.initialized {
            self.adjusted = raw;
            self.last_raw = raw;
            self.initialized = true;
            return self.adjusted;
        }
        let dev = raw - self.adjusted;
        let rel = if self.adjusted > 0.0 {
            dev.abs() / self.adjusted
        } else {
            1.0
        };
        if rel <= self.dead_band {
            self.trend = 0;
        } else if dev > 0.0 {
            self.trend = if self.trend > 0 { self.trend + 1 } else { 1 };
        } else {
            self.trend = if self.trend < 0 { self.trend - 1 } else { -1 };
        }
        let w = if self.trend.abs() >= 2 {
            self.trend_weight
        } else {
            self.base_weight
        };
        self.adjusted += w * dev;
        self.last_raw = raw;
        self.adjusted
    }

    /// Current adjusted rate.
    pub fn adjusted(&self) -> f64 {
        self.adjusted
    }

    /// Most recent raw sample.
    pub fn last_raw(&self) -> f64 {
        self.last_raw
    }

    /// Has at least one sample been seen?
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_adopted_directly() {
        let mut f = RateFilter::default();
        assert_eq!(f.update(100.0), 100.0);
        assert!(f.is_initialized());
    }

    #[test]
    fn isolated_spike_is_damped() {
        let mut f = RateFilter::default();
        f.update(100.0);
        let after_spike = f.update(200.0); // single spike
        assert!(after_spike < 130.0, "spike too influential: {after_spike}");
        // Returning to normal pulls it back.
        let back = f.update(100.0);
        assert!(back < after_spike);
    }

    #[test]
    fn sustained_change_is_tracked_quickly() {
        let mut f = RateFilter::default();
        f.update(100.0);
        // The load genuinely dropped the rate to 50: after a few samples the
        // filter should be close.
        let mut last = 0.0;
        for _ in 0..4 {
            last = f.update(50.0);
        }
        assert!(
            (last - 50.0).abs() < 5.0,
            "filter too slow on a real change: {last}"
        );
    }

    #[test]
    fn trend_tracking_beats_flat_ewma() {
        // Compare convergence after a step change against a plain EWMA with
        // the same base weight: the trend filter must converge faster.
        let mut trendful = RateFilter::default();
        let mut flat = 100.0f64;
        trendful.update(100.0);
        let mut t = 0.0;
        for _ in 0..3 {
            t = trendful.update(20.0);
            flat += 0.25 * (20.0 - flat);
        }
        assert!(t < flat, "trend filter {t} should beat flat EWMA {flat}");
    }

    #[test]
    fn oscillation_is_smoothed() {
        // Alternating 150/50 raw samples (mean 100): the adjusted rate must
        // stay well inside the raw swing.
        let mut f = RateFilter::default();
        f.update(100.0);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for i in 0..20 {
            let raw = if i % 2 == 0 { 150.0 } else { 50.0 };
            let adj = f.update(raw);
            if i > 4 {
                lo = lo.min(adj);
                hi = hi.max(adj);
            }
        }
        assert!(hi - lo < 60.0, "oscillation not smoothed: [{lo}, {hi}]");
        assert!(lo > 50.0 && hi < 150.0);
    }

    #[test]
    fn dead_band_ignores_noise() {
        let mut f = RateFilter::new(0.25, 0.8, 0.05);
        f.update(100.0);
        f.update(102.0); // within 5% dead band: no trend builds
        f.update(103.0);
        let adj = f.update(102.0);
        assert!((adj - 100.0).abs() < 3.0);
    }

    #[test]
    fn zero_rates_handled() {
        let mut f = RateFilter::default();
        f.update(0.0);
        assert_eq!(f.adjusted(), 0.0);
        let up = f.update(10.0);
        assert!(up > 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_rate_rejected() {
        RateFilter::default().update(-1.0);
    }
}
