//! Shared slave-side machinery: hook bookkeeping, status exchange, and
//! instruction application (§4.2, §3.2).
//!
//! The compiler inserts *hooks* — conditional calls to this code — into the
//! generated loop nest. A hook usually just decrements a counter (we charge
//! a tiny CPU cost for the check); when it fires, the slave measures the
//! elapsed time and work since the last firing, sends a [`Status`], and —
//! depending on the interaction mode — either applies previously received
//! instructions (pipelined, Fig. 2b) or blocks for fresh ones
//! (synchronous, Fig. 2a).
//!
//! All blocking receives route through [`SlaveCommon::recv_blocking`], which
//! always also accepts `Abort` / `Evict` (so a master-initiated shutdown can
//! never deadlock a slave, fault mode or not) and, in fault mode, bounds the
//! wait with the configured operation timeout.

use crate::balancer::InteractionMode;
use crate::error::{slave_who, FaultToleranceConfig, ProtocolError};
use crate::msg::{Instructions, MoveOrder, Msg, Status};
use dlb_sim::{ActorCtx, ActorId, CpuWork, Envelope, SimDuration, SimTime};

/// Contents of the `Start` message: slave ids, initial block assignment,
/// and rows per block.
pub type StartInfo = (Vec<ActorId>, Vec<(usize, usize)>, u64);

/// Wait for the initial `Start` message (before a [`SlaveCommon`] exists).
pub fn recv_start(
    ctx: &ActorCtx<Msg>,
    idx: usize,
    ft: Option<&FaultToleranceConfig>,
) -> Result<StartInfo, ProtocolError> {
    let pred = |m: &Msg| matches!(m, Msg::Start { .. } | Msg::Abort | Msg::Evict);
    let env = match ft {
        None => ctx.recv_match(pred),
        Some(ft) => ctx
            .recv_match_deadline(pred, ctx.now() + ft.op_timeout)
            .ok_or_else(|| ProtocolError::Timeout {
                who: slave_who(idx),
                waiting_for: "start message",
                at: ctx.now(),
            })?,
    };
    match env.msg {
        Msg::Start {
            slaves,
            assignment,
            block_rows,
        } => Ok((slaves, assignment, block_rows)),
        Msg::Abort => Err(ProtocolError::Aborted),
        Msg::Evict => Err(ProtocolError::Evicted { slave: idx }),
        _ => unreachable!(),
    }
}

/// Per-slave hook/interaction state.
pub struct SlaveCommon {
    /// This slave's index (0-based, slave order = unit order).
    pub idx: usize,
    /// The master's actor id.
    pub master: ActorId,
    /// All slave actor ids, indexed by slave index.
    pub slaves: Vec<ActorId>,
    pub mode: InteractionMode,
    /// Fault-tolerance timeouts; `None` outside fault mode.
    pub ft: Option<FaultToleranceConfig>,
    /// CPU cost of the hook *check* itself.
    pub hook_check_cpu: CpuWork,
    /// Hooks to skip between firings (updated by instructions).
    skip: u64,
    since_fire: u64,
    last_fire_time: SimTime,
    /// Monotone count of hook firings (dedups duplicated statuses).
    hook_seq: u64,
    /// Work units completed since the last firing.
    pub done_delta: u64,
    /// Computation time (stretched by competing load) since the last
    /// firing. Rates are units per *computation* second (§4.2: the hook
    /// "measures the time spent in the computation") so that pipeline
    /// stalls and barrier waits do not masquerade as lost capacity.
    busy_delta: SimDuration,
    /// Cumulative transfer counters (reported to the master for settlement).
    pub transfers_sent: u64,
    /// Transfers received, by sender index.
    pub received_from: Vec<u64>,
    /// Most recent work-movement cost sample, consumed by the next status.
    pub move_cost_sample: Option<(u64, SimDuration)>,
    interaction_cost_sample: Option<SimDuration>,
    last_instr_seq: u64,
}

impl SlaveCommon {
    pub fn new(
        idx: usize,
        master: ActorId,
        slaves: Vec<ActorId>,
        mode: InteractionMode,
        hook_check_cpu: CpuWork,
        ft: Option<FaultToleranceConfig>,
        now: SimTime,
    ) -> SlaveCommon {
        let n = slaves.len();
        SlaveCommon {
            idx,
            master,
            slaves,
            mode,
            ft,
            hook_check_cpu,
            skip: 0,
            since_fire: 0,
            last_fire_time: now,
            hook_seq: 0,
            done_delta: 0,
            busy_delta: SimDuration::ZERO,
            transfers_sent: 0,
            received_from: vec![0; n],
            move_cost_sample: None,
            interaction_cost_sample: None,
            last_instr_seq: 0,
        }
    }

    /// Record completed work units (counted toward the next status delta).
    pub fn record_done(&mut self, units: u64) {
        self.done_delta += units;
    }

    /// Perform unit computation: advance the CPU and account the elapsed
    /// (load-stretched) time as computation time for rate measurement.
    pub fn compute(&mut self, ctx: &ActorCtx<Msg>, work: CpuWork) {
        let t0 = ctx.now();
        ctx.advance_work(work);
        self.busy_delta += ctx.now().saturating_since(t0);
    }

    /// Send a message to the master.
    pub fn send_master(&self, ctx: &ActorCtx<Msg>, msg: Msg) {
        let bytes = msg.wire_bytes();
        ctx.send(self.master, msg, bytes);
    }

    /// Send a message to another slave.
    pub fn send_slave(&self, ctx: &ActorCtx<Msg>, to: usize, msg: Msg) {
        let bytes = msg.wire_bytes();
        ctx.send(self.slaves[to], msg, bytes);
    }

    /// Blocking receive for a protocol step. Also matches `Abort` / `Evict`
    /// (turned into errors) so master-initiated shutdown cannot deadlock;
    /// in fault mode the wait is bounded by `op_timeout`.
    pub fn recv_blocking(
        &self,
        ctx: &ActorCtx<Msg>,
        mut pred: impl FnMut(&Msg) -> bool,
        waiting_for: &'static str,
    ) -> Result<Envelope<Msg>, ProtocolError> {
        let full = |m: &Msg| pred(m) || matches!(m, Msg::Abort | Msg::Evict);
        let env = match &self.ft {
            None => ctx.recv_match(full),
            Some(ft) => ctx
                .recv_match_deadline(full, ctx.now() + ft.op_timeout)
                .ok_or_else(|| ProtocolError::Timeout {
                    who: slave_who(self.idx),
                    waiting_for,
                    at: ctx.now(),
                })?,
        };
        match env.msg {
            Msg::Abort => Err(ProtocolError::Aborted),
            Msg::Evict => Err(ProtocolError::Evicted { slave: self.idx }),
            _ => Ok(env),
        }
    }

    /// Build the typed error for a message the protocol cannot accept here.
    pub fn unexpected(&self, context: &'static str, msg: &Msg) -> ProtocolError {
        ProtocolError::UnexpectedMessage {
            who: slave_who(self.idx),
            context,
            message: format!("{msg:?}").chars().take(120).collect(),
        }
    }

    fn apply_instructions(&mut self, instr: Instructions, moves: &mut Vec<MoveOrder>) {
        // Instruction sequence numbers are globally monotone, so any
        // duplicate or stale replay (possible only under fault injection)
        // has `seq <= last_instr_seq` and must be ignored wholesale —
        // re-executing its moves would double-send work units.
        if instr.seq > self.last_instr_seq {
            self.last_instr_seq = instr.seq;
            self.skip = instr.hooks_to_skip;
            moves.extend(instr.moves);
        }
    }

    /// The load-balancing hook. Returns movement orders to execute *now*
    /// (empty on skipped hooks). `active_units` is the paper's §4.7 notion:
    /// units owned by this slave that still have future work.
    pub fn hook(
        &mut self,
        ctx: &ActorCtx<Msg>,
        invocation: u64,
        active_units: u64,
    ) -> Result<Vec<MoveOrder>, ProtocolError> {
        ctx.advance_work(self.hook_check_cpu);
        self.since_fire += 1;
        if self.since_fire <= self.skip {
            return Ok(Vec::new());
        }
        self.fire(ctx, invocation, active_units)
    }

    /// Fire the hook unconditionally (used at invocation boundaries so the
    /// final partial period is always reported).
    pub fn fire(
        &mut self,
        ctx: &ActorCtx<Msg>,
        invocation: u64,
        active_units: u64,
    ) -> Result<Vec<MoveOrder>, ProtocolError> {
        self.since_fire = 0;
        self.hook_seq += 1;
        let t0 = ctx.now();
        let mut moves = Vec::new();

        // The status must reflect the state *before* this hook applies any
        // queued instructions: `active_units` was measured before any moves
        // execute, so `last_applied_seq` must predate them too — otherwise
        // the master would treat the stale count as already discounted.
        let status = Status {
            slave: self.idx,
            invocation,
            hook_seq: self.hook_seq,
            units_done_delta: self.done_delta,
            elapsed: self.busy_delta,
            active_units,
            last_applied_seq: self.last_instr_seq,
            transfers_sent: self.transfers_sent,
            received_from: self.received_from.clone(),
            move_cost_sample: self.move_cost_sample.take(),
            interaction_cost_sample: self.interaction_cost_sample.take(),
        };
        if std::env::var_os("DLB_TRACE").is_some() {
            eprintln!(
                "[slave{} t={}] fire inv={invocation} delta={} busy={} active={active_units}",
                self.idx,
                ctx.now(),
                self.done_delta,
                self.busy_delta,
            );
        }
        self.done_delta = 0;
        self.busy_delta = SimDuration::ZERO;
        self.send_master(ctx, Msg::Status(status));

        if self.mode == InteractionMode::Pipelined {
            // Apply instructions that arrived since the last hook (they are
            // based on the status sent then — the pipelining of Fig. 2b).
            while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Instructions(_))) {
                if let Msg::Instructions(i) = env.msg {
                    self.apply_instructions(i, &mut moves);
                }
            }
        }

        if self.mode == InteractionMode::Synchronous {
            // Block for the instructions computed from the status we just
            // sent: the whole round trip sits on the critical path.
            let env = self.recv_blocking(
                ctx,
                |m| matches!(m, Msg::Instructions(_)),
                "balancing instructions",
            )?;
            if let Msg::Instructions(i) = env.msg {
                self.apply_instructions(i, &mut moves);
            }
        }

        let now = ctx.now();
        self.interaction_cost_sample = Some(now.saturating_since(t0));
        self.last_fire_time = now;
        Ok(moves)
    }
}
