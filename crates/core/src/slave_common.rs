//! Shared slave-side machinery: hook bookkeeping, status exchange,
//! instruction application (§4.2, §3.2), and the sequenced slave↔slave
//! transfer channels that make work migration crash-safe.
//!
//! The compiler inserts *hooks* — conditional calls to this code — into the
//! generated loop nest. A hook usually just decrements a counter (we charge
//! a tiny CPU cost for the check); when it fires, the slave measures the
//! elapsed time and work since the last firing, sends a [`Status`], and —
//! depending on the interaction mode — either applies previously received
//! instructions (pipelined, Fig. 2b) or blocks for fresh ones
//! (synchronous, Fig. 2a).
//!
//! Work movement rides per-peer [`TransferWindow`] channels: every
//! outbound transfer gets a per-channel sequence number and is retained
//! until the receiver's [`Msg::TransferAck`] watermark covers it; inbound
//! transfers are deduplicated by sequence number. When a peer is evicted
//! the channel closes and the unacknowledged payloads are *re-owned* (they
//! surface in [`SlaveCommon::reclaimed`] for the engine to reintegrate).
//!
//! All blocking receives route through [`SlaveCommon::recv_blocking`], which
//! always also accepts `Abort` / `Evict` (so a master-initiated shutdown can
//! never deadlock a slave, fault mode or not), transparently services
//! transfer acks and peer-eviction notices, and, in fault mode, bounds the
//! wait with the configured operation timeout.

use crate::balancer::InteractionMode;
use crate::error::{slave_who, FaultToleranceConfig, ProtocolError};
use crate::msg::{Instructions, MoveOrder, MovedUnit, Msg, Status, TransferMsg, UnitData};
use crate::protocol::{AckTracker, TransferWindow};
use crate::recovery::SlaveFaultStats;
use crate::session::replica::{DeputyState, TakeoverSeed};
use dlb_sim::{ActorCtx, ActorId, CpuWork, Envelope, SimDuration, SimTime};

/// Contents of the `Start` message: slave ids, initial block assignment,
/// and rows per block.
pub type StartInfo = (Vec<ActorId>, Vec<(usize, usize)>, u64);

/// A stashed [`Msg::Rollback`] payload, surfaced to the checkpointed
/// engines' restart loops via [`ProtocolError::RolledBack`].
#[derive(Clone, Debug)]
pub struct RollbackInfo {
    pub epoch: u64,
    pub invocation: u64,
    pub survivors: Vec<usize>,
    pub ckpt_stride: u64,
    pub units: Vec<(usize, UnitData)>,
}

/// Wait for the initial `Start` message (before a [`SlaveCommon`] exists).
pub fn recv_start(
    ctx: &ActorCtx<Msg>,
    idx: usize,
    ft: Option<&FaultToleranceConfig>,
) -> Result<StartInfo, ProtocolError> {
    let pred = |m: &Msg| matches!(m, Msg::Start { .. } | Msg::Abort | Msg::Evict);
    let env = match ft {
        None => ctx.recv_match(pred),
        Some(ft) => ctx
            .recv_match_deadline(pred, ctx.now() + ft.op_timeout)
            .ok_or_else(|| ProtocolError::Timeout {
                who: slave_who(idx),
                waiting_for: "start message",
                at: ctx.now(),
            })?,
    };
    match env.msg {
        Msg::Start {
            slaves,
            assignment,
            block_rows,
        } => Ok((slaves, assignment, block_rows)),
        Msg::Abort => Err(ProtocolError::Aborted),
        Msg::Evict => Err(ProtocolError::Evicted { slave: idx }),
        _ => unreachable!(),
    }
}

/// Deterministic jitter for join-retry backoff: slaves have no RNG stream
/// of their own (randomness is owned by the simulator's fault layer), so
/// the jitter is a hash of `(slave, attempt)` — distinct per slave and per
/// retry, identical across runs. Bounded to a quarter of the base backoff.
fn join_jitter(idx: usize, attempt: u32, base: SimDuration) -> SimDuration {
    let mut x = ((idx as u64) << 32) ^ (attempt as u64) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    SimDuration::from_micros((x % 256) * (base.micros() / 4) / 256)
}

/// Per-slave hook/interaction state.
pub struct SlaveCommon {
    /// This slave's index (0-based, slave order = unit order).
    pub idx: usize,
    /// This slave's admission incarnation: 0 for a first life admitted by
    /// the initial `Start`, bumped by each rejoin. Stamped into every
    /// [`Msg::Alive`] ping and the [`Msg::Join`] handshake so the master
    /// can fence traffic from an earlier life (zombie fencing).
    pub incarnation: u64,
    /// The master's actor id.
    pub master: ActorId,
    /// All slave actor ids, indexed by slave index.
    pub slaves: Vec<ActorId>,
    pub mode: InteractionMode,
    /// Fault-tolerance timeouts; `None` outside fault mode.
    pub ft: Option<FaultToleranceConfig>,
    /// CPU cost of the hook *check* itself.
    pub hook_check_cpu: CpuWork,
    /// Hooks to skip between firings (updated by instructions).
    skip: u64,
    since_fire: u64,
    last_fire_time: SimTime,
    /// Monotone count of hook firings (dedups duplicated statuses).
    hook_seq: u64,
    /// Work units completed since the last firing.
    pub done_delta: u64,
    /// Computation time (stretched by competing load) since the last
    /// firing. Rates are units per *computation* second (§4.2: the hook
    /// "measures the time spent in the computation") so that pipeline
    /// stalls and barrier waits do not masquerade as lost capacity.
    busy_delta: SimDuration,
    /// One sequenced transfer channel per peer (the own-index entry is
    /// never used).
    channels: Vec<TransferWindow<TransferMsg>>,
    /// Peers known to be evicted (their channels are closed).
    pub dead: Vec<bool>,
    /// Rollback epoch this slave operates in (checkpointed engines).
    pub epoch: u64,
    /// Receiver tracker for the windowed master → slave channel
    /// (`Restore` / `Rollback` / `Speculate` / commit / cancel); its
    /// watermark is reported as `InvocationDone::restore_seq`.
    pub master_chan: AckTracker,
    /// A rollback that arrived inside a blocking receive, waiting for the
    /// engine's restart loop (paired with [`ProtocolError::RolledBack`]).
    pub pending_rollback: Option<RollbackInfo>,
    /// Units re-owned from channels closed by peer eviction; the engine
    /// reintegrates these at its next drain point.
    pub reclaimed: Vec<MovedUnit>,
    /// Evictions still owed an [`Msg::OwnReport`] (answered by the engine
    /// once `reclaimed` has been reintegrated).
    pub own_report_due: Vec<usize>,
    /// Locally-counted fault-protocol statistics (shipped with gather).
    pub fault_stats: SlaveFaultStats,
    /// Per-channel acked watermark at the last stall re-send, gating
    /// re-sends to channels that made no progress since.
    resend_gate: Vec<u64>,
    /// Most recent work-movement cost sample, consumed by the next status.
    pub move_cost_sample: Option<(u64, SimDuration)>,
    interaction_cost_sample: Option<SimDuration>,
    last_instr_seq: u64,
    /// Checkpoint cadence in force (adopted from barrier releases and
    /// rollbacks): send a checkpoint only when the completed invocation
    /// number is a multiple of this. Always ≥ 1.
    pub ckpt_stride: u64,
    /// The deputy role, when this slave is one of the lowest-ranked
    /// `deputies` slaves in fault mode: control-plane replica, master
    /// watch, election state. See [`SlaveCommon::enable_deputy`].
    pub deputy: Option<DeputyState>,
    /// The takeover seed, stashed when this deputy wins an election —
    /// paired with [`ProtocolError::Elected`] the way `pending_rollback`
    /// pairs with [`ProtocolError::RolledBack`].
    pub takeover: Option<TakeoverSeed>,
    /// Highest promotion term already applied (dedups `Promoted`
    /// re-broadcasts and fences out stale lower-term promotions).
    promoted_term: u64,
}

impl SlaveCommon {
    pub fn new(
        idx: usize,
        master: ActorId,
        slaves: Vec<ActorId>,
        mode: InteractionMode,
        hook_check_cpu: CpuWork,
        ft: Option<FaultToleranceConfig>,
        now: SimTime,
    ) -> SlaveCommon {
        let n = slaves.len();
        SlaveCommon {
            idx,
            incarnation: 0,
            master,
            slaves,
            mode,
            ft,
            hook_check_cpu,
            skip: 0,
            since_fire: 0,
            last_fire_time: now,
            hook_seq: 0,
            done_delta: 0,
            busy_delta: SimDuration::ZERO,
            channels: vec![TransferWindow::new(); n],
            dead: vec![false; n],
            epoch: 0,
            master_chan: AckTracker::default(),
            pending_rollback: None,
            reclaimed: Vec::new(),
            own_report_due: Vec::new(),
            fault_stats: SlaveFaultStats::default(),
            resend_gate: vec![0; n],
            move_cost_sample: None,
            interaction_cost_sample: None,
            last_instr_seq: 0,
            ckpt_stride: 1,
            deputy: None,
            takeover: None,
            promoted_term: 0,
        }
    }

    /// Take on the deputy role when this slave's rank is inside the deputy
    /// set (fault mode only). `checkpointed` tells the election how to
    /// measure replica freshness: checkpointed engines restart from a held
    /// snapshot, the independent engine from the invocation watermark.
    pub fn enable_deputy(&mut self, checkpointed: bool, now: SimTime) {
        if let Some(ft) = &self.ft {
            let nd = ft.deputies.min(self.slaves.len());
            if self.idx < nd {
                self.deputy = Some(DeputyState::new(
                    self.idx,
                    nd,
                    self.slaves.len(),
                    checkpointed,
                    now,
                    ft,
                ));
            }
        }
    }

    /// The checkpoint generation this deputy could take over from, reported
    /// on every `InvocationDone` so the master can stop re-shipping
    /// snapshots the deputy already holds. Zero for non-deputies.
    pub fn replica_inv(&self) -> u64 {
        self.deputy
            .as_ref()
            .map(|d| d.effective_fresh())
            .unwrap_or(0)
    }

    /// Record completed work units (counted toward the next status delta).
    pub fn record_done(&mut self, units: u64) {
        self.done_delta += units;
    }

    /// Perform unit computation: advance the CPU and account the elapsed
    /// (load-stretched) time as computation time for rate measurement.
    pub fn compute(&mut self, ctx: &ActorCtx<Msg>, work: CpuWork) {
        let t0 = ctx.now();
        ctx.advance_work(work);
        self.busy_delta += ctx.now().saturating_since(t0);
    }

    /// Send a message to the master.
    pub fn send_master(&self, ctx: &ActorCtx<Msg>, msg: Msg) {
        let bytes = msg.wire_bytes();
        ctx.send(self.master, msg, bytes);
    }

    /// Send a message to another slave.
    pub fn send_slave(&self, ctx: &ActorCtx<Msg>, to: usize, msg: Msg) {
        let bytes = msg.wire_bytes();
        ctx.send(self.slaves[to], msg, bytes);
    }

    // ---- sequenced transfer channels -----------------------------------

    /// Per-destination transfer sequence counters (for status/settlement).
    pub fn sent_to_vec(&self) -> Vec<u64> {
        self.channels.iter().map(|c| c.seq_sent()).collect()
    }

    /// Per-source applied-transfer watermarks (for status/settlement and
    /// the master's order acknowledgement).
    pub fn recv_watermarks(&self) -> Vec<u64> {
        self.channels.iter().map(|c| c.recv_watermark()).collect()
    }

    /// Send a sequenced work transfer to `to`. `make` builds the transfer
    /// for the allocated sequence number (its `seq`/`epoch` fields are
    /// overwritten). Returns `false` — and sends nothing, keeping the
    /// units with the caller — when the peer is already evicted.
    pub fn send_transfer(
        &mut self,
        ctx: &ActorCtx<Msg>,
        to: usize,
        make: impl FnOnce(u64) -> TransferMsg,
    ) -> bool {
        if self.dead[to] {
            return false;
        }
        let epoch = self.epoch;
        let Some(t) = self.channels[to].send_with(|seq| {
            let mut t = make(seq);
            t.seq = seq;
            t.epoch = epoch;
            t
        }) else {
            return false;
        };
        let msg = Msg::Transfer(t.clone());
        self.send_slave(ctx, to, msg);
        true
    }

    /// Accept an inbound transfer: epoch-fence, deduplicate by sequence
    /// number, and acknowledge. Returns `true` exactly when the caller
    /// must apply the payload.
    pub fn accept_transfer(&mut self, ctx: &ActorCtx<Msg>, t: &TransferMsg) -> bool {
        if t.epoch != self.epoch {
            self.fault_stats.stale_epoch_dropped += 1;
            return false;
        }
        if self.dead[t.from] {
            // Fenced: the sender was evicted and its units re-scattered;
            // applying this stale payload would duplicate them.
            self.fault_stats.stale_epoch_dropped += 1;
            return false;
        }
        let fresh = self.channels[t.from].accept(t.seq);
        if !fresh {
            self.fault_stats.transfer_dups_dropped += 1;
        }
        let ack = Msg::TransferAck {
            from: self.idx,
            epoch: self.epoch,
            watermark: self.channels[t.from].recv_watermark(),
        };
        self.send_slave(ctx, t.from, ack);
        fresh
    }

    /// Process a peer's transfer acknowledgement.
    pub fn handle_transfer_ack(&mut self, from: usize, epoch: u64, watermark: u64) {
        if epoch == self.epoch {
            self.channels[from].ack(watermark);
        }
    }

    /// Re-send every unacknowledged transfer on channels that made no ack
    /// progress since the last call. Called from heartbeat timers and hook
    /// firings — the progress gate keeps a busy ack path from being
    /// flooded with duplicates.
    pub fn resend_stalled_transfers(&mut self, ctx: &ActorCtx<Msg>) {
        for to in 0..self.channels.len() {
            if self.dead[to] || to == self.idx {
                continue;
            }
            let acked = self.channels[to].acked_watermark();
            let stalled =
                self.channels[to].unacked().next().is_some() && acked == self.resend_gate[to];
            self.resend_gate[to] = acked;
            if !stalled {
                continue;
            }
            let msgs: Vec<Msg> = self.channels[to]
                .unacked()
                .map(|(_, t)| Msg::Transfer(t.clone()))
                .collect();
            for m in msgs {
                self.fault_stats.transfer_resends += 1;
                self.send_slave(ctx, to, m);
            }
        }
    }

    /// True once every transfer this slave originated has been
    /// acknowledged (closed channels count as settled).
    pub fn transfers_settled(&self) -> bool {
        self.channels
            .iter()
            .all(|c| !c.is_open() || c.fully_acked())
    }

    /// The named peer was evicted: close both channel halves, re-own the
    /// in-flight payload units, and queue an ownership report.
    pub fn peer_evicted(&mut self, peer: usize) {
        if !self.dead[peer] {
            self.dead[peer] = true;
            for t in self.channels[peer].close() {
                self.reclaimed.extend(t.units);
            }
        }
        // A re-delivered Evicted means the master is still waiting for our
        // OwnReport (the first one was lost): owe it again. Deduplicate so
        // duplicated deliveries queue at most one report.
        if !self.own_report_due.contains(&peer) {
            self.own_report_due.push(peer);
        }
    }

    /// Reset every transfer channel and adopt a new epoch (rollback).
    pub fn rebase_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        for (i, c) in self.channels.iter_mut().enumerate() {
            if !self.dead[i] {
                c.reset();
            }
        }
        self.resend_gate = vec![0; self.channels.len()];
        self.fault_stats.rollbacks_applied += 1;
    }

    /// Handle a control message every receive point must service. Returns
    /// `true` if `msg` was consumed here; `Err(RolledBack)` when a fresh
    /// rollback was stashed for the engine's restart loop.
    pub fn control(&mut self, msg: &Msg) -> Result<bool, ProtocolError> {
        match msg {
            Msg::TransferAck {
                from,
                epoch,
                watermark,
            } => {
                self.handle_transfer_ack(*from, *epoch, *watermark);
                Ok(true)
            }
            Msg::Evicted { slave } => {
                self.peer_evicted(*slave);
                Ok(true)
            }
            Msg::Rollback {
                seq,
                epoch,
                invocation,
                survivors,
                ckpt_stride,
                units,
            } => {
                if *epoch <= self.epoch {
                    // A rollback we already applied (or that a newer one
                    // superseded) arriving late: acknowledge the sequence so
                    // the master's window can settle, but never re-apply —
                    // rebasing to a stale epoch would resurrect a dead
                    // distribution.
                    self.master_chan.fresh(*seq);
                    self.fault_stats.stale_epoch_dropped += 1;
                    return Ok(true);
                }
                if self.master_chan.fresh(*seq) {
                    self.pending_rollback = Some(RollbackInfo {
                        epoch: *epoch,
                        invocation: *invocation,
                        survivors: survivors.clone(),
                        ckpt_stride: *ckpt_stride,
                        units: units.clone(),
                    });
                    Err(ProtocolError::RolledBack)
                } else {
                    // Duplicate delivery of an applied rollback: the ack
                    // rides the next InvocationDone watermark.
                    Ok(true)
                }
            }
            _ => Ok(false),
        }
    }

    /// Handle a master-failover message (replication, election, promotion).
    /// Returns `true` when `msg` was consumed here; `Err(Elected)` when a
    /// vote completed this deputy's quorum (the takeover seed is stashed in
    /// [`SlaveCommon::takeover`]). Every receive point services these the
    /// way it services [`SlaveCommon::control`] traffic — an election must
    /// be able to proceed no matter what the electorate was doing when the
    /// master died.
    pub fn election(&mut self, ctx: &ActorCtx<Msg>, msg: &Msg) -> Result<bool, ProtocolError> {
        match msg {
            Msg::Replica(r) => {
                if let Some(d) = self.deputy.as_mut() {
                    d.absorb((**r).clone(), ctx.now());
                }
                Ok(true)
            }
            Msg::MasterPing { term } => {
                if let Some(d) = self.deputy.as_mut() {
                    d.master_ping(*term, ctx.now());
                }
                Ok(true)
            }
            Msg::Candidacy {
                term,
                candidate,
                fresh,
            } => {
                let replies = self
                    .deputy
                    .as_mut()
                    .map(|d| d.on_candidacy(*term, *candidate, *fresh))
                    .unwrap_or_default();
                if std::env::var_os("DLB_TRACE").is_some() {
                    eprintln!(
                        "[slave{} t={}] candidacy term {term} from {candidate} fresh {fresh} -> {}",
                        self.idx,
                        ctx.now(),
                        if replies.is_empty() {
                            "refused"
                        } else {
                            "granted"
                        },
                    );
                }
                for (to, m) in replies {
                    self.send_slave(ctx, to, m);
                }
                Ok(true)
            }
            Msg::Vote {
                term,
                voter,
                candidate,
            } => {
                if let Some(d) = self.deputy.as_mut() {
                    d.on_vote(*term, *voter, *candidate);
                    if let Some(t) = d.won() {
                        self.takeover = Some(d.seed(t));
                        return Err(ProtocolError::Elected { term: t });
                    }
                }
                Ok(true)
            }
            Msg::Promoted { term, master_idx } => {
                self.adopt_master(ctx.now(), *term, *master_idx);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Deputy timer: stand for election when the master has been silent
    /// past this rank's staggered threshold. Runs in every silent
    /// heartbeat slice of [`SlaveCommon::recv_blocking`]; with a single
    /// deputy the stand itself reaches quorum and returns `Err(Elected)`.
    pub fn deputy_tick(&mut self, ctx: &ActorCtx<Msg>) -> Result<(), ProtocolError> {
        let Some(ft) = self.ft.clone() else {
            return Ok(());
        };
        let Some(d) = self.deputy.as_mut() else {
            return Ok(());
        };
        let candidacies = d.tick(ctx.now(), &ft);
        if !candidacies.is_empty() && std::env::var_os("DLB_TRACE").is_some() {
            eprintln!(
                "[slave{} t={}] standing for term {} (fresh {})",
                self.idx,
                ctx.now(),
                d.term_seen,
                d.effective_fresh(),
            );
        }
        if let Some(t) = d.won() {
            self.takeover = Some(d.seed(t));
            return Err(ProtocolError::Elected { term: t });
        }
        for (to, m) in candidacies {
            self.send_slave(ctx, to, m);
        }
        Ok(())
    }

    /// Apply a [`Msg::Promoted`]: repoint the master, drop the winner from
    /// the worker set (it stops computing), and reset the master control
    /// channel so the new master's windowed sends (which restart at
    /// sequence 1) are accepted. Idempotent per term; stale lower-term
    /// promotions are fenced out. The in-flight payloads of the winner's
    /// transfer channel are discarded, not re-owned: the takeover rollback
    /// re-scatters every unit from the replicated checkpoint, so nothing
    /// the winner held in flight survives anyway.
    fn adopt_master(&mut self, now: SimTime, term: u64, master_idx: usize) {
        if term <= self.promoted_term {
            return;
        }
        self.promoted_term = term;
        self.master = self.slaves[master_idx];
        if master_idx != self.idx && !self.dead[master_idx] {
            self.dead[master_idx] = true;
            let _ = self.channels[master_idx].close();
        }
        self.master_chan = AckTracker::default();
        // The new master brings a new balancer whose instruction sequence
        // restarts at 1; without this reset its orders would be fenced out
        // as stale forever.
        self.last_instr_seq = 0;
        if let Some(d) = self.deputy.as_mut() {
            d.on_promoted(term, now);
        }
    }

    /// Non-blocking drain of channel control traffic (acks, peer
    /// evictions, rollbacks) and failover traffic (replicas, election
    /// messages, promotions). Engines call this from their transfer-drain
    /// loops.
    pub fn drain_control(&mut self, ctx: &ActorCtx<Msg>) -> Result<(), ProtocolError> {
        while let Some(env) = ctx.try_recv_match(|m| {
            matches!(
                m,
                Msg::TransferAck { .. }
                    | Msg::Evicted { .. }
                    | Msg::Rollback { .. }
                    | Msg::Replica(_)
                    | Msg::MasterPing { .. }
                    | Msg::Candidacy { .. }
                    | Msg::Vote { .. }
                    | Msg::Promoted { .. }
            )
        }) {
            if !self.election(ctx, &env.msg)? {
                self.control(&env.msg)?;
            }
        }
        Ok(())
    }

    /// Blocking receive for a protocol step. Also matches `Abort` / `Evict`
    /// (turned into errors) so master-initiated shutdown cannot deadlock,
    /// transparently services channel control traffic, and in fault mode
    /// bounds the wait with `op_timeout`.
    ///
    /// In fault mode the wait is sliced into `slave_heartbeat` intervals:
    /// a slave blocked on a *peer* (a pipeline halo, a pivot broadcast)
    /// has no report of its own to re-send, so each silent slice ships an
    /// [`Msg::Alive`] ping to the master — otherwise a survivor stalled
    /// on a crashed neighbour looks exactly like a second crash and gets
    /// evicted by the suspicion timer along with it. The same slice also
    /// re-sends stalled outbound transfers, since a long local wait is
    /// evidence the ack path may have lost something.
    ///
    /// The pings are *bounded to one suspicion window*: that is exactly
    /// long enough for the master to evict a genuinely dead peer first
    /// and rescue this slave with the ensuing rollback. A wait that
    /// outlives the window is indistinguishable from deadlock (e.g. a
    /// halo lost on the wire, which no one re-sends), and vouching for
    /// ourselves forever would stall the whole run — going silent hands
    /// the stall to the failure detector, whose eviction + rollback is
    /// the one repair that always exists.
    pub fn recv_blocking(
        &mut self,
        ctx: &ActorCtx<Msg>,
        mut pred: impl FnMut(&Msg) -> bool,
        waiting_for: &'static str,
    ) -> Result<Envelope<Msg>, ProtocolError> {
        let ft = self.ft.clone();
        let deadline = ft.as_ref().map(|ft| ctx.now() + ft.op_timeout);
        let ping_until = ft.as_ref().map(|ft| ctx.now() + ft.suspicion);
        loop {
            let mut full = |m: &Msg| {
                pred(m)
                    || matches!(
                        m,
                        Msg::Abort
                            | Msg::Evict
                            | Msg::TransferAck { .. }
                            | Msg::Evicted { .. }
                            | Msg::Rollback { .. }
                            | Msg::Replica(_)
                            | Msg::MasterPing { .. }
                            | Msg::Candidacy { .. }
                            | Msg::Vote { .. }
                            | Msg::Promoted { .. }
                    )
            };
            let env = match (&ft, deadline) {
                (Some(ft), Some(d)) => {
                    let mut got = None;
                    while got.is_none() {
                        let slice = (ctx.now() + ft.slave_heartbeat).min(d);
                        match ctx.recv_match_deadline(&mut full, slice) {
                            Some(env) => got = Some(env),
                            None if ctx.now() >= d => {
                                return Err(ProtocolError::Timeout {
                                    who: slave_who(self.idx),
                                    waiting_for,
                                    at: ctx.now(),
                                });
                            }
                            None => {
                                self.resend_stalled_transfers(ctx);
                                self.deputy_tick(ctx)?;
                                if ping_until.is_some_and(|p| ctx.now() < p) {
                                    if std::env::var_os("DLB_TRACE").is_some() {
                                        eprintln!(
                                            "[slave{} t={}] ping while waiting for {waiting_for}",
                                            self.idx,
                                            ctx.now(),
                                        );
                                    }
                                    self.send_master(
                                        ctx,
                                        Msg::Alive {
                                            slave: self.idx,
                                            incarnation: self.incarnation,
                                        },
                                    );
                                }
                            }
                        }
                    }
                    got.expect("loop exits with a message")
                }
                _ => ctx.recv_match(full),
            };
            match &env.msg {
                Msg::Abort => return Err(ProtocolError::Aborted),
                Msg::Evict => return Err(ProtocolError::Evicted { slave: self.idx }),
                m => {
                    if !self.election(ctx, m)? && !self.control(m)? {
                        return Ok(env);
                    }
                }
            }
        }
    }

    /// The joiner's half of the elastic-membership handshake: announce this
    /// incarnation with [`Msg::Join`] and wait for the admission rollback,
    /// which doubles as the admission acknowledgement (stashed in
    /// [`SlaveCommon::pending_rollback`] on success, exactly as a mid-run
    /// rollback would be).
    ///
    /// Attempts are bounded by `rejoin_attempts` and spaced by exponential
    /// backoff (base `rejoin_backoff`, doubling per retry, capped at 8×)
    /// plus deterministic per-(slave, attempt) jitter, so a pool of
    /// refused joiners cannot hot-loop the master in lockstep. While
    /// waiting, stale traffic addressed to this slave's previous life —
    /// `Evict`, old transfers, instructions — is drained and discarded (it
    /// must not survive into the new life's mailbox); `Promoted` repoints
    /// the master and re-announces immediately; `Abort` ends the run.
    /// Exhaustion yields [`ProtocolError::JoinRefused`], which engines
    /// treat like an eviction: exit silently, never ship a `SlaveError`.
    pub fn join_handshake(&mut self, ctx: &ActorCtx<Msg>) -> Result<(), ProtocolError> {
        let ft = self.ft.clone().ok_or(ProtocolError::JoinRefused {
            slave: self.idx,
            attempts: 0,
        })?;
        let join = Msg::Join {
            slave: self.idx,
            incarnation: self.incarnation,
        };
        for attempt in 0..ft.rejoin_attempts {
            self.send_master(ctx, join.clone());
            let backoff = ft.rejoin_backoff * (1u64 << attempt.min(3));
            let deadline = ctx.now() + backoff + join_jitter(self.idx, attempt, ft.rejoin_backoff);
            // Catch-all receive until the backoff expires: everything in
            // the mailbox predates the admission (or is the admission), so
            // anything not handled below is stale previous-life traffic and
            // is dropped here.
            while let Some(env) = ctx.recv_match_deadline(|_| true, deadline) {
                match &env.msg {
                    Msg::Abort => return Err(ProtocolError::Aborted),
                    Msg::JoinRefuse { .. } => break,
                    Msg::Promoted { .. } => {
                        self.election(ctx, &env.msg)?;
                        self.send_master(ctx, join.clone());
                    }
                    m @ Msg::Rollback { .. } => {
                        // Anything else is a stale epoch or duplicate —
                        // keep waiting.
                        if let Err(ProtocolError::RolledBack) = self.control(m) {
                            return Ok(());
                        }
                    }
                    _ => {
                        self.fault_stats.stale_epoch_dropped += 1;
                    }
                }
            }
        }
        Err(ProtocolError::JoinRefused {
            slave: self.idx,
            attempts: ft.rejoin_attempts,
        })
    }

    /// Latecomer entry: idle until `at` (discarding any traffic that
    /// predates this slave's existence in the pool), then run
    /// [`join_handshake`](Self::join_handshake). Promotions are serviced
    /// while parked so the eventual announcement targets whichever master
    /// is current; `Abort` ends the run before it begins.
    pub fn park_then_join(
        &mut self,
        ctx: &ActorCtx<Msg>,
        at: SimTime,
    ) -> Result<(), ProtocolError> {
        while ctx.now() < at {
            let Some(env) = ctx.recv_match_deadline(|_| true, at) else {
                break;
            };
            match &env.msg {
                Msg::Abort => return Err(ProtocolError::Aborted),
                Msg::Promoted { .. } => {
                    self.election(ctx, &env.msg)?;
                }
                _ => {} // traffic of a pool we have not joined yet
            }
        }
        self.join_handshake(ctx)
    }

    /// Build the typed error for a message the protocol cannot accept here.
    pub fn unexpected(&self, context: &'static str, msg: &Msg) -> ProtocolError {
        ProtocolError::UnexpectedMessage {
            who: slave_who(self.idx),
            context,
            message: format!("{msg:?}").chars().take(120).collect(),
        }
    }

    fn apply_instructions(&mut self, instr: Instructions, moves: &mut Vec<MoveOrder>) {
        // Instruction sequence numbers are globally monotone, so any
        // duplicate or stale replay (possible only under fault injection)
        // has `seq <= last_instr_seq` and must be ignored wholesale —
        // re-executing its moves would double-send work units. Orders from
        // an earlier rollback epoch reference a distribution that no longer
        // exists and are likewise discarded.
        if instr.epoch != self.epoch {
            self.fault_stats.stale_epoch_dropped += 1;
            return;
        }
        if instr.seq > self.last_instr_seq {
            self.last_instr_seq = instr.seq;
            self.skip = instr.hooks_to_skip;
            moves.extend(instr.moves);
        }
    }

    /// Apply an instruction message received *outside* a hook firing (idle
    /// loops, barrier waits). Routes through the same epoch and sequence
    /// fences as hook-applied instructions, so duplicated deliveries can
    /// never double-execute movement orders.
    pub fn instructions_out_of_band(&mut self, instr: Instructions) -> Vec<MoveOrder> {
        let mut moves = Vec::new();
        self.apply_instructions(instr, &mut moves);
        moves
    }

    /// The load-balancing hook. Returns movement orders to execute *now*
    /// (empty on skipped hooks). `active_units` is the paper's §4.7 notion:
    /// units owned by this slave that still have future work.
    pub fn hook(
        &mut self,
        ctx: &ActorCtx<Msg>,
        invocation: u64,
        active_units: u64,
    ) -> Result<Vec<MoveOrder>, ProtocolError> {
        ctx.advance_work(self.hook_check_cpu);
        self.since_fire += 1;
        if self.since_fire <= self.skip {
            return Ok(Vec::new());
        }
        self.fire(ctx, invocation, active_units)
    }

    /// Fire the hook unconditionally (used at invocation boundaries so the
    /// final partial period is always reported).
    pub fn fire(
        &mut self,
        ctx: &ActorCtx<Msg>,
        invocation: u64,
        active_units: u64,
    ) -> Result<Vec<MoveOrder>, ProtocolError> {
        self.since_fire = 0;
        self.hook_seq += 1;
        let t0 = ctx.now();
        let mut moves = Vec::new();
        if self.ft.is_some() {
            // Event-triggered repair: a hook firing is evidence of local
            // progress with no matching ack progress on a stalled channel.
            self.resend_stalled_transfers(ctx);
        }

        // The status must reflect the state *before* this hook applies any
        // queued instructions: `active_units` was measured before any moves
        // execute, so `last_applied_seq` must predate them too — otherwise
        // the master would treat the stale count as already discounted.
        let status = Status {
            slave: self.idx,
            invocation,
            hook_seq: self.hook_seq,
            units_done_delta: self.done_delta,
            elapsed: self.busy_delta,
            active_units,
            last_applied_seq: self.last_instr_seq,
            epoch: self.epoch,
            sent_to: self.sent_to_vec(),
            received_from: self.recv_watermarks(),
            move_cost_sample: self.move_cost_sample.take(),
            interaction_cost_sample: self.interaction_cost_sample.take(),
        };
        if std::env::var_os("DLB_TRACE").is_some() {
            eprintln!(
                "[slave{} t={}] fire inv={invocation} delta={} busy={} active={active_units}",
                self.idx,
                ctx.now(),
                self.done_delta,
                self.busy_delta,
            );
        }
        self.done_delta = 0;
        self.busy_delta = SimDuration::ZERO;
        self.send_master(ctx, Msg::Status(status));

        if self.mode == InteractionMode::Pipelined {
            // Apply instructions that arrived since the last hook (they are
            // based on the status sent then — the pipelining of Fig. 2b).
            while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Instructions(_))) {
                if let Msg::Instructions(i) = env.msg {
                    self.apply_instructions(i, &mut moves);
                }
            }
        }

        if self.mode == InteractionMode::Synchronous {
            // Block for the instructions computed from the status we just
            // sent: the whole round trip sits on the critical path.
            let env = self.recv_blocking(
                ctx,
                |m| matches!(m, Msg::Instructions(_)),
                "balancing instructions",
            )?;
            if let Msg::Instructions(i) = env.msg {
                self.apply_instructions(i, &mut moves);
            }
        }

        let now = ctx.now();
        self.interaction_cost_sample = Some(now.saturating_since(t0));
        self.last_fire_time = now;
        Ok(moves)
    }
}
