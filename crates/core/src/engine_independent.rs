//! Slave engine for independent distributed loops (MM-shaped programs).
//!
//! Each invocation of the distributed loop computes every unit once. The
//! slave computes its local units in index order, firing the compiler-
//! placed hook after each unit. Work movement ships whole units (data +
//! done flag); moved units that were already computed this invocation are
//! not recomputed, and in-flight undone units keep the master's completion
//! count below the target so invocations never terminate early (§4.5).

use crate::balancer::InteractionMode;
use crate::kernels::IndependentKernel;
use crate::msg::{Edge, MoveOrder, Msg, TransferMsg, MovedUnit, UnitData};
use crate::slave_common::SlaveCommon;
use dlb_sim::{ActorCtx, ActorId, CpuWork};
use std::collections::BTreeMap;
use std::sync::Arc;

struct Unit {
    data: UnitData,
    /// Invocation this unit was last computed in.
    done_in: Option<u64>,
}

/// Static configuration for one independent-engine slave.
pub struct IndependentSlave {
    pub idx: usize,
    pub master: ActorId,
    pub mode: InteractionMode,
    pub hook_check_cpu: CpuWork,
    pub kernel: Arc<dyn IndependentKernel>,
}

impl IndependentSlave {
    /// Actor body.
    pub fn run(self, ctx: ActorCtx<Msg>) {
        // Wait for the initial assignment.
        let (slaves, range) = recv_start(&ctx, self.idx);
        let mut common = SlaveCommon::new(
            self.idx,
            self.master,
            slaves,
            self.mode,
            self.hook_check_cpu,
            ctx.now(),
        );
        let kernel = self.kernel;
        let invocations = kernel.invocations();
        let mut units: BTreeMap<usize, Unit> = (range.0..range.1)
            .map(|i| {
                (
                    i,
                    Unit {
                        data: kernel.init_unit(i),
                        done_in: None,
                    },
                )
            })
            .collect();

        let mut inv = 0;
        let mut metric = 0.0f64;
        wait_invocation_start(&ctx, &mut common, &mut units, 0);
        'outer: loop {
            'compute: loop {
                // Opportunistically pull transfers that are already queued.
                drain_transfers(&ctx, &mut common, &mut units, inv);
                let next = units
                    .iter()
                    .find(|(_, u)| u.done_in != Some(inv))
                    .map(|(&id, _)| id);
                match next {
                    Some(id) => {
                        common.compute(&ctx, kernel.unit_cost_for(id, inv));
                        let u = units.get_mut(&id).expect("unit present");
                        kernel.compute(id, &mut u.data, inv);
                        u.done_in = Some(inv);
                        metric += kernel.local_metric(id, &u.data);
                        common.record_done(1);
                        let active = active_units(&units, inv, invocations);
                        let moves = common.hook(&ctx, inv, active);
                        execute_moves(&ctx, &mut common, &mut units, inv, invocations, moves);
                    }
                    None => {
                        // Flush the final partial period, then go idle.
                        let active = active_units(&units, inv, invocations);
                        let moves = common.fire(&ctx, inv, active);
                        execute_moves(&ctx, &mut common, &mut units, inv, invocations, moves);
                        match idle_until_work_or_barrier(
                            &ctx,
                            &mut common,
                            &mut units,
                            inv,
                            invocations,
                            metric,
                        ) {
                            Idle::NewWork => {}
                            Idle::NextInvocation => break 'compute,
                            Idle::Gather => {
                                reply_gather(&ctx, &common, units);
                                return;
                            }
                        }
                    }
                }
            }
            inv += 1;
            metric = 0.0;
            if inv >= invocations {
                break 'outer;
            }
        }

        // Safety net: if the upper bound on invocations is reached without
        // the master converging earlier, wait for the gather here.
        finish_and_gather(&ctx, &mut common, units);
    }
}

fn recv_start(ctx: &ActorCtx<Msg>, idx: usize) -> (Vec<ActorId>, (usize, usize)) {
    let env = ctx.recv_match(|m| matches!(m, Msg::Start { .. }));
    match env.msg {
        Msg::Start {
            slaves, assignment, ..
        } => (slaves, assignment[idx]),
        _ => unreachable!(),
    }
}

fn active_units(units: &BTreeMap<usize, Unit>, inv: u64, invocations: u64) -> u64 {
    if inv + 1 < invocations {
        // Every unit will be recomputed next invocation.
        units.len() as u64
    } else {
        units.values().filter(|u| u.done_in != Some(inv)).count() as u64
    }
}

fn incorporate(
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    t: TransferMsg,
    inv: u64,
) {
    common.received_from[t.from] += 1;
    for mu in t.units {
        let done_in = if mu.done { Some(t.invocation) } else { None };
        let prev = units.insert(
            mu.id,
            Unit {
                data: mu.data,
                done_in,
            },
        );
        assert!(prev.is_none(), "unit {} moved to a slave already owning it", mu.id);
        let _ = inv;
    }
}

fn drain_transfers(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    inv: u64,
) {
    while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Transfer(_))) {
        if let Msg::Transfer(t) = env.msg {
            incorporate(common, units, t, inv);
        }
    }
}

fn execute_moves(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    inv: u64,
    invocations: u64,
    moves: Vec<MoveOrder>,
) {
    if moves.is_empty() {
        return;
    }
    let t0 = ctx.now();
    let mut total_moved = 0;
    for order in moves {
        // Keep at least one unit (the balancer's min_per_slave mirror).
        let take = (order.count as usize).min(units.len().saturating_sub(1));
        let mut picked: Vec<usize> = Vec::with_capacity(take);
        // Prefer undone units (they still carry work this invocation); among
        // equals, take from the ordered edge.
        let mut candidates: Vec<(bool, usize)> = units
            .iter()
            .map(|(&id, u)| (u.done_in == Some(inv), id))
            .collect();
        candidates.sort_by_key(|&(done, id)| {
            let edge_key = match order.edge {
                Edge::High => usize::MAX - id,
                Edge::Low => id,
            };
            (done, edge_key)
        });
        picked.extend(candidates.into_iter().take(take).map(|(_, id)| id));
        let moved: Vec<MovedUnit> = picked
            .into_iter()
            .map(|id| {
                let u = units.remove(&id).expect("picked unit");
                MovedUnit {
                    id,
                    done: u.done_in == Some(inv),
                    updated_through: 0,
                    data: u.data,
                    old: None,
                }
            })
            .collect();
        total_moved += moved.len() as u64;
        // Always send the transfer — even empty — so the master's pending
        // accounting and the receiver's counters stay settled.
        let msg = Msg::Transfer(TransferMsg {
            from: common.idx,
            invocation: inv,
            effective_block: 0,
            units: moved,
            right_old: None,
        });
        common.transfers_sent += 1;
        common.send_slave(ctx, order.to, msg);
    }
    let _ = invocations;
    common.move_cost_sample = Some((total_moved, ctx.now().saturating_since(t0)));
}

/// Outcome of idling at the end of an invocation.
enum Idle {
    /// A transfer brought units that still need computing.
    NewWork,
    /// The barrier released the next invocation.
    NextInvocation,
    /// The master requested the final gather (final invocation only).
    Gather,
}

/// Idle at the end of an invocation: report done, then service messages
/// until new work arrives, the barrier releases the next invocation, or —
/// after the final invocation — the master requests the gather.
fn idle_until_work_or_barrier(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    inv: u64,
    invocations: u64,
    metric: f64,
) -> Idle {
    let refresh_done = |common: &mut SlaveCommon| Msg::InvocationDone {
        slave: common.idx,
        invocation: inv,
        transfers_sent: common.transfers_sent,
        received_from: common.received_from.clone(),
        metric,
    };
    let msg = refresh_done(common);
    common.send_master(ctx, msg);
    loop {
        let env = ctx.recv();
        match env.msg {
            Msg::Transfer(t) => {
                incorporate(common, units, t, inv);
                let has_work = units.values().any(|u| u.done_in != Some(inv));
                if has_work {
                    return Idle::NewWork;
                }
                // Ownership changed but no new work: refresh the master's
                // counters so settlement can complete.
                let msg = refresh_done(common);
                common.send_master(ctx, msg);
            }
            Msg::Instructions(instr) => {
                // Late pipelined replies can still carry movement orders.
                // The master cannot settle until their transfers are
                // acknowledged, so executing them here is always safe.
                if !instr.moves.is_empty() {
                    execute_moves(
                        ctx,
                        common,
                        units,
                        inv,
                        invocations,
                        instr.moves,
                    );
                    let msg = refresh_done(common);
                    common.send_master(ctx, msg);
                }
            }
            Msg::InvocationStart { invocation } => {
                assert_eq!(invocation, inv + 1, "barrier out of order");
                return Idle::NextInvocation;
            }
            Msg::Gather => {
                // The master decides when the loop ends (fixed count or
                // data-dependent convergence, §4.1).
                return Idle::Gather;
            }
            other => panic!("independent slave: unexpected message {other:?}"),
        }
    }
}

fn wait_invocation_start(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    inv: u64,
) {
    // Invocation 0 needs an explicit release; later ones were consumed by
    // `idle_until_work_or_barrier`.
    if inv == 0 {
        loop {
            let env = ctx.recv();
            match env.msg {
                Msg::InvocationStart { invocation } => {
                    assert_eq!(invocation, 0);
                    return;
                }
                Msg::Transfer(t) => incorporate(common, units, t, inv),
                Msg::Instructions(_) => {}
                other => panic!("independent slave: unexpected start message {other:?}"),
            }
        }
    }
}

fn finish_and_gather(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: BTreeMap<usize, Unit>,
) {
    loop {
        let env = ctx.recv();
        match env.msg {
            Msg::Gather => break,
            // Late balancing replies are harmless now; drop them.
            Msg::Instructions(_) => {}
            other => panic!("independent slave at gather: unexpected {other:?}"),
        }
    }
    reply_gather(ctx, common, units);
}

fn reply_gather(ctx: &ActorCtx<Msg>, common: &SlaveCommon, units: BTreeMap<usize, Unit>) {
    let payload: Vec<(usize, UnitData)> =
        units.into_iter().map(|(id, u)| (id, u.data)).collect();
    let msg = Msg::GatherData {
        slave: common.idx,
        units: payload,
    };
    common.send_master(ctx, msg);
}
