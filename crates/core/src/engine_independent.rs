//! Slave engine for independent distributed loops (MM-shaped programs).
//!
//! Each invocation of the distributed loop computes every unit once. The
//! slave computes its local units in index order, firing the compiler-
//! placed hook after each unit. Work movement ships whole units (data +
//! done flag); moved units that were already computed this invocation are
//! not recomputed, and in-flight undone units keep the master's completion
//! count below the target so invocations never terminate early (§4.5).
//!
//! In fault mode this engine is *recoverable*: the master can re-scatter a
//! dead slave's units to survivors via [`Msg::Restore`]. The receiver
//! replays each restored unit's computation history (identical `compute`
//! calls in identical order), so the final gathered data is bit-for-bit the
//! same as a fault-free run.

use crate::balancer::InteractionMode;
use crate::error::{FaultToleranceConfig, ProtocolError};
use crate::kernels::IndependentKernel;
use crate::msg::{Edge, MoveOrder, MovedUnit, Msg, TransferMsg, UnitData};
use crate::protocol::AckTracker;
use crate::slave_common::{recv_start, SlaveCommon};
use dlb_sim::{ActorCtx, ActorId, CpuWork};
use std::collections::BTreeMap;
use std::sync::Arc;

struct Unit {
    data: UnitData,
    /// Invocation this unit was last computed in.
    done_in: Option<u64>,
}

/// Static configuration for one independent-engine slave.
pub struct IndependentSlave {
    pub idx: usize,
    pub master: ActorId,
    pub mode: InteractionMode,
    pub hook_check_cpu: CpuWork,
    pub kernel: Arc<dyn IndependentKernel>,
    pub ft: Option<FaultToleranceConfig>,
}

impl IndependentSlave {
    /// Actor body. Never panics on protocol trouble: fatal errors are
    /// shipped to the master as [`Msg::SlaveError`].
    pub fn run(self, ctx: ActorCtx<Msg>) {
        let (idx, master) = (self.idx, self.master);
        match self.run_inner(&ctx) {
            Ok(()) | Err(ProtocolError::Aborted) | Err(ProtocolError::Evicted { .. }) => {}
            Err(error) => {
                let msg = Msg::SlaveError { slave: idx, error };
                let bytes = msg.wire_bytes();
                ctx.send(master, msg, bytes);
            }
        }
    }

    fn run_inner(self, ctx: &ActorCtx<Msg>) -> Result<(), ProtocolError> {
        // Wait for the initial assignment.
        let (slaves, assignment, _block_rows) = recv_start(ctx, self.idx, self.ft.as_ref())?;
        let range = assignment[self.idx];
        let mut common = SlaveCommon::new(
            self.idx,
            self.master,
            slaves,
            self.mode,
            self.hook_check_cpu,
            self.ft.clone(),
            ctx.now(),
        );
        let kernel = self.kernel;
        let invocations = kernel.invocations();
        let mut units: BTreeMap<usize, Unit> = (range.0..range.1)
            .map(|i| {
                (
                    i,
                    Unit {
                        data: kernel.init_unit(i),
                        done_in: None,
                    },
                )
            })
            .collect();
        let mut rec = AckTracker::default();

        let mut inv = 0;
        let mut metric = 0.0f64;
        wait_invocation_start(ctx, &mut common, &mut units, &mut rec, &*kernel)?;
        'outer: loop {
            'compute: loop {
                // Opportunistically pull transfers (and restores) that are
                // already queued.
                drain_incoming(ctx, &mut common, &mut units, &mut rec, &*kernel, inv)?;
                let next = units
                    .iter()
                    .find(|(_, u)| u.done_in != Some(inv))
                    .map(|(&id, _)| id);
                match next {
                    Some(id) => {
                        common.compute(ctx, kernel.unit_cost_for(id, inv));
                        let u = units.get_mut(&id).expect("unit present");
                        kernel.compute(id, &mut u.data, inv);
                        u.done_in = Some(inv);
                        metric += kernel.local_metric(id, &u.data);
                        common.record_done(1);
                        let active = active_units(&units, inv, invocations);
                        let moves = common.hook(ctx, inv, active)?;
                        execute_moves(ctx, &mut common, &mut units, inv, invocations, moves);
                    }
                    None => {
                        // Flush the final partial period, then go idle.
                        let active = active_units(&units, inv, invocations);
                        let moves = common.fire(ctx, inv, active)?;
                        execute_moves(ctx, &mut common, &mut units, inv, invocations, moves);
                        match idle_until_work_or_barrier(
                            ctx,
                            &mut common,
                            &mut units,
                            &mut rec,
                            &*kernel,
                            inv,
                            invocations,
                            metric,
                        )? {
                            Idle::NewWork => {}
                            Idle::NextInvocation => break 'compute,
                            Idle::Gather => {
                                return reply_gather(ctx, &mut common, units);
                            }
                        }
                    }
                }
            }
            inv += 1;
            metric = 0.0;
            if inv >= invocations {
                break 'outer;
            }
        }

        // Safety net: if the upper bound on invocations is reached without
        // the master converging earlier, wait for the gather here.
        let env = common.recv_blocking(ctx, |m| matches!(m, Msg::Gather), "final gather")?;
        debug_assert!(matches!(env.msg, Msg::Gather));
        reply_gather(ctx, &mut common, units)
    }
}

fn active_units(units: &BTreeMap<usize, Unit>, inv: u64, invocations: u64) -> u64 {
    if inv + 1 < invocations {
        // Every unit will be recomputed next invocation.
        units.len() as u64
    } else {
        units.values().filter(|u| u.done_in != Some(inv)).count() as u64
    }
}

fn incorporate(
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    t: TransferMsg,
) -> Result<(), ProtocolError> {
    common.received_from[t.from] += 1;
    for mu in t.units {
        let done_in = if mu.done { Some(t.invocation) } else { None };
        let id = mu.id;
        let prev = units.insert(
            id,
            Unit {
                data: mu.data,
                done_in,
            },
        );
        if prev.is_some() {
            return Err(ProtocolError::Inconsistent {
                detail: format!("unit {id} moved to slave {} already owning it", common.idx),
            });
        }
    }
    Ok(())
}

/// Apply a `Restore`: adopt the units and replay their computation history
/// so their data matches what the dead owner would have held. Returns
/// whether the restore was fresh (not a duplicate).
#[allow(clippy::too_many_arguments)]
fn apply_restore(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    rec: &mut AckTracker,
    kernel: &dyn IndependentKernel,
    inv: u64,
    seq: u64,
    restored: Vec<(usize, UnitData)>,
) -> Result<bool, ProtocolError> {
    if !rec.fresh(seq) {
        return Ok(false); // duplicate delivery
    }
    let invocations = kernel.invocations();
    for (id, mut data) in restored {
        // Replay: identical compute calls in identical order reproduce the
        // dead slave's unit state bit-for-bit up to the current barrier.
        for i in 0..inv {
            common.compute(ctx, kernel.unit_cost_for(id, i));
            kernel.compute(id, &mut data, i);
            // Heartbeat so a long replay does not trip the master's
            // suspicion timer (replayed units are not re-counted as done).
            let _ = common.hook(ctx, inv, active_units(units, inv, invocations))?;
        }
        if units
            .insert(
                id,
                Unit {
                    data,
                    done_in: None,
                },
            )
            .is_some()
        {
            return Err(ProtocolError::Inconsistent {
                detail: format!(
                    "unit {id} restored to slave {} already owning it",
                    common.idx
                ),
            });
        }
    }
    Ok(true)
}

/// Drain already-queued transfers; in fault mode, also restores and
/// shutdown orders.
fn drain_incoming(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    rec: &mut AckTracker,
    kernel: &dyn IndependentKernel,
    inv: u64,
) -> Result<(), ProtocolError> {
    let fault_mode = common.ft.is_some();
    let pred = |m: &Msg| {
        matches!(m, Msg::Transfer(_))
            || (fault_mode && matches!(m, Msg::Restore { .. } | Msg::Abort | Msg::Evict))
    };
    while let Some(env) = ctx.try_recv_match(pred) {
        match env.msg {
            Msg::Transfer(t) => incorporate(common, units, t)?,
            Msg::Restore {
                seq,
                units: restored,
                ..
            } => {
                apply_restore(ctx, common, units, rec, kernel, inv, seq, restored)?;
            }
            Msg::Abort => return Err(ProtocolError::Aborted),
            Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
            _ => unreachable!(),
        }
    }
    Ok(())
}

fn execute_moves(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    inv: u64,
    invocations: u64,
    moves: Vec<MoveOrder>,
) {
    if moves.is_empty() {
        return;
    }
    let t0 = ctx.now();
    let mut total_moved = 0;
    for order in moves {
        // Keep at least one unit (the balancer's min_per_slave mirror).
        let take = (order.count as usize).min(units.len().saturating_sub(1));
        let mut picked: Vec<usize> = Vec::with_capacity(take);
        // Prefer undone units (they still carry work this invocation); among
        // equals, take from the ordered edge.
        let mut candidates: Vec<(bool, usize)> = units
            .iter()
            .map(|(&id, u)| (u.done_in == Some(inv), id))
            .collect();
        candidates.sort_by_key(|&(done, id)| {
            let edge_key = match order.edge {
                Edge::High => usize::MAX - id,
                Edge::Low => id,
            };
            (done, edge_key)
        });
        picked.extend(candidates.into_iter().take(take).map(|(_, id)| id));
        let moved: Vec<MovedUnit> = picked
            .into_iter()
            .map(|id| {
                let u = units.remove(&id).expect("picked unit");
                MovedUnit {
                    id,
                    done: u.done_in == Some(inv),
                    updated_through: 0,
                    data: u.data,
                    old: None,
                }
            })
            .collect();
        total_moved += moved.len() as u64;
        // Always send the transfer — even empty — so the master's pending
        // accounting and the receiver's counters stay settled.
        let msg = Msg::Transfer(TransferMsg {
            from: common.idx,
            invocation: inv,
            effective_block: 0,
            units: moved,
            right_old: None,
        });
        common.transfers_sent += 1;
        common.send_slave(ctx, order.to, msg);
    }
    let _ = invocations;
    common.move_cost_sample = Some((total_moved, ctx.now().saturating_since(t0)));
}

/// Outcome of idling at the end of an invocation.
enum Idle {
    /// A transfer or restore brought units that still need computing.
    NewWork,
    /// The barrier released the next invocation.
    NextInvocation,
    /// The master requested the final gather (final invocation only).
    Gather,
}

/// Idle at the end of an invocation: report done, then service messages
/// until new work arrives, the barrier releases the next invocation, or —
/// after the final invocation — the master requests the gather.
///
/// In fault mode the slave heartbeats: its `InvocationDone` (carrying the
/// restore watermark) is re-sent whenever nothing arrives for one heartbeat
/// period, bounded by `give_up_tries`.
#[allow(clippy::too_many_arguments)]
fn idle_until_work_or_barrier(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    rec: &mut AckTracker,
    kernel: &dyn IndependentKernel,
    inv: u64,
    invocations: u64,
    metric: f64,
) -> Result<Idle, ProtocolError> {
    let refresh_done = |common: &mut SlaveCommon, rec: &AckTracker| Msg::InvocationDone {
        slave: common.idx,
        invocation: inv,
        transfers_sent: common.transfers_sent,
        received_from: common.received_from.clone(),
        metric,
        restore_seq: rec.watermark(),
    };
    let msg = refresh_done(common, rec);
    common.send_master(ctx, msg);
    let ft = common.ft.clone();
    let mut silent = 0u32;
    loop {
        let env = match &ft {
            None => ctx.recv(),
            Some(ft) => match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
                Some(env) => {
                    silent = 0;
                    env
                }
                None => {
                    silent += 1;
                    if silent > ft.give_up_tries {
                        return Err(ProtocolError::Timeout {
                            who: crate::error::slave_who(common.idx),
                            waiting_for: "invocation barrier",
                            at: ctx.now(),
                        });
                    }
                    let msg = refresh_done(common, rec);
                    common.send_master(ctx, msg);
                    continue;
                }
            },
        };
        match env.msg {
            Msg::Transfer(t) => {
                incorporate(common, units, t)?;
                let has_work = units.values().any(|u| u.done_in != Some(inv));
                if has_work {
                    return Ok(Idle::NewWork);
                }
                // Ownership changed but no new work: refresh the master's
                // counters so settlement can complete.
                let msg = refresh_done(common, rec);
                common.send_master(ctx, msg);
            }
            Msg::Restore {
                seq,
                units: restored,
                ..
            } => {
                let fresh = apply_restore(ctx, common, units, rec, kernel, inv, seq, restored)?;
                if fresh && units.values().any(|u| u.done_in != Some(inv)) {
                    return Ok(Idle::NewWork);
                }
                // Duplicate (or no new work): refresh the watermark either
                // way so the master's settlement can observe it.
                let msg = refresh_done(common, rec);
                common.send_master(ctx, msg);
            }
            Msg::Instructions(instr) => {
                // Late pipelined replies can still carry movement orders.
                // The master cannot settle until their transfers are
                // acknowledged, so executing them here is always safe.
                if !instr.moves.is_empty() {
                    execute_moves(ctx, common, units, inv, invocations, instr.moves);
                    let msg = refresh_done(common, rec);
                    common.send_master(ctx, msg);
                }
            }
            Msg::InvocationStart { invocation } => {
                if invocation == inv + 1 {
                    return Ok(Idle::NextInvocation);
                }
                if ft.is_some() && invocation <= inv {
                    // Stale re-broadcast: the master has not yet seen our
                    // completion report; refresh it immediately.
                    let msg = refresh_done(common, rec);
                    common.send_master(ctx, msg);
                    continue;
                }
                return Err(common.unexpected("idle barrier", &Msg::InvocationStart { invocation }));
            }
            Msg::Gather => {
                // The master decides when the loop ends (fixed count or
                // data-dependent convergence, §4.1).
                return Ok(Idle::Gather);
            }
            Msg::Abort => return Err(ProtocolError::Aborted),
            Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
            Msg::Start { .. } | Msg::GatherAck if ft.is_some() => {} // duplicate deliveries
            other => return Err(common.unexpected("idle loop", &other)),
        }
    }
}

/// Invocation 0 needs an explicit release; later ones are consumed by
/// `idle_until_work_or_barrier`.
fn wait_invocation_start(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    rec: &mut AckTracker,
    kernel: &dyn IndependentKernel,
) -> Result<(), ProtocolError> {
    loop {
        let env = common.recv_blocking(ctx, |_| true, "first invocation start")?;
        match env.msg {
            Msg::InvocationStart { invocation: 0 } => return Ok(()),
            Msg::Transfer(t) => incorporate(common, units, t)?,
            Msg::Restore {
                seq,
                units: restored,
                ..
            } if common.ft.is_some() => {
                apply_restore(ctx, common, units, rec, kernel, 0, seq, restored)?;
            }
            Msg::Instructions(_) => {}
            Msg::Start { .. } if common.ft.is_some() => {} // duplicate delivery
            other => return Err(common.unexpected("waiting for first invocation", &other)),
        }
    }
}

/// Send the final gather payload; in fault mode, wait for the master's
/// acknowledgement (re-sending on duplicate `Gather` requests) so a dropped
/// `GatherData` cannot lose the result.
fn reply_gather(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: BTreeMap<usize, Unit>,
) -> Result<(), ProtocolError> {
    let payload: Vec<(usize, UnitData)> = units.into_iter().map(|(id, u)| (id, u.data)).collect();
    let msg = Msg::GatherData {
        slave: common.idx,
        units: payload.clone(),
    };
    common.send_master(ctx, msg);
    let Some(ft) = common.ft.clone() else {
        return Ok(());
    };
    let mut tries = 0u32;
    loop {
        match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
            None => {
                tries += 1;
                if tries > ft.gather_patience {
                    // Assume the data arrived and the ack was lost; the
                    // master recomputes locally if it really did not.
                    return Ok(());
                }
            }
            Some(env) => match env.msg {
                Msg::Gather => {
                    tries = 0;
                    let msg = Msg::GatherData {
                        slave: common.idx,
                        units: payload.clone(),
                    };
                    common.send_master(ctx, msg);
                }
                Msg::GatherAck | Msg::Abort => return Ok(()),
                Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
                _ => {} // stale traffic
            },
        }
    }
}
