//! Slave engine for independent distributed loops (MM-shaped programs).
//!
//! Each invocation of the distributed loop computes every unit once. The
//! slave computes its local units in index order, firing the compiler-
//! placed hook after each unit. Work movement ships whole units (data +
//! done flag); moved units that were already computed this invocation are
//! not recomputed, and in-flight undone units keep the master's completion
//! count below the target so invocations never terminate early (§4.5).
//!
//! In fault mode this engine is *recoverable*: the master can re-scatter a
//! dead slave's units to survivors via [`Msg::Restore`]. The receiver
//! replays each restored unit's computation history (identical `compute`
//! calls in identical order), so the final gathered data is bit-for-bit the
//! same as a fault-free run. Work movement stays live under faults: every
//! transfer rides a sequenced per-peer channel (dedup + ack + re-send; see
//! [`crate::slave_common`]), units in flight to an evicted peer are
//! re-owned, and the master may race a silent suspect's units here
//! speculatively ([`Msg::Speculate`]) — the results are held aside until
//! the master commits or cancels them.
//!
//! The *master itself* may also die. Low-ranked slaves double as deputies
//! ([`crate::session::replica`]): they absorb the master's control-plane
//! replicas, watch its heartbeat, and elect a successor when it falls
//! silent. A promoted deputy leaves the worker pool (propagated here as
//! [`ProtocolError::Elected`]) and reboots the run as the new master via
//! [`crate::master::run_takeover`]; the survivors are rolled back to the
//! replicated invocation watermark with a [`Msg::Rollback`] — previously a
//! checkpointed-engine-only message — which this engine's restart loop
//! turns into a wholesale re-adoption of the re-scattered units.

use crate::balancer::InteractionMode;
use crate::error::{FaultToleranceConfig, ProtocolError};
use crate::kernels::IndependentKernel;
use crate::msg::{Edge, MoveOrder, MovedUnit, Msg, TransferMsg, UnitData};
use crate::slave_common::{recv_start, SlaveCommon};
use dlb_sim::{ActorCtx, ActorId, CpuWork};
use std::collections::BTreeMap;
use std::sync::Arc;

struct Unit {
    data: UnitData,
    /// Invocation this unit was last computed in.
    done_in: Option<u64>,
}

/// Speculation buffers: results computed on the master's behalf for a
/// silent suspect, keyed by the `Speculate` sequence number, each unit's
/// data computed through the tagged invocation.
type SpecBuffers = BTreeMap<u64, (u64, Vec<(usize, UnitData)>)>;

/// Static configuration for one independent-engine slave.
pub struct IndependentSlave {
    pub idx: usize,
    pub master: ActorId,
    pub mode: InteractionMode,
    pub hook_check_cpu: CpuWork,
    pub kernel: Arc<dyn IndependentKernel>,
    pub ft: Option<FaultToleranceConfig>,
    /// Everything a promoted deputy needs to rebuild the master role
    /// (config factory, outcome slot, topology). `None` outside fault mode.
    pub takeover: Option<Arc<crate::master::TakeoverKit>>,
    /// Latecomer start time: when set, this slave starts with no units,
    /// idles until the given instant, then joins the running pool via the
    /// [`Msg::Join`] handshake.
    pub join_at: Option<dlb_sim::SimTime>,
}

impl IndependentSlave {
    /// Actor body. Never panics on protocol trouble: fatal errors are
    /// shipped to the master as [`Msg::SlaveError`].
    pub fn run(self, ctx: ActorCtx<Msg>) {
        let (idx, master) = (self.idx, self.master);
        match self.run_inner(&ctx) {
            Ok(())
            | Err(ProtocolError::Aborted)
            | Err(ProtocolError::Evicted { .. })
            | Err(ProtocolError::JoinRefused { .. }) => {}
            Err(error) => {
                let msg = Msg::SlaveError { slave: idx, error };
                let bytes = msg.wire_bytes();
                ctx.send(master, msg, bytes);
            }
        }
    }

    fn run_inner(self, ctx: &ActorCtx<Msg>) -> Result<(), ProtocolError> {
        // Wait for the initial assignment.
        let (slaves, assignment, _block_rows) = recv_start(ctx, self.idx, self.ft.as_ref())?;
        let range = assignment[self.idx];
        let mut common = SlaveCommon::new(
            self.idx,
            self.master,
            slaves,
            self.mode,
            self.hook_check_cpu,
            self.ft.clone(),
            ctx.now(),
        );
        // Freshness for the election is the replicated invocation watermark:
        // this engine restarts from `recompute_unit`, not a held snapshot.
        common.enable_deputy(false, ctx.now());
        let kernel = self.kernel;
        let mut units: BTreeMap<usize, Unit> = (range.0..range.1)
            .map(|i| {
                (
                    i,
                    Unit {
                        data: kernel.init_unit(i),
                        done_in: None,
                    },
                )
            })
            .collect();
        let mut spec: SpecBuffers = BTreeMap::new();
        let mut start_inv = 0u64;
        let mut need_release = true;
        if let Some(at) = self.join_at {
            // Latecomer: the parked Start taught us the topology; idle to
            // the join instant, then announce. The admission rollback is
            // stashed by the handshake and adopted at the top of the loop.
            common.park_then_join(ctx, at)?;
        }
        // Reboot loop: a rollback (master failover, or an admission after a
        // join) restarts the work loop at the rolled-back invocation with a
        // wholly re-scattered unit set; an election win turns this slave
        // into the new master; an eviction turns into a rejoin when the
        // fault config allows it.
        loop {
            let result = match common.pending_rollback.take() {
                Some(rb) if !rb.survivors.contains(&common.idx) => {
                    Err(ProtocolError::Evicted { slave: common.idx })
                }
                maybe_rb => {
                    if let Some(rb) = maybe_rb {
                        for s in 0..common.dead.len() {
                            if s == common.idx {
                                continue;
                            }
                            if !rb.survivors.contains(&s) {
                                common.peer_evicted(s);
                            } else if common.dead[s] {
                                // A rejoined peer comes back to life; clearing
                                // the flag lets the rebase below reopen its
                                // transfer channel at sequence zero.
                                common.dead[s] = false;
                            }
                        }
                        // The rollback re-scatters every unit from the
                        // master's replica: nothing reclaimed from closed
                        // channels (and no ownership report) survives it.
                        common.reclaimed.clear();
                        common.own_report_due.clear();
                        common.rebase_epoch(rb.epoch);
                        common.ckpt_stride = rb.ckpt_stride;
                        spec.clear();
                        units = rb
                            .units
                            .into_iter()
                            .map(|(id, data)| {
                                (
                                    id,
                                    Unit {
                                        data,
                                        done_in: None,
                                    },
                                )
                            })
                            .collect();
                        start_inv = rb.invocation;
                        // The Rollback doubles as the barrier release.
                        need_release = false;
                    }
                    work_loop(
                        ctx,
                        &mut common,
                        &mut units,
                        &mut spec,
                        &*kernel,
                        start_inv,
                        need_release,
                    )
                }
            };
            match result {
                Err(ProtocolError::RolledBack) => {
                    debug_assert!(
                        common.pending_rollback.is_some(),
                        "RolledBack pairs with a stashed rollback"
                    );
                }
                Err(ProtocolError::Elected { .. }) => {
                    let seed = common
                        .takeover
                        .take()
                        .expect("Elected pairs with a stashed takeover seed");
                    let Some(kit) = self.takeover.as_deref() else {
                        return Err(ProtocolError::Inconsistent {
                            detail: format!(
                                "slave {} won an election without a takeover kit",
                                common.idx
                            ),
                        });
                    };
                    return crate::master::run_takeover(ctx, kit, seed, common.idx);
                }
                Err(ProtocolError::Evicted { .. })
                    if self.ft.as_ref().is_some_and(|ft| ft.rejoin_attempts > 0) =>
                {
                    // Eviction is no longer the end of the line: come back
                    // as a fresh incarnation and ask to be re-admitted. The
                    // rebuilt common starts with clean channel/epoch state;
                    // the old life's windows and clocks die with it.
                    let incarnation = common.incarnation + 1;
                    let (master, peers) = (common.master, common.slaves.clone());
                    common = SlaveCommon::new(
                        self.idx,
                        master,
                        peers,
                        self.mode,
                        self.hook_check_cpu,
                        self.ft.clone(),
                        ctx.now(),
                    );
                    common.incarnation = incarnation;
                    common.enable_deputy(false, ctx.now());
                    units.clear();
                    spec.clear();
                    common.join_handshake(ctx)?;
                }
                r => return r,
            }
        }
    }
}

/// One life of the compute loop: from `start_inv` to the gather, or until a
/// failover rollback / election win unwinds it.
fn work_loop(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    spec: &mut SpecBuffers,
    kernel: &dyn IndependentKernel,
    start_inv: u64,
    need_release: bool,
) -> Result<(), ProtocolError> {
    let invocations = kernel.invocations();
    let mut inv = start_inv;
    let mut metric = 0.0f64;
    if need_release {
        wait_invocation_start(ctx, common, units, spec, kernel)?;
    }
    'outer: while inv < invocations {
        'compute: loop {
            // Opportunistically pull transfers (and restores) that are
            // already queued.
            drain_incoming(ctx, common, units, spec, kernel, inv)?;
            let next = units
                .iter()
                .find(|(_, u)| u.done_in != Some(inv))
                .map(|(&id, _)| id);
            match next {
                Some(id) => {
                    common.compute(ctx, kernel.unit_cost_for(id, inv));
                    let u = units.get_mut(&id).expect("unit present");
                    kernel.compute(id, &mut u.data, inv);
                    u.done_in = Some(inv);
                    metric += kernel.local_metric(id, &u.data);
                    common.record_done(1);
                    let active = active_units(units, inv, invocations);
                    let moves = common.hook(ctx, inv, active)?;
                    execute_moves(ctx, common, units, inv, moves);
                }
                None => {
                    // Flush the final partial period, then go idle.
                    let active = active_units(units, inv, invocations);
                    let moves = common.fire(ctx, inv, active)?;
                    execute_moves(ctx, common, units, inv, moves);
                    match idle_until_work_or_barrier(ctx, common, units, spec, kernel, inv, metric)?
                    {
                        Idle::NewWork => {}
                        Idle::NextInvocation => break 'compute,
                        Idle::Gather => {
                            return reply_gather(ctx, common, units, inv);
                        }
                    }
                }
            }
        }
        inv += 1;
        metric = 0.0;
        if inv >= invocations {
            break 'outer;
        }
    }

    // Safety net: if the upper bound on invocations is reached without
    // the master converging earlier, wait for the gather here.
    let env = common.recv_blocking(ctx, |m| matches!(m, Msg::Gather), "final gather")?;
    debug_assert!(matches!(env.msg, Msg::Gather));
    reply_gather(ctx, common, units, invocations.saturating_sub(1))
}

fn active_units(units: &BTreeMap<usize, Unit>, inv: u64, invocations: u64) -> u64 {
    if inv + 1 < invocations {
        // Every unit will be recomputed next invocation.
        units.len() as u64
    } else {
        units.values().filter(|u| u.done_in != Some(inv)).count() as u64
    }
}

/// Apply a fresh transfer payload (the channel layer already deduplicated
/// and acknowledged it).
fn incorporate(
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    t: TransferMsg,
) -> Result<(), ProtocolError> {
    for mu in t.units {
        let done_in = if mu.done { Some(t.invocation) } else { None };
        let id = mu.id;
        let prev = units.insert(
            id,
            Unit {
                data: mu.data,
                done_in,
            },
        );
        if prev.is_some() {
            return Err(ProtocolError::Inconsistent {
                detail: format!("unit {id} moved to slave {} already owning it", common.idx),
            });
        }
    }
    Ok(())
}

/// Reintegrate units re-owned from channels closed by peer eviction, then
/// answer any pending ownership reports. Must run before the master can
/// treat this slave's ownership as settled — every drain point calls it.
fn settle_evictions(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    inv: u64,
) -> Result<(), ProtocolError> {
    for mu in std::mem::take(&mut common.reclaimed) {
        let done_in = if mu.done { Some(inv) } else { None };
        let id = mu.id;
        if units
            .insert(
                id,
                Unit {
                    data: mu.data,
                    done_in,
                },
            )
            .is_some()
        {
            return Err(ProtocolError::Inconsistent {
                detail: format!(
                    "unit {id} re-owned by slave {} already owning it",
                    common.idx
                ),
            });
        }
    }
    for about in std::mem::take(&mut common.own_report_due) {
        let report = Msg::OwnReport {
            slave: common.idx,
            about,
            ids: units.keys().copied().collect(),
        };
        common.send_master(ctx, report);
    }
    Ok(())
}

/// Apply a `Restore`: adopt the units and replay their computation history
/// so their data matches what the dead owner would have held. Returns
/// whether the restore was fresh (not a duplicate).
fn apply_restore(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    kernel: &dyn IndependentKernel,
    inv: u64,
    seq: u64,
    restored: Vec<(usize, UnitData)>,
) -> Result<bool, ProtocolError> {
    if !common.master_chan.fresh(seq) {
        return Ok(false); // duplicate delivery
    }
    let invocations = kernel.invocations();
    for (id, mut data) in restored {
        // Replay: identical compute calls in identical order reproduce the
        // dead slave's unit state bit-for-bit up to the current barrier.
        for i in 0..inv {
            common.compute(ctx, kernel.unit_cost_for(id, i));
            kernel.compute(id, &mut data, i);
            // Heartbeat so a long replay does not trip the master's
            // suspicion timer (replayed units are not re-counted as done).
            let _ = common.hook(ctx, inv, active_units(units, inv, invocations))?;
        }
        if units
            .insert(
                id,
                Unit {
                    data,
                    done_in: None,
                },
            )
            .is_some()
        {
            return Err(ProtocolError::Inconsistent {
                detail: format!(
                    "unit {id} restored to slave {} already owning it",
                    common.idx
                ),
            });
        }
    }
    Ok(true)
}

/// Apply a `Speculate`: compute the suspect's units *through* the current
/// barrier into a side buffer; the master later commits or cancels it.
#[allow(clippy::too_many_arguments)]
fn apply_speculate(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &BTreeMap<usize, Unit>,
    spec: &mut SpecBuffers,
    kernel: &dyn IndependentKernel,
    inv: u64,
    seq: u64,
    invocation: u64,
    suspects: Vec<(usize, UnitData)>,
) -> Result<(), ProtocolError> {
    if !common.master_chan.fresh(seq) {
        return Ok(()); // duplicate delivery
    }
    let invocations = kernel.invocations();
    let mut computed = Vec::with_capacity(suspects.len());
    for (id, mut data) in suspects {
        for i in 0..=invocation {
            common.compute(ctx, kernel.unit_cost_for(id, i));
            kernel.compute(id, &mut data, i);
            // Speculated units are not owned (yet): not counted done.
            let _ = common.hook(ctx, inv, active_units(units, inv, invocations))?;
        }
        computed.push((id, data));
    }
    common.fault_stats.speculations_computed += 1;
    spec.insert(seq, (invocation, computed));
    Ok(())
}

/// Handle the windowed master-channel messages (`Restore` / `Speculate` /
/// commit / cancel). Returns whether ownership may have changed (new local
/// work or new owned ids).
#[allow(clippy::too_many_arguments)]
fn apply_master_chan(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    spec: &mut SpecBuffers,
    kernel: &dyn IndependentKernel,
    inv: u64,
    msg: Msg,
) -> Result<bool, ProtocolError> {
    match msg {
        Msg::Restore {
            seq,
            units: restored,
            ..
        } => apply_restore(ctx, common, units, kernel, inv, seq, restored),
        Msg::Speculate {
            seq,
            invocation,
            units: suspects,
        } => {
            apply_speculate(
                ctx, common, units, spec, kernel, inv, seq, invocation, suspects,
            )?;
            Ok(false)
        }
        Msg::SpecCommit { seq, spec_seq, ids } => {
            if !ids.is_empty() && !spec.contains_key(&spec_seq) {
                // The Speculate this commit refers to has not arrived yet
                // (drop + out-of-order window replay). Leave the sequence
                // unacknowledged: the master re-sends the whole unacked
                // window in order, so the buffer arrives first eventually.
                return Ok(false);
            }
            if !common.master_chan.fresh(seq) {
                return Ok(false);
            }
            let mut changed = false;
            if let Some((computed_through, buffer)) = spec.remove(&spec_seq) {
                for (id, data) in buffer {
                    if !ids.contains(&id) {
                        continue; // owned elsewhere by now — discard
                    }
                    if units
                        .insert(
                            id,
                            Unit {
                                data,
                                done_in: Some(computed_through),
                            },
                        )
                        .is_some()
                    {
                        return Err(ProtocolError::Inconsistent {
                            detail: format!(
                                "speculated unit {id} committed to slave {} already owning it",
                                common.idx
                            ),
                        });
                    }
                    changed = true;
                }
            }
            Ok(changed)
        }
        Msg::SpecCancel { seq, spec_seq } => {
            if common.master_chan.fresh(seq) {
                spec.remove(&spec_seq);
            }
            Ok(false)
        }
        other => Err(common.unexpected("master channel", &other)),
    }
}

/// Drain already-queued transfers; in fault mode, also the windowed master
/// channel, transfer acks, peer evictions, and shutdown orders.
fn drain_incoming(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    spec: &mut SpecBuffers,
    kernel: &dyn IndependentKernel,
    inv: u64,
) -> Result<(), ProtocolError> {
    let fault_mode = common.ft.is_some();
    let pred = |m: &Msg| {
        matches!(m, Msg::Transfer(_) | Msg::TransferAck { .. })
            || (fault_mode
                && matches!(
                    m,
                    Msg::Restore { .. }
                        | Msg::Speculate { .. }
                        | Msg::SpecCommit { .. }
                        | Msg::SpecCancel { .. }
                        | Msg::Evicted { .. }
                        | Msg::Abort
                        | Msg::Evict
                        | Msg::Rollback { .. }
                        | Msg::Replica(_)
                        | Msg::MasterPing { .. }
                        | Msg::Candidacy { .. }
                        | Msg::Vote { .. }
                        | Msg::Promoted { .. }
                ))
    };
    while let Some(env) = ctx.try_recv_match(pred) {
        match env.msg {
            Msg::Transfer(t) => {
                if common.accept_transfer(ctx, &t) {
                    incorporate(common, units, t)?;
                }
            }
            Msg::TransferAck {
                from,
                epoch,
                watermark,
            } => common.handle_transfer_ack(from, epoch, watermark),
            Msg::Evicted { slave } => common.peer_evicted(slave),
            Msg::Abort => return Err(ProtocolError::Aborted),
            Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
            m @ (Msg::Restore { .. }
            | Msg::Speculate { .. }
            | Msg::SpecCommit { .. }
            | Msg::SpecCancel { .. }) => {
                apply_master_chan(ctx, common, units, spec, kernel, inv, m)?;
            }
            m @ Msg::Rollback { .. } => {
                // A failover rollback: stash + unwind to the reboot loop.
                common.control(&m)?;
            }
            m @ (Msg::Replica(_)
            | Msg::MasterPing { .. }
            | Msg::Candidacy { .. }
            | Msg::Vote { .. }
            | Msg::Promoted { .. }) => {
                common.election(ctx, &m)?;
            }
            _ => unreachable!(),
        }
    }
    settle_evictions(ctx, common, units, inv)
}

fn execute_moves(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    inv: u64,
    moves: Vec<MoveOrder>,
) {
    if moves.is_empty() {
        return;
    }
    let t0 = ctx.now();
    let mut total_moved = 0;
    for order in moves {
        if common.dead[order.to] {
            // Offer to an evicted slave: refused locally, units stay here.
            continue;
        }
        // Keep at least one unit (the balancer's min_per_slave mirror).
        let take = (order.count as usize).min(units.len().saturating_sub(1));
        let mut picked: Vec<usize> = Vec::with_capacity(take);
        // Prefer undone units (they still carry work this invocation); among
        // equals, take from the ordered edge.
        let mut candidates: Vec<(bool, usize)> = units
            .iter()
            .map(|(&id, u)| (u.done_in == Some(inv), id))
            .collect();
        candidates.sort_by_key(|&(done, id)| {
            let edge_key = match order.edge {
                Edge::High => usize::MAX - id,
                Edge::Low => id,
            };
            (done, edge_key)
        });
        picked.extend(candidates.into_iter().take(take).map(|(_, id)| id));
        let moved: Vec<MovedUnit> = picked
            .into_iter()
            .map(|id| {
                let u = units.remove(&id).expect("picked unit");
                MovedUnit {
                    id,
                    done: u.done_in == Some(inv),
                    updated_through: 0,
                    data: u.data,
                    old: None,
                }
            })
            .collect();
        total_moved += moved.len() as u64;
        let from = common.idx;
        // Always send the transfer — even empty — so the master's pending
        // accounting and the channel watermarks stay settled.
        common.send_transfer(ctx, order.to, |_| TransferMsg {
            from,
            seq: 0,
            epoch: 0,
            invocation: inv,
            effective_block: 0,
            units: moved,
            right_old: None,
        });
    }
    common.move_cost_sample = Some((total_moved, ctx.now().saturating_since(t0)));
}

/// Outcome of idling at the end of an invocation.
enum Idle {
    /// A transfer or restore brought units that still need computing.
    NewWork,
    /// The barrier released the next invocation.
    NextInvocation,
    /// The master requested the final gather (final invocation only).
    Gather,
}

/// Idle at the end of an invocation: report done, then service messages
/// until new work arrives, the barrier releases the next invocation, or —
/// after the final invocation — the master requests the gather.
///
/// In fault mode the slave heartbeats: its `InvocationDone` (carrying the
/// master-channel watermark) is re-sent whenever nothing arrives for one
/// heartbeat period, bounded by `give_up_tries`; unacked transfers are
/// re-sent on the same trigger.
#[allow(clippy::too_many_arguments)]
fn idle_until_work_or_barrier(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    spec: &mut SpecBuffers,
    kernel: &dyn IndependentKernel,
    inv: u64,
    metric: f64,
) -> Result<Idle, ProtocolError> {
    let refresh_done =
        |common: &mut SlaveCommon, units: &BTreeMap<usize, Unit>| Msg::InvocationDone {
            slave: common.idx,
            invocation: inv,
            epoch: common.epoch,
            sent_to: common.sent_to_vec(),
            received_from: common.recv_watermarks(),
            metric,
            restore_seq: common.master_chan.watermark(),
            owned_ids: units.keys().copied().collect(),
            replica_inv: common.replica_inv(),
        };
    settle_evictions(ctx, common, units, inv)?;
    let msg = refresh_done(common, units);
    common.send_master(ctx, msg);
    let ft = common.ft.clone();
    let mut silent = 0u32;
    loop {
        let env = match &ft {
            None => ctx.recv(),
            Some(ft) => match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
                Some(env) => {
                    silent = 0;
                    env
                }
                None => {
                    silent += 1;
                    if silent > ft.give_up_tries {
                        return Err(ProtocolError::Timeout {
                            who: crate::error::slave_who(common.idx),
                            waiting_for: "invocation barrier",
                            at: ctx.now(),
                        });
                    }
                    common.resend_stalled_transfers(ctx);
                    common.deputy_tick(ctx)?;
                    let msg = refresh_done(common, units);
                    common.send_master(ctx, msg);
                    continue;
                }
            },
        };
        match env.msg {
            Msg::Transfer(t) => {
                if common.accept_transfer(ctx, &t) {
                    incorporate(common, units, t)?;
                }
                let has_work = units.values().any(|u| u.done_in != Some(inv));
                if has_work {
                    return Ok(Idle::NewWork);
                }
                // Ownership changed (or a duplicate needed re-acking) but no
                // new work: refresh the master's counters so settlement can
                // complete.
                let msg = refresh_done(common, units);
                common.send_master(ctx, msg);
            }
            Msg::TransferAck {
                from,
                epoch,
                watermark,
            } => {
                common.handle_transfer_ack(from, epoch, watermark);
                let msg = refresh_done(common, units);
                common.send_master(ctx, msg);
            }
            Msg::Evicted { slave } => {
                common.peer_evicted(slave);
                settle_evictions(ctx, common, units, inv)?;
                if units.values().any(|u| u.done_in != Some(inv)) {
                    return Ok(Idle::NewWork);
                }
                let msg = refresh_done(common, units);
                common.send_master(ctx, msg);
            }
            m @ (Msg::Restore { .. }
            | Msg::Speculate { .. }
            | Msg::SpecCommit { .. }
            | Msg::SpecCancel { .. }) => {
                let changed = apply_master_chan(ctx, common, units, spec, kernel, inv, m)?;
                if changed && units.values().any(|u| u.done_in != Some(inv)) {
                    return Ok(Idle::NewWork);
                }
                // Duplicate (or no new work): refresh the watermark either
                // way so the master's settlement can observe it.
                let msg = refresh_done(common, units);
                common.send_master(ctx, msg);
            }
            Msg::Instructions(instr) => {
                // Late pipelined replies can still carry movement orders.
                // The master cannot settle until their transfers are
                // acknowledged, so executing them here is always safe —
                // but only through the shared epoch/sequence fences, or a
                // duplicated delivery would double-execute the moves.
                let moves = common.instructions_out_of_band(instr);
                if !moves.is_empty() {
                    execute_moves(ctx, common, units, inv, moves);
                    let msg = refresh_done(common, units);
                    common.send_master(ctx, msg);
                }
            }
            Msg::InvocationStart { invocation, .. } => {
                if invocation == inv + 1 {
                    return Ok(Idle::NextInvocation);
                }
                if ft.is_some() && invocation <= inv {
                    // Stale re-broadcast: the master has not yet seen our
                    // completion report; refresh it immediately.
                    let msg = refresh_done(common, units);
                    common.send_master(ctx, msg);
                    continue;
                }
                return Err(common.unexpected(
                    "idle barrier",
                    &Msg::InvocationStart {
                        invocation,
                        ckpt_stride: 1,
                    },
                ));
            }
            Msg::Gather => {
                // The master decides when the loop ends (fixed count or
                // data-dependent convergence, §4.1).
                return Ok(Idle::Gather);
            }
            Msg::Abort => return Err(ProtocolError::Aborted),
            Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
            m @ Msg::Rollback { .. } => {
                // A failover rollback: stash + unwind to the reboot loop
                // (or ack a stale duplicate and keep idling).
                common.control(&m)?;
            }
            m @ (Msg::Replica(_)
            | Msg::MasterPing { .. }
            | Msg::Candidacy { .. }
            | Msg::Vote { .. }
            | Msg::Promoted { .. }) => {
                common.election(ctx, &m)?;
            }
            Msg::Start { .. } | Msg::GatherAck if ft.is_some() => {} // duplicate deliveries
            other => return Err(common.unexpected("idle loop", &other)),
        }
    }
}

/// Invocation 0 needs an explicit release; later ones are consumed by
/// `idle_until_work_or_barrier`.
fn wait_invocation_start(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    spec: &mut SpecBuffers,
    kernel: &dyn IndependentKernel,
) -> Result<(), ProtocolError> {
    loop {
        let env = common.recv_blocking(ctx, |_| true, "first invocation start")?;
        match env.msg {
            Msg::InvocationStart { invocation: 0, .. } => return Ok(()),
            Msg::Transfer(t) => {
                if common.accept_transfer(ctx, &t) {
                    incorporate(common, units, t)?;
                }
            }
            m @ (Msg::Restore { .. }
            | Msg::Speculate { .. }
            | Msg::SpecCommit { .. }
            | Msg::SpecCancel { .. })
                if common.ft.is_some() =>
            {
                apply_master_chan(ctx, common, units, spec, kernel, 0, m)?;
            }
            Msg::Instructions(_) => {}
            Msg::Start { .. } if common.ft.is_some() => {} // duplicate delivery
            other => return Err(common.unexpected("waiting for first invocation", &other)),
        }
        settle_evictions(ctx, common, units, 0)?;
    }
}

/// Send the final gather payload; in fault mode, wait for the master's
/// acknowledgement (re-sending on duplicate `Gather` requests) so a dropped
/// `GatherData` cannot lose the result.
fn reply_gather(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    units: &mut BTreeMap<usize, Unit>,
    inv: u64,
) -> Result<(), ProtocolError> {
    settle_evictions(ctx, common, units, inv)?;
    let payload: Vec<(usize, UnitData)> =
        units.iter().map(|(&id, u)| (id, u.data.clone())).collect();
    let msg = Msg::GatherData {
        slave: common.idx,
        units: payload.clone(),
        fault_stats: common.fault_stats.clone(),
    };
    common.send_master(ctx, msg);
    let Some(ft) = common.ft.clone() else {
        return Ok(());
    };
    let mut tries = 0u32;
    loop {
        match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
            None => {
                tries += 1;
                if tries > ft.gather_patience {
                    // Assume the data arrived and the ack was lost; the
                    // master recomputes locally if it really did not.
                    return Ok(());
                }
                // The master may die between our GatherData and its ack:
                // deputies keep the election live even here.
                common.deputy_tick(ctx)?;
            }
            Some(env) => match env.msg {
                Msg::Gather => {
                    tries = 0;
                    let msg = Msg::GatherData {
                        slave: common.idx,
                        units: payload.clone(),
                        fault_stats: common.fault_stats.clone(),
                    };
                    common.send_master(ctx, msg);
                }
                Msg::GatherAck | Msg::Abort => return Ok(()),
                Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
                m => {
                    // Election traffic and a takeover rollback (the new
                    // master restarting the final invocation) both unwind
                    // through the reboot loop; everything else is stale.
                    if !common.election(ctx, &m)? {
                        common.control(&m)?;
                    }
                }
            },
        }
    }
}
