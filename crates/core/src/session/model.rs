//! Model-checkable abstractions of the session kernel's reliable-delivery
//! and coordination sub-protocols: master→survivor restore scatter
//! ([`RestoreModel`]), slave↔slave work migration ([`TransferModel`]), and
//! the deputy election that replaces a crashed master ([`ElectionModel`]).
//!
//! The first two models run the *same* [`SenderWindow`] / [`AckTracker`] /
//! [`TransferWindow`] rules the runtime uses (re-exported from
//! [`crate::protocol`]), wrapped in an abstracted master/slaves/network
//! system that `dlb-analyze` exhaustively explores for lost work, duplicate
//! application, and deadlock. The election model mirrors the pure voting
//! rules of [`crate::session::replica::DeputyState`] (one vote per term,
//! the newest-replica freshness guard, majority quorum over the full deputy
//! set) under a dropping/duplicating network, and checks that no term ever
//! promotes two masters. Each model also ships a deliberately broken
//! variant (acknowledge without dedup; a voter that forgets which terms it
//! voted in) whose counterexample the checker must find — the
//! E101/E104/E107 fixtures in `dlb-analyze`.

use crate::protocol::{AckTracker, SenderWindow, TransferWindow};
use crate::recovery::redistribute;
use dlb_sim::TransitionSystem;
use std::collections::{BTreeMap, BTreeSet};

/// A message in flight in the [`RestoreModel`]'s network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Wire {
    /// Master → survivor: adopt these units (sequence-numbered).
    Restore {
        to: usize,
        seq: u64,
        units: Vec<usize>,
    },
    /// Survivor → master: contiguous applied watermark (carried by
    /// `InvocationDone::restore_seq` in the real runtime).
    Ack { from: usize, watermark: u64 },
}

/// One enabled step of the model.
///
/// The wire is a *set* of distinct in-flight messages (idempotent
/// network): re-sending an identical message merges with the copy already
/// in flight, and duplicate delivery is modeled by [`Step::DeliverCopy`],
/// which applies a message without consuming it. This is the standard
/// sound reduction for drop/duplicate networks — it preserves every
/// receiver-visible delivery sequence while keeping the state space small
/// enough to exhaust.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Master scatters wave `w` of dead units over the survivors.
    Scatter(usize),
    /// Deliver the `i`-th in-flight message (and consume it).
    Deliver(usize),
    /// The network delivers a duplicate of the `i`-th in-flight message:
    /// effects apply but the original stays in flight (bounded budget).
    DeliverCopy(usize),
    /// The network drops the `i`-th in-flight message (bounded budget).
    Drop(usize),
    /// The master's nudge timer fires for survivor `s`: re-send everything
    /// unacknowledged that is not already in flight.
    Resend(usize),
    /// Survivor `s` heartbeats its current watermark (`InvocationDone`
    /// re-send in the real runtime), while the ack carries news.
    Heartbeat(usize),
}

/// Per-survivor receiver state in the model.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SlaveModel {
    pub tracker: AckTracker,
    /// Units held, with how many times each was *applied* — a count above
    /// one is a duplicate application (double compute / double insert).
    pub holding: BTreeMap<usize, u32>,
}

/// Full model state: master windows, survivor trackers, and the network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RestoreState {
    pub windows: Vec<SenderWindow<Vec<usize>>>,
    pub slaves: Vec<SlaveModel>,
    /// In flight: a sorted set of distinct messages (idempotent network).
    pub wire: Vec<Wire>,
    pub scattered_waves: usize,
    pub drops_used: u32,
    pub dups_used: u32,
}

/// The abstracted master/slaves/network system around the restore protocol.
///
/// The master scatters `waves` of dead-slave units over `survivors`
/// (round-robin, exactly as [`crate::recovery::redistribute`] does), the
/// network may drop or duplicate a bounded number of messages, and both
/// sides run the [`SenderWindow`]/[`AckTracker`] rules. `dedup_acks = false`
/// switches the receiver to a deliberately broken variant that acknowledges
/// without deduplicating — the model checker must find the duplicate-apply
/// counterexample (and does; see `dlb-analyze`).
#[derive(Clone, Debug)]
pub struct RestoreModel {
    pub survivors: usize,
    /// Unit ids scattered per wave (each wave is one eviction's re-scatter).
    pub waves: Vec<Vec<usize>>,
    pub max_drops: u32,
    pub max_dups: u32,
    /// True = the real protocol (receiver dedups by sequence number).
    pub dedup_acks: bool,
}

impl RestoreModel {
    /// The standard checked configuration: two survivors, one eviction wave
    /// of three units followed by a second single-unit wave, one drop and
    /// one duplication budget.
    pub fn standard() -> RestoreModel {
        RestoreModel {
            survivors: 2,
            waves: vec![vec![0, 1, 2], vec![3]],
            max_drops: 1,
            max_dups: 1,
            dedup_acks: true,
        }
    }

    /// The broken variant: acknowledgements without receiver dedup.
    pub fn broken_no_dedup() -> RestoreModel {
        RestoreModel {
            dedup_acks: false,
            ..RestoreModel::standard()
        }
    }

    /// Receiver/sender effects of one message delivery (shared by
    /// [`Step::Deliver`] and [`Step::DeliverCopy`]).
    fn deliver(&self, n: &mut RestoreState, msg: Wire) {
        match msg {
            Wire::Restore { to, seq, units } => {
                let slave = &mut n.slaves[to];
                let fresh = if self.dedup_acks {
                    slave.tracker.fresh(seq)
                } else {
                    // Broken variant: acknowledge the sequence but apply
                    // unconditionally.
                    slave.tracker.fresh(seq);
                    true
                };
                if fresh {
                    for u in units {
                        *slave.holding.entry(u).or_insert(0) += 1;
                    }
                }
                let ack = Wire::Ack {
                    from: to,
                    watermark: n.slaves[to].tracker.watermark(),
                };
                insert_unique(&mut n.wire, ack);
            }
            Wire::Ack { from, watermark } => {
                n.windows[from].ack(watermark);
            }
        }
    }

    fn all_units(&self) -> usize {
        self.waves.iter().map(|w| w.len()).sum()
    }

    fn quiescent(&self, s: &RestoreState) -> bool {
        s.scattered_waves == self.waves.len()
            && s.wire.is_empty()
            && s.windows.iter().all(|w| w.fully_acked())
    }
}

fn insert_unique(wire: &mut Vec<Wire>, msg: Wire) {
    if let Err(at) = wire.binary_search(&msg) {
        wire.insert(at, msg);
    }
}

impl TransitionSystem for RestoreModel {
    type State = RestoreState;
    type Action = Step;

    fn initial(&self) -> RestoreState {
        RestoreState {
            windows: vec![SenderWindow::new(); self.survivors],
            slaves: vec![SlaveModel::default(); self.survivors],
            wire: Vec::new(),
            scattered_waves: 0,
            drops_used: 0,
            dups_used: 0,
        }
    }

    fn actions(&self, s: &RestoreState) -> Vec<Step> {
        let mut out = Vec::new();
        if s.scattered_waves < self.waves.len() {
            out.push(Step::Scatter(s.scattered_waves));
        }
        for i in 0..s.wire.len() {
            out.push(Step::Deliver(i));
            if s.drops_used < self.max_drops {
                out.push(Step::Drop(i));
            }
            if s.dups_used < self.max_dups {
                out.push(Step::DeliverCopy(i));
            }
        }
        for t in 0..self.survivors {
            // Nudge: at most one copy of a pending message in flight at a
            // time (the timer refires, so this loses no behaviours — it
            // only bounds the wire occupancy).
            let resendable = s.windows[t].unacked().any(|(seq, units)| {
                !s.wire.contains(&Wire::Restore {
                    to: t,
                    seq: *seq,
                    units: units.clone(),
                })
            });
            if resendable {
                out.push(Step::Resend(t));
            }
            let hb = Wire::Ack {
                from: t,
                watermark: s.slaves[t].tracker.watermark(),
            };
            // Heartbeat while it carries news (the ack was lost): in the
            // runtime a slave re-sends `InvocationDone` until released, and
            // stops once settled — so the model stops at quiescence too,
            // which keeps quiescent states terminal for deadlock detection.
            if s.slaves[t].tracker.watermark() > s.windows[t].watermark() && !s.wire.contains(&hb) {
                out.push(Step::Heartbeat(t));
            }
        }
        out
    }

    fn apply(&self, s: &RestoreState, a: &Step) -> RestoreState {
        let mut n = s.clone();
        match a {
            Step::Scatter(w) => {
                let survivors: Vec<usize> = (0..self.survivors).collect();
                for (t, units) in redistribute(&self.waves[*w], &survivors) {
                    n.windows[t].send_with(|_| units.clone());
                    let msg = Wire::Restore {
                        to: t,
                        seq: n.windows[t].seq_sent(),
                        units,
                    };
                    insert_unique(&mut n.wire, msg);
                }
                n.scattered_waves += 1;
            }
            Step::Deliver(i) => {
                let msg = n.wire.remove(*i);
                self.deliver(&mut n, msg);
            }
            Step::DeliverCopy(i) => {
                let msg = n.wire[*i].clone();
                n.dups_used += 1;
                self.deliver(&mut n, msg);
            }
            Step::Drop(i) => {
                n.wire.remove(*i);
                n.drops_used += 1;
            }
            Step::Resend(t) => {
                let msgs: Vec<Wire> = n.windows[*t]
                    .unacked()
                    .map(|(seq, units)| Wire::Restore {
                        to: *t,
                        seq: *seq,
                        units: units.clone(),
                    })
                    .filter(|m| !n.wire.contains(m))
                    .collect();
                for m in msgs {
                    insert_unique(&mut n.wire, m);
                }
            }
            Step::Heartbeat(t) => {
                let hb = Wire::Ack {
                    from: *t,
                    watermark: n.slaves[*t].tracker.watermark(),
                };
                insert_unique(&mut n.wire, hb);
            }
        }
        n
    }

    fn violation(&self, s: &RestoreState) -> Option<String> {
        for (idx, slave) in s.slaves.iter().enumerate() {
            for (unit, applies) in &slave.holding {
                if *applies > 1 {
                    return Some(format!(
                        "unit {unit} applied {applies} times on survivor {idx} (duplicate apply)"
                    ));
                }
            }
        }
        // A unit held by two survivors at once is also a duplicate.
        let mut owners: BTreeMap<usize, usize> = BTreeMap::new();
        for (idx, slave) in s.slaves.iter().enumerate() {
            for unit in slave.holding.keys() {
                if let Some(prev) = owners.insert(*unit, idx) {
                    return Some(format!(
                        "unit {unit} held by survivors {prev} and {idx} simultaneously"
                    ));
                }
            }
        }
        if self.quiescent(s) {
            let held: usize = s.slaves.iter().map(|sl| sl.holding.len()).sum();
            if held != self.all_units() {
                return Some(format!(
                    "quiescent with {held} of {} units restored (lost work)",
                    self.all_units()
                ));
            }
        }
        None
    }

    fn is_accepting(&self, s: &RestoreState) -> bool {
        self.quiescent(s)
    }
}

// ---------------------------------------------------------------------------
// Slave ↔ slave transfer channel
// ---------------------------------------------------------------------------

/// A message in flight in the [`TransferModel`]'s network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TWire {
    /// Sender → receiver: adopt these units (sequence-numbered move).
    Transfer { seq: u64, units: Vec<usize> },
    /// Receiver → sender: contiguous applied watermark.
    Ack { watermark: u64 },
}

/// One enabled step of the [`TransferModel`]. Same idempotent-wire
/// reduction as [`Step`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TStep {
    /// The balancer orders move `m`: the sender sheds its units onto the
    /// channel (or keeps them, if the receiver was already evicted).
    Offer(usize),
    /// Deliver the `i`-th in-flight message (and consume it). Deliveries
    /// to an evicted receiver are discarded, as the fail-stop network does.
    Deliver(usize),
    /// Deliver a duplicate of the `i`-th message (bounded budget).
    DeliverCopy(usize),
    /// Drop the `i`-th message (bounded budget).
    Drop(usize),
    /// The sender's re-send trigger fires: re-send everything
    /// unacknowledged that is not already in flight.
    Resend,
    /// The receiver re-acknowledges while the ack carries news.
    Heartbeat,
    /// The receiver fail-stops: the master evicts it, the sender closes
    /// the channel and re-owns in-flight units, and the master re-scatters
    /// whatever no survivor reports owning (bounded budget).
    Evict,
}

/// Full [`TransferModel`] state: both channel endpoints, both unit sets
/// (with apply counts), and the network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TransferState {
    /// Sender endpoint of the channel (the slave shedding work).
    pub sender: TransferWindow<Vec<usize>>,
    /// Receiver endpoint (the slave gaining work).
    pub receiver: TransferWindow<Vec<usize>>,
    pub sender_holding: BTreeMap<usize, u32>,
    pub receiver_holding: BTreeMap<usize, u32>,
    pub wire: Vec<TWire>,
    pub offered: usize,
    pub receiver_evicted: bool,
    pub drops_used: u32,
    pub dups_used: u32,
}

/// The abstracted slave↔slave work-migration system around
/// [`TransferWindow`] — the runtime's MoveOrder execution path, minus
/// everything that does not affect unit safety.
///
/// The sender starts holding every unit; the balancer orders `moves`
/// (disjoint unit batches) shed to the receiver; the network may drop or
/// duplicate a bounded number of messages; and the receiver may fail-stop
/// once ([`TStep::Evict`]), upon which the sender re-owns the in-flight
/// units and the master re-scatters exactly the units no survivor reports.
/// `dedup_transfers = false` is the deliberately broken variant that
/// applies transfer payloads without sequence-number dedup — the checker
/// must find the duplicate-unit counterexample (`dlb-analyze` maps it to
/// E104).
#[derive(Clone, Debug)]
pub struct TransferModel {
    /// Unit ids the sender starts with (the receiver starts empty).
    pub units: Vec<usize>,
    /// Unit batches shed to the receiver, in order (disjoint subsets of
    /// `units`).
    pub moves: Vec<Vec<usize>>,
    pub max_drops: u32,
    pub max_dups: u32,
    /// Whether the receiver may fail-stop mid-protocol.
    pub allow_evict: bool,
    /// True = the real protocol (receiver dedups by sequence number).
    pub dedup_transfers: bool,
}

impl TransferModel {
    /// The standard checked configuration: four units, two move batches,
    /// one drop and one duplication budget, eviction enabled.
    pub fn standard() -> TransferModel {
        TransferModel {
            units: vec![0, 1, 2, 3],
            moves: vec![vec![0, 1], vec![2]],
            max_drops: 1,
            max_dups: 1,
            allow_evict: true,
            dedup_transfers: true,
        }
    }

    /// The broken variant: transfer payloads applied without dedup.
    pub fn broken_no_dedup() -> TransferModel {
        TransferModel {
            dedup_transfers: false,
            ..TransferModel::standard()
        }
    }

    fn deliver(&self, n: &mut TransferState, msg: TWire) {
        match msg {
            TWire::Transfer { seq, units } => {
                if n.receiver_evicted {
                    // Fail-stop: deliveries to a crashed node vanish.
                    return;
                }
                let fresh = if self.dedup_transfers {
                    n.receiver.accept(seq)
                } else {
                    // Broken variant: acknowledge the sequence but apply
                    // unconditionally.
                    n.receiver.accept(seq);
                    true
                };
                if fresh {
                    for u in units {
                        *n.receiver_holding.entry(u).or_insert(0) += 1;
                    }
                }
                let ack = TWire::Ack {
                    watermark: n.receiver.recv_watermark(),
                };
                insert_unique_t(&mut n.wire, ack);
            }
            TWire::Ack { watermark } => {
                n.sender.ack(watermark);
            }
        }
    }

    fn quiescent(&self, s: &TransferState) -> bool {
        s.offered == self.moves.len()
            && s.wire.is_empty()
            && (s.receiver_evicted || s.sender.fully_acked())
    }
}

fn insert_unique_t(wire: &mut Vec<TWire>, msg: TWire) {
    if let Err(at) = wire.binary_search(&msg) {
        wire.insert(at, msg);
    }
}

impl TransitionSystem for TransferModel {
    type State = TransferState;
    type Action = TStep;

    fn initial(&self) -> TransferState {
        TransferState {
            sender: TransferWindow::new(),
            receiver: TransferWindow::new(),
            sender_holding: self.units.iter().map(|&u| (u, 1)).collect(),
            receiver_holding: BTreeMap::new(),
            wire: Vec::new(),
            offered: 0,
            receiver_evicted: false,
            drops_used: 0,
            dups_used: 0,
        }
    }

    fn actions(&self, s: &TransferState) -> Vec<TStep> {
        let mut out = Vec::new();
        if s.offered < self.moves.len() {
            out.push(TStep::Offer(s.offered));
        }
        for i in 0..s.wire.len() {
            out.push(TStep::Deliver(i));
            if s.drops_used < self.max_drops {
                out.push(TStep::Drop(i));
            }
            if s.dups_used < self.max_dups {
                out.push(TStep::DeliverCopy(i));
            }
        }
        if !s.receiver_evicted {
            let resendable = s.sender.unacked().any(|(seq, units)| {
                !s.wire.contains(&TWire::Transfer {
                    seq: *seq,
                    units: units.clone(),
                })
            });
            if resendable {
                out.push(TStep::Resend);
            }
            let hb = TWire::Ack {
                watermark: s.receiver.recv_watermark(),
            };
            // Re-ack while it carries news, as [`Step::Heartbeat`] does —
            // quiescent states stay terminal.
            if s.receiver.recv_watermark() > s.sender.acked_watermark() && !s.wire.contains(&hb) {
                out.push(TStep::Heartbeat);
            }
            if self.allow_evict {
                out.push(TStep::Evict);
            }
        }
        out
    }

    fn apply(&self, s: &TransferState, a: &TStep) -> TransferState {
        let mut n = s.clone();
        match a {
            TStep::Offer(m) => {
                if n.receiver_evicted {
                    // Offer to an evicted slave: refused locally, the
                    // sender keeps the units.
                    n.offered += 1;
                } else {
                    let units = self.moves[*m].clone();
                    for u in &units {
                        let gone = n.sender_holding.remove(u).is_some();
                        debug_assert!(gone, "move batches must be disjoint owned units");
                    }
                    n.sender.send_with(|_| units.clone());
                    let msg = TWire::Transfer {
                        seq: n.sender.seq_sent(),
                        units,
                    };
                    insert_unique_t(&mut n.wire, msg);
                    n.offered += 1;
                }
            }
            TStep::Deliver(i) => {
                let msg = n.wire.remove(*i);
                self.deliver(&mut n, msg);
            }
            TStep::DeliverCopy(i) => {
                let msg = n.wire[*i].clone();
                n.dups_used += 1;
                self.deliver(&mut n, msg);
            }
            TStep::Drop(i) => {
                n.wire.remove(*i);
                n.drops_used += 1;
            }
            TStep::Resend => {
                let msgs: Vec<TWire> = n
                    .sender
                    .unacked()
                    .map(|(seq, units)| TWire::Transfer {
                        seq: *seq,
                        units: units.clone(),
                    })
                    .filter(|m| !n.wire.contains(m))
                    .collect();
                for m in msgs {
                    insert_unique_t(&mut n.wire, m);
                }
            }
            TStep::Heartbeat => {
                let hb = TWire::Ack {
                    watermark: n.receiver.recv_watermark(),
                };
                insert_unique_t(&mut n.wire, hb);
            }
            TStep::Evict => {
                n.receiver_evicted = true;
                // The survivor re-owns everything still unacknowledged on
                // its channel to the dead peer...
                for units in n.sender.close() {
                    for u in units {
                        *n.sender_holding.entry(u).or_insert(0) += 1;
                    }
                }
                // ...then the master re-scatters exactly the units no
                // survivor reports owning (the OwnReport fence): with one
                // survivor, that is everything the sender does not hold.
                let missing: Vec<usize> = self
                    .units
                    .iter()
                    .copied()
                    .filter(|u| !n.sender_holding.contains_key(u))
                    .collect();
                for u in missing {
                    *n.sender_holding.entry(u).or_insert(0) += 1;
                }
            }
        }
        n
    }

    fn violation(&self, s: &TransferState) -> Option<String> {
        for (who, holding) in [
            ("sender", &s.sender_holding),
            ("receiver", &s.receiver_holding),
        ] {
            for (unit, applies) in holding.iter() {
                if *applies > 1 {
                    return Some(format!(
                        "duplicate work unit {unit} applied {applies} times on {who}"
                    ));
                }
            }
        }
        if !s.receiver_evicted {
            for unit in s.sender_holding.keys() {
                if s.receiver_holding.contains_key(unit) {
                    return Some(format!("duplicate work unit {unit} held by both endpoints"));
                }
            }
        }
        if self.quiescent(s) {
            let held = s.sender_holding.len()
                + if s.receiver_evicted {
                    0
                } else {
                    s.receiver_holding.len()
                };
            if held != self.units.len() {
                return Some(format!(
                    "lost work unit: quiescent with {held} of {} units owned",
                    self.units.len()
                ));
            }
        }
        None
    }

    fn is_accepting(&self, s: &TransferState) -> bool {
        self.quiescent(s)
    }
}

// ---------------------------------------------------------------------------
// Deputy election (master failover)
// ---------------------------------------------------------------------------

/// A message in flight in the [`ElectionModel`]'s network. Every variant
/// carries its recipient so delivery is well-defined under reordering.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EWire {
    /// Candidate → peer deputy: stand for `term` with replica freshness
    /// `fresh` (the runtime's [`crate::msg::Msg::Candidacy`]).
    Candidacy {
        to: usize,
        term: u64,
        candidate: usize,
        fresh: u64,
    },
    /// Voter → candidate: vote granted in `term`
    /// ([`crate::msg::Msg::Vote`]).
    Vote { to: usize, term: u64, voter: usize },
    /// Winner → peer deputy: takeover announcement
    /// ([`crate::msg::Msg::Promoted`]).
    Promoted { to: usize, term: u64, winner: usize },
}

/// One enabled step of the [`ElectionModel`]. Same idempotent-wire
/// reduction as [`Step`]: re-sending an identical message merges with the
/// in-flight copy, duplicates apply without consuming.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EStep {
    /// Deputy `d`'s master-silence timer fires: it stands in a fresh term
    /// (re-standing abandons any stalled candidacy, as the runtime's
    /// rate-limited retry does). Bounded by the stand budget.
    Stand(usize),
    /// Deliver the `i`-th in-flight message (and consume it).
    Deliver(usize),
    /// Deliver a duplicate of the `i`-th message (bounded budget).
    DeliverCopy(usize),
    /// Drop the `i`-th message (bounded budget).
    Drop(usize),
    /// Deputy `d`'s candidacy reached quorum: it promotes itself and
    /// announces the takeover.
    Win(usize),
}

/// Per-deputy election state in the model — the pure subset of
/// [`crate::session::replica::DeputyState`] that decides votes.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct DeputyModel {
    pub term_seen: u64,
    /// Highest term voted in (including self-votes when standing). The
    /// broken variant never consults it — the split-brain bug.
    pub voted_in: u64,
    /// Term of the live candidacy (0 = not standing).
    pub standing: u64,
    /// Voters collected for the live candidacy (includes self).
    pub votes: BTreeSet<usize>,
    /// This deputy won and became master; it takes no further part.
    pub promoted_self: bool,
}

/// Full [`ElectionModel`] state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ElectionState {
    pub deps: Vec<DeputyModel>,
    pub wire: Vec<EWire>,
    /// Every promotion announced so far, as `(term, winner)` — the
    /// split-brain invariant reads this.
    pub promoted: Vec<(u64, usize)>,
    /// Set when a winner's electing quorum contained a voter with a
    /// strictly fresher replica: `(term, winner, fresher_voter)`.
    pub stale_win: Option<(u64, usize, usize)>,
    pub stands_used: u32,
    pub drops_used: u32,
    pub dups_used: u32,
}

/// The abstracted deputy-set/network system around the election rules of
/// [`crate::session::replica::DeputyState`].
///
/// Every deputy suspects the master (it is dead in this model) and may
/// stand; the network may drop or duplicate a bounded number of messages;
/// votes follow the production rules: one vote per term, never for a
/// candidate whose replica is staler than the voter's, majority of the
/// *full* deputy set to win. `one_vote_per_term = false` is the
/// deliberately broken variant whose voters forget which terms they voted
/// in — the model checker must find the two-winners-one-term counterexample
/// (`dlb-analyze` maps it to E107). `fresh_guard = false` drops the
/// newest-replica rule instead, electing a quorum that out-freshes its
/// winner (E108).
#[derive(Clone, Debug)]
pub struct ElectionModel {
    /// Size of the full deputy set (quorum denominator).
    pub deputies: usize,
    /// Per-deputy replica freshness (the election's comparison scale).
    pub fresh: Vec<u64>,
    /// Total stands allowed across all deputies (bounds the term space).
    pub max_stands: u32,
    pub max_drops: u32,
    pub max_dups: u32,
    /// True = the real protocol (a voter spends its vote for the term).
    pub one_vote_per_term: bool,
    /// True = the real protocol (no vote for a staler candidate).
    pub fresh_guard: bool,
}

impl ElectionModel {
    /// The standard checked configuration: three deputies with distinct
    /// replica freshness, three stands, one drop and one duplication
    /// budget.
    pub fn standard() -> ElectionModel {
        ElectionModel {
            deputies: 3,
            fresh: vec![2, 1, 0],
            max_stands: 3,
            max_drops: 1,
            max_dups: 1,
            one_vote_per_term: true,
            fresh_guard: true,
        }
    }

    /// The broken variant: voters forget which terms they voted in, so one
    /// term can promote two masters (split brain).
    pub fn broken_split_brain() -> ElectionModel {
        ElectionModel {
            one_vote_per_term: false,
            ..ElectionModel::standard()
        }
    }

    /// The broken variant that ignores replica freshness when voting: a
    /// stale deputy can win while a quorum member holds newer state.
    pub fn broken_fresh_blind() -> ElectionModel {
        ElectionModel {
            fresh_guard: false,
            ..ElectionModel::standard()
        }
    }

    fn quorum(&self) -> usize {
        self.deputies / 2 + 1
    }

    fn deliver(&self, n: &mut ElectionState, msg: EWire) {
        match msg {
            EWire::Candidacy {
                to,
                term,
                candidate,
                fresh,
            } => {
                let dep = &mut n.deps[to];
                dep.term_seen = dep.term_seen.max(term);
                if dep.promoted_self {
                    return; // Now a master; election traffic is inert.
                }
                let spent = self.one_vote_per_term && term <= dep.voted_in;
                let staler = self.fresh_guard && fresh < self.fresh[to];
                if spent || staler {
                    return;
                }
                dep.voted_in = dep.voted_in.max(term);
                insert_unique_e(
                    &mut n.wire,
                    EWire::Vote {
                        to: candidate,
                        term,
                        voter: to,
                    },
                );
            }
            EWire::Vote { to, term, voter } => {
                let dep = &mut n.deps[to];
                dep.term_seen = dep.term_seen.max(term);
                // Counted only while standing in exactly that term (late
                // votes for abandoned candidacies are inert).
                if !dep.promoted_self && dep.standing == term {
                    dep.votes.insert(voter);
                }
            }
            EWire::Promoted {
                to,
                term,
                winner: _,
            } => {
                let dep = &mut n.deps[to];
                dep.term_seen = dep.term_seen.max(term);
                // Stand down any candidacy the promotion outranks.
                if dep.standing != 0 && dep.standing <= term {
                    dep.standing = 0;
                    dep.votes.clear();
                }
            }
        }
    }

    fn quiescent(&self, s: &ElectionState) -> bool {
        s.wire.is_empty()
    }
}

fn insert_unique_e(wire: &mut Vec<EWire>, msg: EWire) {
    if let Err(at) = wire.binary_search(&msg) {
        wire.insert(at, msg);
    }
}

impl TransitionSystem for ElectionModel {
    type State = ElectionState;
    type Action = EStep;

    fn initial(&self) -> ElectionState {
        ElectionState {
            deps: vec![DeputyModel::default(); self.deputies],
            wire: Vec::new(),
            promoted: Vec::new(),
            stale_win: None,
            stands_used: 0,
            drops_used: 0,
            dups_used: 0,
        }
    }

    fn actions(&self, s: &ElectionState) -> Vec<EStep> {
        let mut out = Vec::new();
        for d in 0..self.deputies {
            if s.stands_used < self.max_stands && !s.deps[d].promoted_self {
                out.push(EStep::Stand(d));
            }
            if !s.deps[d].promoted_self
                && s.deps[d].standing != 0
                && s.deps[d].votes.len() >= self.quorum()
            {
                out.push(EStep::Win(d));
            }
        }
        for i in 0..s.wire.len() {
            out.push(EStep::Deliver(i));
            if s.drops_used < self.max_drops {
                out.push(EStep::Drop(i));
            }
            if s.dups_used < self.max_dups {
                out.push(EStep::DeliverCopy(i));
            }
        }
        out
    }

    fn apply(&self, s: &ElectionState, a: &EStep) -> ElectionState {
        let mut n = s.clone();
        match a {
            EStep::Stand(d) => {
                let term = n.deps[*d].term_seen + 1;
                let dep = &mut n.deps[*d];
                dep.term_seen = term;
                dep.voted_in = term; // self-vote spends the term
                dep.standing = term;
                dep.votes = BTreeSet::from([*d]);
                n.stands_used += 1;
                for to in (0..self.deputies).filter(|&to| to != *d) {
                    insert_unique_e(
                        &mut n.wire,
                        EWire::Candidacy {
                            to,
                            term,
                            candidate: *d,
                            fresh: self.fresh[*d],
                        },
                    );
                }
            }
            EStep::Deliver(i) => {
                let msg = n.wire.remove(*i);
                self.deliver(&mut n, msg);
            }
            EStep::DeliverCopy(i) => {
                let msg = n.wire[*i].clone();
                n.dups_used += 1;
                self.deliver(&mut n, msg);
            }
            EStep::Drop(i) => {
                n.wire.remove(*i);
                n.drops_used += 1;
            }
            EStep::Win(d) => {
                let term = n.deps[*d].standing;
                if let Some(fresher) = n.deps[*d]
                    .votes
                    .iter()
                    .find(|&&v| self.fresh[v] > self.fresh[*d])
                {
                    n.stale_win = Some((term, *d, *fresher));
                }
                n.promoted.push((term, *d));
                n.promoted.sort_unstable();
                let dep = &mut n.deps[*d];
                dep.promoted_self = true;
                dep.standing = 0;
                dep.votes.clear();
                for to in (0..self.deputies).filter(|&to| to != *d) {
                    insert_unique_e(
                        &mut n.wire,
                        EWire::Promoted {
                            to,
                            term,
                            winner: *d,
                        },
                    );
                }
            }
        }
        n
    }

    fn violation(&self, s: &ElectionState) -> Option<String> {
        for pair in s.promoted.windows(2) {
            if pair[0].0 == pair[1].0 && pair[0].1 != pair[1].1 {
                return Some(format!(
                    "split brain: deputies {} and {} both promoted in term {}",
                    pair[0].1, pair[1].1, pair[0].0
                ));
            }
        }
        if let Some((term, winner, voter)) = s.stale_win {
            return Some(format!(
                "stale replica won term {term}: deputy {winner} (fresh {}) elected by \
                 fresher voter {voter} (fresh {})",
                self.fresh[winner], self.fresh[voter]
            ));
        }
        None
    }

    fn is_accepting(&self, s: &ElectionState) -> bool {
        // Bounded model: liveness (someone eventually wins) is out of
        // scope; any drained-wire terminal state is a legitimate end.
        self.quiescent(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_quiesces_on_the_happy_path() {
        let m = RestoreModel::standard();
        let mut s = m.initial();
        // Scatter both waves, then deliver everything FIFO until quiescent.
        while !m.is_accepting(&s) {
            let acts = m.actions(&s);
            let a = acts
                .iter()
                .find(|a| matches!(a, Step::Scatter(_) | Step::Deliver(_)))
                .expect("happy path always has a scatter or deliver");
            s = m.apply(&s, a);
            assert_eq!(m.violation(&s), None, "happy path must stay clean");
        }
        let held: usize = s.slaves.iter().map(|sl| sl.holding.len()).sum();
        assert_eq!(held, 4);
    }

    #[test]
    fn broken_variant_double_applies_on_duplicate_delivery() {
        let m = RestoreModel::broken_no_dedup();
        let mut s = m.initial();
        s = m.apply(&s, &Step::Scatter(0));
        // Deliver a duplicate of the first restore, then the original.
        s = m.apply(&s, &Step::DeliverCopy(0));
        assert_eq!(m.violation(&s), None);
        s = m.apply(&s, &Step::Deliver(0));
        let v = m.violation(&s).expect("duplicate apply must be detected");
        assert!(v.contains("duplicate apply"), "{v}");
    }

    #[test]
    fn dedup_variant_ignores_duplicate_delivery() {
        let m = RestoreModel::standard();
        let mut s = m.initial();
        s = m.apply(&s, &Step::Scatter(0));
        s = m.apply(&s, &Step::DeliverCopy(0));
        s = m.apply(&s, &Step::Deliver(0));
        assert_eq!(m.violation(&s), None, "dedup must absorb the duplicate");
    }

    #[test]
    fn transfer_model_quiesces_on_the_happy_path() {
        let m = TransferModel::standard();
        let mut s = m.initial();
        while !m.is_accepting(&s) {
            let acts = m.actions(&s);
            let a = acts
                .iter()
                .find(|a| matches!(a, TStep::Offer(_) | TStep::Deliver(_)))
                .expect("happy path always has an offer or deliver");
            s = m.apply(&s, a);
            assert_eq!(m.violation(&s), None, "happy path must stay clean");
        }
        assert_eq!(s.sender_holding.len(), 1, "unit 3 stays at the sender");
        assert_eq!(s.receiver_holding.len(), 3);
    }

    #[test]
    fn transfer_model_eviction_reowns_in_flight_units() {
        let m = TransferModel::standard();
        let mut s = m.initial();
        s = m.apply(&s, &TStep::Offer(0));
        // The receiver crashes with the transfer still on the wire.
        s = m.apply(&s, &TStep::Evict);
        assert_eq!(m.violation(&s), None);
        assert_eq!(
            s.sender_holding.len(),
            4,
            "sender re-owns the in-flight units"
        );
        // Offer 1 is refused locally; the stale transfer on the wire is
        // discarded at the dead node. No unit is lost or duplicated.
        s = m.apply(&s, &TStep::Offer(1));
        s = m.apply(&s, &TStep::Deliver(0));
        assert_eq!(m.violation(&s), None);
        assert!(m.is_accepting(&s));
    }

    #[test]
    fn broken_transfer_variant_double_applies_on_duplicate_delivery() {
        let m = TransferModel::broken_no_dedup();
        let mut s = m.initial();
        s = m.apply(&s, &TStep::Offer(0));
        s = m.apply(&s, &TStep::DeliverCopy(0));
        assert_eq!(m.violation(&s), None);
        s = m.apply(&s, &TStep::Deliver(0));
        let v = m.violation(&s).expect("duplicate apply must be detected");
        assert!(v.contains("duplicate work unit"), "{v}");
    }

    #[test]
    fn election_single_candidate_wins_cleanly() {
        let m = ElectionModel::standard();
        let mut s = m.initial();
        s = m.apply(&s, &EStep::Stand(0)); // freshest deputy stands first
        while let Some(i) = s
            .wire
            .iter()
            .position(|w| matches!(w, EWire::Candidacy { .. }))
        {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        while let Some(i) = s.wire.iter().position(|w| matches!(w, EWire::Vote { .. })) {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        assert!(m.actions(&s).contains(&EStep::Win(0)), "quorum reached");
        s = m.apply(&s, &EStep::Win(0));
        assert_eq!(m.violation(&s), None);
        assert_eq!(s.promoted, vec![(1, 0)]);
    }

    #[test]
    fn election_one_vote_per_term_blocks_the_second_winner() {
        let m = ElectionModel::standard();
        let mut s = m.initial();
        // Deputies 0 and 1 both stand in term 1 (neither has heard the
        // other), and deputy 2 sees both candidacies.
        s = m.apply(&s, &EStep::Stand(0));
        s = m.apply(&s, &EStep::Stand(1));
        let to2: Vec<usize> = (0..s.wire.len())
            .filter(|&i| matches!(s.wire[i], EWire::Candidacy { to: 2, .. }))
            .collect();
        assert_eq!(to2.len(), 2);
        // Deliver both candidacies to deputy 2 (highest index first so the
        // removal indices stay valid): only ONE vote leaves.
        s = m.apply(&s, &EStep::Deliver(to2[1]));
        s = m.apply(&s, &EStep::Deliver(to2[0]));
        let votes = s
            .wire
            .iter()
            .filter(|w| matches!(w, EWire::Vote { voter: 2, .. }))
            .count();
        assert_eq!(votes, 1, "term 1 is spent after the first grant");
    }

    #[test]
    fn broken_election_variant_promotes_two_masters_in_one_term() {
        let m = ElectionModel::broken_split_brain();
        let mut s = m.initial();
        s = m.apply(&s, &EStep::Stand(0));
        s = m.apply(&s, &EStep::Stand(1));
        // The forgetful voter (deputy 2) grants term 1 twice.
        while let Some(i) = s
            .wire
            .iter()
            .position(|w| matches!(w, EWire::Candidacy { to: 2, .. }))
        {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        while let Some(i) = s.wire.iter().position(|w| matches!(w, EWire::Vote { .. })) {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        s = m.apply(&s, &EStep::Win(0));
        assert_eq!(m.violation(&s), None, "one winner is still legal");
        s = m.apply(&s, &EStep::Win(1));
        let v = m.violation(&s).expect("split brain must be detected");
        assert!(v.contains("split brain"), "{v}");
    }

    #[test]
    fn fresh_blind_variant_elects_a_stale_winner() {
        let m = ElectionModel::broken_fresh_blind();
        let mut s = m.initial();
        // The stalest deputy stands; without the freshness guard the
        // freshest deputy still votes for it.
        s = m.apply(&s, &EStep::Stand(2));
        while let Some(i) = s
            .wire
            .iter()
            .position(|w| matches!(w, EWire::Candidacy { .. }))
        {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        while let Some(i) = s.wire.iter().position(|w| matches!(w, EWire::Vote { .. })) {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        s = m.apply(&s, &EStep::Win(2));
        let v = m.violation(&s).expect("stale winner must be detected");
        assert!(v.contains("stale replica"), "{v}");
    }

    #[test]
    fn election_vote_rule_matches_production_deputy_state() {
        use crate::error::FaultToleranceConfig;
        use crate::session::replica::DeputyState;
        use dlb_sim::SimTime;

        // The model's grant/refuse decision must agree with
        // `DeputyState::on_candidacy` case by case. Model deputy 0 holds
        // freshness 2 (ElectionModel::standard); give the production deputy
        // the same effective freshness via its replica watermark.
        let tol = FaultToleranceConfig::default();
        let mut prod = DeputyState::new(0, 3, 4, false, SimTime::ZERO, &tol);
        let mut r = prod.replica.clone();
        r.invocation = 2;
        prod.absorb(r, SimTime::ZERO);

        let m = ElectionModel::standard();
        let cases = [
            (1u64, 1usize, 1u64, false), // staler candidate: refuse
            (1, 1, 2, true),             // tie: grant
            (1, 2, 9, false),            // term spent: refuse
            (2, 2, 2, true),             // new term: grant
        ];
        let mut s = m.initial();
        for (term, candidate, fresh, expect_grant) in cases {
            let granted = !prod.on_candidacy(term, candidate, fresh).is_empty();
            assert_eq!(granted, expect_grant, "production at term {term}");
            let before = s
                .wire
                .iter()
                .filter(|w| matches!(w, EWire::Vote { .. }))
                .count();
            insert_unique_e(
                &mut s.wire,
                EWire::Candidacy {
                    to: 0,
                    term,
                    candidate,
                    fresh,
                },
            );
            let at = s
                .wire
                .iter()
                .position(|w| matches!(w, EWire::Candidacy { to: 0, .. }))
                .unwrap();
            s = m.apply(&s, &EStep::Deliver(at));
            let after = s
                .wire
                .iter()
                .filter(|w| matches!(w, EWire::Vote { .. }))
                .count();
            assert_eq!(after > before, expect_grant, "model at term {term}");
        }
    }
}
