//! Model-checkable abstractions of the session kernel's reliable-delivery
//! and coordination sub-protocols: master→survivor restore scatter
//! ([`RestoreModel`]), slave↔slave work migration ([`TransferModel`]), and
//! the deputy election that replaces a crashed master ([`ElectionModel`]).
//!
//! The first two models run the *same* [`SenderWindow`] / [`AckTracker`] /
//! [`TransferWindow`] rules the runtime uses (re-exported from
//! [`crate::protocol`]), wrapped in an abstracted master/slaves/network
//! system that `dlb-analyze` exhaustively explores for lost work, duplicate
//! application, and deadlock. The election model mirrors the pure voting
//! rules of [`crate::session::replica::DeputyState`] (one vote per term,
//! the newest-replica freshness guard, majority quorum over the full deputy
//! set) under a dropping/duplicating network, and checks that no term ever
//! promotes two masters. Each model also ships a deliberately broken
//! variant (acknowledge without dedup; a voter that forgets which terms it
//! voted in) whose counterexample the checker must find — the
//! E101/E104/E107 fixtures in `dlb-analyze`.

//! ## Scaling to runtime widths
//!
//! All three models implement [`Symmetric`] and [`Ample`] so
//! [`dlb_sim::explore_reduced`] can check them at the widths the runtime
//! actually runs (16 survivors / deputies) instead of toy configurations:
//! slaves with identical roles are canonicalized into one representative
//! per permutation orbit, and when an acknowledgement (or vote) is in
//! flight, the wire actions of every *other* message are postponed —
//! acknowledgement processing only max-advances a sender watermark, so the
//! postponed interleavings commute with it. The `wide(n)` constructors
//! build the fully-symmetric n-wide instances the `lint-wide` CI job
//! checks exhaustively.

use crate::protocol::{AckTracker, SenderWindow, TransferWindow};
use crate::recovery::redistribute;
use dlb_sim::{Ample, Symmetric, TransitionSystem};
use std::collections::{BTreeMap, BTreeSet};

/// A message in flight in the [`RestoreModel`]'s network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Wire {
    /// Master → survivor: adopt these units (sequence-numbered).
    Restore {
        to: usize,
        seq: u64,
        units: Vec<usize>,
    },
    /// Survivor → master: contiguous applied watermark (carried by
    /// `InvocationDone::restore_seq` in the real runtime).
    Ack { from: usize, watermark: u64 },
}

/// One enabled step of the model.
///
/// The wire is a *set* of distinct in-flight messages (idempotent
/// network): re-sending an identical message merges with the copy already
/// in flight, and duplicate delivery is modeled by [`Step::DeliverCopy`],
/// which applies a message without consuming it. This is the standard
/// sound reduction for drop/duplicate networks — it preserves every
/// receiver-visible delivery sequence while keeping the state space small
/// enough to exhaust.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Master scatters wave `w` of dead units over the survivors.
    Scatter(usize),
    /// Deliver the `i`-th in-flight message (and consume it).
    Deliver(usize),
    /// The network delivers a duplicate of the `i`-th in-flight message:
    /// effects apply but the original stays in flight (bounded budget).
    DeliverCopy(usize),
    /// The network drops the `i`-th in-flight message (bounded budget).
    Drop(usize),
    /// The master's nudge timer fires for survivor `s`: re-send everything
    /// unacknowledged that is not already in flight.
    Resend(usize),
    /// Survivor `s` heartbeats its current watermark (`InvocationDone`
    /// re-send in the real runtime), while the ack carries news.
    Heartbeat(usize),
}

/// Per-survivor receiver state in the model.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlaveModel {
    pub tracker: AckTracker,
    /// Units held, with how many times each was *applied* — a count above
    /// one is a duplicate application (double compute / double insert).
    pub holding: BTreeMap<usize, u32>,
}

/// Full model state: master windows, survivor trackers, and the network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RestoreState {
    pub windows: Vec<SenderWindow<Vec<usize>>>,
    pub slaves: Vec<SlaveModel>,
    /// In flight: a sorted set of distinct messages (idempotent network).
    pub wire: Vec<Wire>,
    pub scattered_waves: usize,
    pub drops_used: u32,
    pub dups_used: u32,
}

/// The abstracted master/slaves/network system around the restore protocol.
///
/// The master scatters `waves` of dead-slave units over `survivors`
/// (round-robin, exactly as [`crate::recovery::redistribute`] does), the
/// network may drop or duplicate a bounded number of messages, and both
/// sides run the [`SenderWindow`]/[`AckTracker`] rules. `dedup_acks = false`
/// switches the receiver to a deliberately broken variant that acknowledges
/// without deduplicating — the model checker must find the duplicate-apply
/// counterexample (and does; see `dlb-analyze`).
#[derive(Clone, Debug)]
pub struct RestoreModel {
    pub survivors: usize,
    /// Unit ids scattered per wave (each wave is one eviction's re-scatter).
    pub waves: Vec<Vec<usize>>,
    pub max_drops: u32,
    pub max_dups: u32,
    /// True = the real protocol (receiver dedups by sequence number).
    pub dedup_acks: bool,
}

impl RestoreModel {
    /// The standard checked configuration: two survivors, one eviction wave
    /// of three units followed by a second single-unit wave, one drop and
    /// one duplication budget.
    pub fn standard() -> RestoreModel {
        RestoreModel {
            survivors: 2,
            waves: vec![vec![0, 1, 2], vec![3]],
            max_drops: 1,
            max_dups: 1,
            dedup_acks: true,
        }
    }

    /// The broken variant: acknowledgements without receiver dedup.
    pub fn broken_no_dedup() -> RestoreModel {
        RestoreModel {
            dedup_acks: false,
            ..RestoreModel::standard()
        }
    }

    /// A runtime-width instance: `n` survivors, one eviction wave of `n`
    /// units (one per survivor — fully symmetric), the standard fault
    /// budget. This is what the `lint-wide` CI job checks at n = 16.
    pub fn wide(n: usize) -> RestoreModel {
        RestoreModel {
            survivors: n,
            waves: vec![(0..n).collect()],
            max_drops: 1,
            max_dups: 1,
            dedup_acks: true,
        }
    }

    /// Receiver/sender effects of one message delivery (shared by
    /// [`Step::Deliver`] and [`Step::DeliverCopy`]).
    fn deliver(&self, n: &mut RestoreState, msg: Wire) {
        match msg {
            Wire::Restore { to, seq, units } => {
                let slave = &mut n.slaves[to];
                let fresh = if self.dedup_acks {
                    slave.tracker.fresh(seq)
                } else {
                    // Broken variant: acknowledge the sequence but apply
                    // unconditionally.
                    slave.tracker.fresh(seq);
                    true
                };
                if fresh {
                    for u in units {
                        *slave.holding.entry(u).or_insert(0) += 1;
                    }
                }
                let ack = Wire::Ack {
                    from: to,
                    watermark: n.slaves[to].tracker.watermark(),
                };
                insert_unique(&mut n.wire, ack);
            }
            Wire::Ack { from, watermark } => {
                n.windows[from].ack(watermark);
            }
        }
    }

    fn all_units(&self) -> usize {
        self.waves.iter().map(|w| w.len()).sum()
    }

    fn quiescent(&self, s: &RestoreState) -> bool {
        s.scattered_waves == self.waves.len()
            && s.wire.is_empty()
            && s.windows.iter().all(|w| w.fully_acked())
    }
}

fn insert_unique(wire: &mut Vec<Wire>, msg: Wire) {
    if let Err(at) = wire.binary_search(&msg) {
        wire.insert(at, msg);
    }
}

impl TransitionSystem for RestoreModel {
    type State = RestoreState;
    type Action = Step;

    fn initial(&self) -> RestoreState {
        RestoreState {
            windows: vec![SenderWindow::new(); self.survivors],
            slaves: vec![SlaveModel::default(); self.survivors],
            wire: Vec::new(),
            scattered_waves: 0,
            drops_used: 0,
            dups_used: 0,
        }
    }

    fn actions(&self, s: &RestoreState) -> Vec<Step> {
        let mut out = Vec::new();
        if s.scattered_waves < self.waves.len() {
            out.push(Step::Scatter(s.scattered_waves));
        }
        for i in 0..s.wire.len() {
            out.push(Step::Deliver(i));
            if s.drops_used < self.max_drops {
                out.push(Step::Drop(i));
            }
            if s.dups_used < self.max_dups {
                out.push(Step::DeliverCopy(i));
            }
        }
        for t in 0..self.survivors {
            // Nudge: at most one copy of a pending message in flight at a
            // time (the timer refires, so this loses no behaviours — it
            // only bounds the wire occupancy).
            let resendable = s.windows[t].unacked().any(|(seq, units)| {
                !s.wire.contains(&Wire::Restore {
                    to: t,
                    seq: *seq,
                    units: units.clone(),
                })
            });
            if resendable {
                out.push(Step::Resend(t));
            }
            let hb = Wire::Ack {
                from: t,
                watermark: s.slaves[t].tracker.watermark(),
            };
            // Heartbeat while it carries news (the ack was lost): in the
            // runtime a slave re-sends `InvocationDone` until released, and
            // stops once settled — so the model stops at quiescence too,
            // which keeps quiescent states terminal for deadlock detection.
            if s.slaves[t].tracker.watermark() > s.windows[t].watermark() && !s.wire.contains(&hb) {
                out.push(Step::Heartbeat(t));
            }
        }
        out
    }

    fn apply(&self, s: &RestoreState, a: &Step) -> RestoreState {
        let mut n = s.clone();
        match a {
            Step::Scatter(w) => {
                let survivors: Vec<usize> = (0..self.survivors).collect();
                for (t, units) in redistribute(&self.waves[*w], &survivors) {
                    n.windows[t].send_with(|_| units.clone());
                    let msg = Wire::Restore {
                        to: t,
                        seq: n.windows[t].seq_sent(),
                        units,
                    };
                    insert_unique(&mut n.wire, msg);
                }
                n.scattered_waves += 1;
            }
            Step::Deliver(i) => {
                let msg = n.wire.remove(*i);
                self.deliver(&mut n, msg);
            }
            Step::DeliverCopy(i) => {
                let msg = n.wire[*i].clone();
                n.dups_used += 1;
                self.deliver(&mut n, msg);
            }
            Step::Drop(i) => {
                n.wire.remove(*i);
                n.drops_used += 1;
            }
            Step::Resend(t) => {
                let msgs: Vec<Wire> = n.windows[*t]
                    .unacked()
                    .map(|(seq, units)| Wire::Restore {
                        to: *t,
                        seq: *seq,
                        units: units.clone(),
                    })
                    .filter(|m| !n.wire.contains(m))
                    .collect();
                for m in msgs {
                    insert_unique(&mut n.wire, m);
                }
            }
            Step::Heartbeat(t) => {
                let hb = Wire::Ack {
                    from: *t,
                    watermark: n.slaves[*t].tracker.watermark(),
                };
                insert_unique(&mut n.wire, hb);
            }
        }
        n
    }

    fn violation(&self, s: &RestoreState) -> Option<String> {
        for (idx, slave) in s.slaves.iter().enumerate() {
            for (unit, applies) in &slave.holding {
                if *applies > 1 {
                    return Some(format!(
                        "unit {unit} applied {applies} times on survivor {idx} (duplicate apply)"
                    ));
                }
            }
        }
        // A unit held by two survivors at once is also a duplicate.
        let mut owners: BTreeMap<usize, usize> = BTreeMap::new();
        for (idx, slave) in s.slaves.iter().enumerate() {
            for unit in slave.holding.keys() {
                if let Some(prev) = owners.insert(*unit, idx) {
                    return Some(format!(
                        "unit {unit} held by survivors {prev} and {idx} simultaneously"
                    ));
                }
            }
        }
        if self.quiescent(s) {
            let held: usize = s.slaves.iter().map(|sl| sl.holding.len()).sum();
            if held != self.all_units() {
                return Some(format!(
                    "quiescent with {held} of {} units restored (lost work)",
                    self.all_units()
                ));
            }
        }
        None
    }

    fn is_accepting(&self, s: &RestoreState) -> bool {
        self.quiescent(s)
    }
}

/// A unit's scatter coordinates minus the survivor: `(wave, ordinal within
/// the survivor's batch)`. Invariant under admissible survivor relabeling,
/// so signatures built over coordinates compare survivors fairly.
type UnitCoord = (usize, usize);

/// Permutation-invariant rendering of one survivor's entire view of a
/// [`RestoreState`]: sender window, tracker, holdings, and wire messages,
/// with unit ids replaced by scatter coordinates. Restore state never
/// crosses survivors, so equal signatures mean interchangeable survivors.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct SurvivorSig {
    window: (u64, u64, Vec<(u64, Vec<UnitCoord>)>),
    tracker: AckTracker,
    holding: Vec<(UnitCoord, u32)>,
    wire: Vec<(u8, u64, Vec<UnitCoord>)>,
}

impl RestoreModel {
    /// Batch size survivor `s` receives in wave `w` under the round-robin
    /// redistribution (`waves[w][i]` goes to survivor `i % survivors`).
    fn batch_len(&self, w: usize, s: usize) -> usize {
        let len = self.waves[w].len();
        if len > s {
            (len - s).div_ceil(self.survivors)
        } else {
            0
        }
    }

    /// Per-survivor scatter profile (batch size per wave). Two survivors
    /// are interchangeable exactly when their profiles are equal: the
    /// scatter then sends them same-shaped batches with the same sequence
    /// numbers.
    fn profile(&self, s: usize) -> Vec<usize> {
        (0..self.waves.len())
            .map(|w| self.batch_len(w, s))
            .collect()
    }

    /// Equal-profile survivor classes, members ascending.
    fn classes(&self) -> Vec<Vec<usize>> {
        let mut by_profile: BTreeMap<Vec<usize>, Vec<usize>> = BTreeMap::new();
        for s in 0..self.survivors {
            by_profile.entry(self.profile(s)).or_default().push(s);
        }
        by_profile.into_values().collect()
    }

    /// unit id → (wave, batch ordinal, destination survivor).
    fn unit_coords(&self) -> BTreeMap<usize, (usize, usize, usize)> {
        let mut m = BTreeMap::new();
        for (w, wave) in self.waves.iter().enumerate() {
            for (i, &u) in wave.iter().enumerate() {
                m.insert(u, (w, i / self.survivors, i % self.survivors));
            }
        }
        m
    }

    /// Relabel survivors by `sigma` (`sigma[d]` is `d`'s new index), which
    /// must map every survivor to one with an equal scatter profile. Unit
    /// ids are renamed along — unit `(wave, k)` of `d`'s batch becomes unit
    /// `(wave, k)` of `sigma[d]`'s batch — so the result is exactly the
    /// state the model would have reached with the roles swapped.
    pub fn permute(&self, s: &RestoreState, sigma: &[usize]) -> RestoreState {
        let coords = self.unit_coords();
        let pi = |u: usize| -> usize {
            let (w, k, d) = coords[&u];
            self.waves[w][k * self.survivors + sigma[d]]
        };
        let mut n = s.clone();
        for (d, w) in s.windows.iter().enumerate() {
            let mut wnd = w.clone();
            wnd.map_payloads(|units| units.iter_mut().for_each(|u| *u = pi(*u)));
            n.windows[sigma[d]] = wnd;
        }
        for (d, sl) in s.slaves.iter().enumerate() {
            n.slaves[sigma[d]] = SlaveModel {
                tracker: sl.tracker.clone(),
                holding: sl.holding.iter().map(|(u, c)| (pi(*u), *c)).collect(),
            };
        }
        n.wire = s
            .wire
            .iter()
            .map(|m| match m {
                Wire::Restore { to, seq, units } => Wire::Restore {
                    to: sigma[*to],
                    seq: *seq,
                    units: units.iter().map(|&u| pi(u)).collect(),
                },
                Wire::Ack { from, watermark } => Wire::Ack {
                    from: sigma[*from],
                    watermark: *watermark,
                },
            })
            .collect();
        n.wire.sort();
        n
    }

    fn survivor_sig(
        &self,
        s: &RestoreState,
        d: usize,
        coords: &BTreeMap<usize, (usize, usize, usize)>,
    ) -> SurvivorSig {
        let co = |u: usize| -> UnitCoord {
            let (w, k, _) = coords[&u];
            (w, k)
        };
        let w = &s.windows[d];
        let window = (
            w.seq_sent(),
            w.watermark(),
            w.unacked()
                .map(|(seq, units)| (*seq, units.iter().map(|&u| co(u)).collect()))
                .collect(),
        );
        let holding = s.slaves[d]
            .holding
            .iter()
            .map(|(u, c)| (co(*u), *c))
            .collect();
        let mut wire: Vec<(u8, u64, Vec<UnitCoord>)> = s
            .wire
            .iter()
            .filter_map(|m| match m {
                Wire::Restore { to, seq, units } if *to == d => {
                    Some((0, *seq, units.iter().map(|&u| co(u)).collect()))
                }
                Wire::Ack { from, watermark } if *from == d => Some((1, *watermark, Vec::new())),
                _ => None,
            })
            .collect();
        wire.sort();
        SurvivorSig {
            window,
            tracker: s.slaves[d].tracker.clone(),
            holding,
            wire,
        }
    }
}

impl Symmetric for RestoreModel {
    fn canonical(&self, s: &RestoreState) -> RestoreState {
        let coords = self.unit_coords();
        let mut sigma: Vec<usize> = (0..self.survivors).collect();
        let mut moved = false;
        for class in self.classes() {
            if class.len() < 2 {
                continue;
            }
            let mut order = class.clone();
            order.sort_by_cached_key(|&d| self.survivor_sig(s, d, &coords));
            for (rank, &d) in order.iter().enumerate() {
                sigma[d] = class[rank];
                moved |= d != class[rank];
            }
        }
        if moved {
            self.permute(s, &sigma)
        } else {
            s.clone()
        }
    }
}

impl Ample for RestoreModel {
    fn ample(&self, s: &RestoreState, enabled: Vec<Step>) -> Vec<Step> {
        // Serialize wire handling per survivor lane. A lane-`d` message (a
        // `Restore` to `d`, or an `Ack` from `d`) touches only survivor
        // `d`'s slot and its sender window, so wire actions in *different*
        // lanes are independent: expanding only the first message's lane
        // preserves all verdicts. Local actions (Scatter / Resend /
        // Heartbeat) race with deliveries through the shared windows, so
        // they stay in. Every action advances a monotone event counter,
        // making the transition graph a DAG — the ignoring proviso is
        // vacuous. Soundness is continuously re-validated by the
        // reduced-vs-full agreement tests, including the zero-budget
        // Resend-race counterexample.
        let Some(first) = s.wire.first() else {
            return enabled;
        };
        let lane = |m: &Wire| match m {
            Wire::Restore { to, .. } => *to,
            Wire::Ack { from, .. } => *from,
        };
        let d = lane(first);
        let ample: Vec<Step> = enabled
            .iter()
            .filter(|a| match a {
                Step::Deliver(j) | Step::DeliverCopy(j) | Step::Drop(j) => lane(&s.wire[*j]) == d,
                Step::Scatter(_) | Step::Resend(_) | Step::Heartbeat(_) => true,
            })
            .cloned()
            .collect();
        if ample.is_empty() {
            enabled
        } else {
            ample
        }
    }
}

// ---------------------------------------------------------------------------
// Slave ↔ slave transfer channel
// ---------------------------------------------------------------------------

/// A message in flight in the [`TransferModel`]'s network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TWire {
    /// Sender → receiver `to`: adopt these units (sequence-numbered move).
    Transfer {
        to: usize,
        seq: u64,
        units: Vec<usize>,
    },
    /// Receiver `from` → sender: contiguous applied watermark.
    Ack { from: usize, watermark: u64 },
}

/// One enabled step of the [`TransferModel`]. Same idempotent-wire
/// reduction as [`Step`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TStep {
    /// The balancer orders move `m`: the sender sheds its units onto the
    /// channel to receiver `m % receivers` (or keeps them, if that
    /// receiver was already evicted).
    Offer(usize),
    /// Deliver the `i`-th in-flight message (and consume it). Deliveries
    /// to an evicted receiver are discarded, as the fail-stop network does.
    Deliver(usize),
    /// Deliver a duplicate of the `i`-th message (bounded budget).
    DeliverCopy(usize),
    /// Drop the `i`-th message (bounded budget).
    Drop(usize),
    /// The sender's re-send trigger for the channel to receiver `r` fires:
    /// re-send everything unacknowledged that is not already in flight.
    Resend(usize),
    /// Receiver `r` re-acknowledges while the ack carries news.
    Heartbeat(usize),
    /// Receiver `r` fail-stops: the master evicts it, the sender closes
    /// that channel and re-owns in-flight units, and the master
    /// re-scatters whatever no survivor reports owning (bounded budget).
    Evict(usize),
}

/// One receiving slave's slot in the [`TransferModel`]: its channel
/// endpoint, held units (with apply counts), and whether it fail-stopped.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReceiverSlot {
    pub window: TransferWindow<Vec<usize>>,
    pub holding: BTreeMap<usize, u32>,
    pub evicted: bool,
}

impl ReceiverSlot {
    fn new() -> ReceiverSlot {
        ReceiverSlot {
            window: TransferWindow::new(),
            holding: BTreeMap::new(),
            evicted: false,
        }
    }
}

/// Full [`TransferModel`] state: the sender's per-receiver channel
/// endpoints and unit set, every receiver slot, and the network.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferState {
    /// Sender endpoints, one channel per receiver.
    pub senders: Vec<TransferWindow<Vec<usize>>>,
    pub sender_holding: BTreeMap<usize, u32>,
    pub receivers: Vec<ReceiverSlot>,
    pub wire: Vec<TWire>,
    pub offered: usize,
    pub evicts_used: u32,
    pub drops_used: u32,
    pub dups_used: u32,
}

/// The abstracted slave↔slave work-migration system around
/// [`TransferWindow`] — the runtime's MoveOrder execution path, minus
/// everything that does not affect unit safety.
///
/// The sender starts holding every unit; the balancer orders `moves`
/// (disjoint unit batches) shed to the `receivers` round-robin (move `m`
/// targets receiver `m % receivers`); the network may drop or duplicate a
/// bounded number of messages; and receivers may fail-stop
/// ([`TStep::Evict`], bounded by `max_evicts`), upon which the sender
/// re-owns the units in flight to the dead peer and the master re-scatters
/// exactly the units no survivor reports. `dedup_transfers = false` is the
/// deliberately broken variant that applies transfer payloads without
/// sequence-number dedup — the checker must find the duplicate-unit
/// counterexample (`dlb-analyze` maps it to E104).
#[derive(Clone, Debug)]
pub struct TransferModel {
    /// Unit ids the sender starts with (receivers start empty).
    pub units: Vec<usize>,
    /// Number of receiving slaves; move `m` targets receiver
    /// `m % receivers`.
    pub receivers: usize,
    /// Unit batches shed to the receivers, in order (disjoint subsets of
    /// `units`).
    pub moves: Vec<Vec<usize>>,
    pub max_drops: u32,
    pub max_dups: u32,
    /// How many receivers may fail-stop mid-protocol.
    pub max_evicts: u32,
    /// True = the real protocol (receiver dedups by sequence number).
    pub dedup_transfers: bool,
}

impl TransferModel {
    /// The standard checked configuration: four units, one receiver, two
    /// move batches, one drop, one duplication, and one eviction budget.
    pub fn standard() -> TransferModel {
        TransferModel {
            units: vec![0, 1, 2, 3],
            receivers: 1,
            moves: vec![vec![0, 1], vec![2]],
            max_drops: 1,
            max_dups: 1,
            max_evicts: 1,
            dedup_transfers: true,
        }
    }

    /// The broken variant: transfer payloads applied without dedup.
    pub fn broken_no_dedup() -> TransferModel {
        TransferModel {
            dedup_transfers: false,
            ..TransferModel::standard()
        }
    }

    /// A runtime-width instance: `n` receivers, one single-unit move per
    /// receiver (fully symmetric), the standard fault budget. This is what
    /// the `lint-wide` CI job checks at n = 16.
    pub fn wide(n: usize) -> TransferModel {
        TransferModel {
            units: (0..n).collect(),
            receivers: n,
            moves: (0..n).map(|u| vec![u]).collect(),
            max_drops: 1,
            max_dups: 1,
            max_evicts: 1,
            dedup_transfers: true,
        }
    }

    fn deliver(&self, n: &mut TransferState, msg: TWire) {
        match msg {
            TWire::Transfer { to, seq, units } => {
                let slot = &mut n.receivers[to];
                if slot.evicted {
                    // Fail-stop: deliveries to a crashed node vanish.
                    return;
                }
                let fresh = if self.dedup_transfers {
                    slot.window.accept(seq)
                } else {
                    // Broken variant: acknowledge the sequence but apply
                    // unconditionally.
                    slot.window.accept(seq);
                    true
                };
                if fresh {
                    for u in units {
                        *slot.holding.entry(u).or_insert(0) += 1;
                    }
                }
                let ack = TWire::Ack {
                    from: to,
                    watermark: slot.window.recv_watermark(),
                };
                insert_unique_t(&mut n.wire, ack);
            }
            TWire::Ack { from, watermark } => {
                n.senders[from].ack(watermark);
            }
        }
    }

    fn quiescent(&self, s: &TransferState) -> bool {
        s.offered == self.moves.len()
            && s.wire.is_empty()
            && (0..self.receivers).all(|r| s.receivers[r].evicted || s.senders[r].fully_acked())
    }
}

fn insert_unique_t(wire: &mut Vec<TWire>, msg: TWire) {
    if let Err(at) = wire.binary_search(&msg) {
        wire.insert(at, msg);
    }
}

impl TransitionSystem for TransferModel {
    type State = TransferState;
    type Action = TStep;

    fn initial(&self) -> TransferState {
        TransferState {
            senders: vec![TransferWindow::new(); self.receivers],
            sender_holding: self.units.iter().map(|&u| (u, 1)).collect(),
            receivers: vec![ReceiverSlot::new(); self.receivers],
            wire: Vec::new(),
            offered: 0,
            evicts_used: 0,
            drops_used: 0,
            dups_used: 0,
        }
    }

    fn actions(&self, s: &TransferState) -> Vec<TStep> {
        let mut out = Vec::new();
        if s.offered < self.moves.len() {
            out.push(TStep::Offer(s.offered));
        }
        for i in 0..s.wire.len() {
            out.push(TStep::Deliver(i));
            if s.drops_used < self.max_drops {
                out.push(TStep::Drop(i));
            }
            if s.dups_used < self.max_dups {
                out.push(TStep::DeliverCopy(i));
            }
        }
        for r in 0..self.receivers {
            if s.receivers[r].evicted {
                continue;
            }
            let resendable = s.senders[r].unacked().any(|(seq, units)| {
                !s.wire.contains(&TWire::Transfer {
                    to: r,
                    seq: *seq,
                    units: units.clone(),
                })
            });
            if resendable {
                out.push(TStep::Resend(r));
            }
            let hb = TWire::Ack {
                from: r,
                watermark: s.receivers[r].window.recv_watermark(),
            };
            // Re-ack while it carries news, as [`Step::Heartbeat`] does —
            // quiescent states stay terminal.
            if s.receivers[r].window.recv_watermark() > s.senders[r].acked_watermark()
                && !s.wire.contains(&hb)
            {
                out.push(TStep::Heartbeat(r));
            }
            if s.evicts_used < self.max_evicts {
                out.push(TStep::Evict(r));
            }
        }
        out
    }

    fn apply(&self, s: &TransferState, a: &TStep) -> TransferState {
        let mut n = s.clone();
        match a {
            TStep::Offer(m) => {
                let r = *m % self.receivers;
                if n.receivers[r].evicted {
                    // Offer to an evicted slave: refused locally, the
                    // sender keeps the units.
                    n.offered += 1;
                } else {
                    let units = self.moves[*m].clone();
                    for u in &units {
                        let gone = n.sender_holding.remove(u).is_some();
                        debug_assert!(gone, "move batches must be disjoint owned units");
                    }
                    let _ = n.senders[r].send_with(|_| units.clone());
                    let msg = TWire::Transfer {
                        to: r,
                        seq: n.senders[r].seq_sent(),
                        units,
                    };
                    insert_unique_t(&mut n.wire, msg);
                    n.offered += 1;
                }
            }
            TStep::Deliver(i) => {
                let msg = n.wire.remove(*i);
                self.deliver(&mut n, msg);
            }
            TStep::DeliverCopy(i) => {
                let msg = n.wire[*i].clone();
                n.dups_used += 1;
                self.deliver(&mut n, msg);
            }
            TStep::Drop(i) => {
                n.wire.remove(*i);
                n.drops_used += 1;
            }
            TStep::Resend(r) => {
                let msgs: Vec<TWire> = n.senders[*r]
                    .unacked()
                    .map(|(seq, units)| TWire::Transfer {
                        to: *r,
                        seq: *seq,
                        units: units.clone(),
                    })
                    .filter(|m| !n.wire.contains(m))
                    .collect();
                for m in msgs {
                    insert_unique_t(&mut n.wire, m);
                }
            }
            TStep::Heartbeat(r) => {
                let hb = TWire::Ack {
                    from: *r,
                    watermark: n.receivers[*r].window.recv_watermark(),
                };
                insert_unique_t(&mut n.wire, hb);
            }
            TStep::Evict(r) => {
                n.receivers[*r].evicted = true;
                n.evicts_used += 1;
                // The sender re-owns everything still unacknowledged on
                // its channel to the dead peer...
                for units in n.senders[*r].close() {
                    for u in units {
                        *n.sender_holding.entry(u).or_insert(0) += 1;
                    }
                }
                // ...then the master re-scatters exactly the units no
                // survivor reports owning (the OwnReport fence). Survivors
                // report units they hold plus units still pending on their
                // live channels — the sender retains those for re-send, so
                // they are recoverable, not lost.
                let mut owned: BTreeSet<usize> = n.sender_holding.keys().copied().collect();
                for (r2, slot) in n.receivers.iter().enumerate() {
                    if slot.evicted {
                        continue;
                    }
                    owned.extend(slot.holding.keys().copied());
                    owned.extend(
                        n.senders[r2]
                            .unacked()
                            .flat_map(|(_, units)| units.iter().copied()),
                    );
                }
                let missing: Vec<usize> = self
                    .units
                    .iter()
                    .copied()
                    .filter(|u| !owned.contains(u))
                    .collect();
                for u in missing {
                    *n.sender_holding.entry(u).or_insert(0) += 1;
                }
            }
        }
        n
    }

    fn violation(&self, s: &TransferState) -> Option<String> {
        for (unit, applies) in s.sender_holding.iter() {
            if *applies > 1 {
                return Some(format!(
                    "duplicate work unit {unit} applied {applies} times on sender"
                ));
            }
        }
        for (r, slot) in s.receivers.iter().enumerate() {
            for (unit, applies) in slot.holding.iter() {
                if *applies > 1 {
                    return Some(format!(
                        "duplicate work unit {unit} applied {applies} times on receiver {r}"
                    ));
                }
            }
        }
        // A unit held by two live owners at once is also a duplicate.
        let mut owners: BTreeMap<usize, String> = s
            .sender_holding
            .keys()
            .map(|&u| (u, "sender".to_string()))
            .collect();
        for (r, slot) in s.receivers.iter().enumerate() {
            if slot.evicted {
                continue;
            }
            for unit in slot.holding.keys() {
                if let Some(prev) = owners.insert(*unit, format!("receiver {r}")) {
                    return Some(format!(
                        "duplicate work unit {unit} held by both {prev} and receiver {r}"
                    ));
                }
            }
        }
        if self.quiescent(s) {
            let held = owners.len();
            if held != self.units.len() {
                return Some(format!(
                    "lost work unit: quiescent with {held} of {} units owned",
                    self.units.len()
                ));
            }
        }
        None
    }

    fn is_accepting(&self, s: &TransferState) -> bool {
        self.quiescent(s)
    }
}

/// Permutation-invariant rendering of one receiver's view of a
/// [`TransferState`] (unit ids replaced by `(round, position)` move
/// coordinates), including the slice of the sender's holdings that belongs
/// to this receiver's moves. Transfer state never crosses receivers, so
/// equal signatures mean interchangeable receivers.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct ReceiverSig {
    sender: (bool, u64, u64, Vec<(u64, Vec<UnitCoord>)>),
    window: TransferWindow<Vec<usize>>,
    holding: Vec<(UnitCoord, u32)>,
    reowned: Vec<(UnitCoord, u32)>,
    evicted: bool,
    wire: Vec<(u8, u64, Vec<UnitCoord>)>,
}

impl TransferModel {
    /// unit id → (round, position in batch, destination receiver). Units
    /// in no move are fixed points of every relabeling.
    fn unit_coords(&self) -> BTreeMap<usize, (usize, usize, usize)> {
        let mut m = BTreeMap::new();
        for (mi, mv) in self.moves.iter().enumerate() {
            for (j, &u) in mv.iter().enumerate() {
                m.insert(u, (mi / self.receivers, j, mi % self.receivers));
            }
        }
        m
    }

    /// Receiver `r`'s static move profile: batch size per round. Receivers
    /// are only interchangeable when their profiles are equal.
    fn profile(&self, r: usize) -> Vec<usize> {
        (0..)
            .map_while(|k| self.moves.get(k * self.receivers + r).map(Vec::len))
            .collect()
    }

    /// How many of receiver `r`'s moves have been offered after `offered`
    /// total offers (offers go round-robin in move order).
    fn offers_done(&self, offered: usize, r: usize) -> usize {
        offered / self.receivers + usize::from(r < offered % self.receivers)
    }

    /// Interchangeability classes for a state: receivers with equal move
    /// profiles *and* equal offered counts (a partially-offered round
    /// distinguishes receivers before and after the boundary).
    fn classes(&self, s: &TransferState) -> Vec<Vec<usize>> {
        let mut by_key: BTreeMap<(Vec<usize>, usize), Vec<usize>> = BTreeMap::new();
        for r in 0..self.receivers {
            by_key
                .entry((self.profile(r), self.offers_done(s.offered, r)))
                .or_default()
                .push(r);
        }
        by_key.into_values().collect()
    }

    /// Relabel receivers by `sigma` (`sigma[r]` is `r`'s new index), which
    /// must map every receiver to one in the same class for the state
    /// being permuted. Unit ids are renamed along move coordinates.
    pub fn permute(&self, s: &TransferState, sigma: &[usize]) -> TransferState {
        let coords = self.unit_coords();
        let pi = |u: usize| -> usize {
            match coords.get(&u) {
                Some(&(k, j, r)) => self.moves[k * self.receivers + sigma[r]][j],
                None => u,
            }
        };
        let mut n = s.clone();
        for (r, w) in s.senders.iter().enumerate() {
            let mut wnd = w.clone();
            wnd.map_payloads(|units| units.iter_mut().for_each(|u| *u = pi(*u)));
            n.senders[sigma[r]] = wnd;
        }
        for (r, slot) in s.receivers.iter().enumerate() {
            n.receivers[sigma[r]] = ReceiverSlot {
                window: slot.window.clone(),
                holding: slot.holding.iter().map(|(u, c)| (pi(*u), *c)).collect(),
                evicted: slot.evicted,
            };
        }
        n.sender_holding = s.sender_holding.iter().map(|(u, c)| (pi(*u), *c)).collect();
        n.wire = s
            .wire
            .iter()
            .map(|m| match m {
                TWire::Transfer { to, seq, units } => TWire::Transfer {
                    to: sigma[*to],
                    seq: *seq,
                    units: units.iter().map(|&u| pi(u)).collect(),
                },
                TWire::Ack { from, watermark } => TWire::Ack {
                    from: sigma[*from],
                    watermark: *watermark,
                },
            })
            .collect();
        n.wire.sort();
        n
    }

    fn receiver_sig(
        &self,
        s: &TransferState,
        r: usize,
        coords: &BTreeMap<usize, (usize, usize, usize)>,
    ) -> ReceiverSig {
        let co = |u: usize| -> UnitCoord {
            let (k, j, _) = coords[&u];
            (k, j)
        };
        let snd = &s.senders[r];
        let sender = (
            snd.is_open(),
            snd.seq_sent(),
            snd.acked_watermark(),
            snd.unacked()
                .map(|(seq, units)| (*seq, units.iter().map(|&u| co(u)).collect()))
                .collect(),
        );
        let holding = s.receivers[r]
            .holding
            .iter()
            .map(|(u, c)| (co(*u), *c))
            .collect();
        let reowned = s
            .sender_holding
            .iter()
            .filter(|(u, _)| matches!(coords.get(u), Some(&(_, _, dest)) if dest == r))
            .map(|(u, c)| (co(*u), *c))
            .collect();
        let mut wire: Vec<(u8, u64, Vec<UnitCoord>)> = s
            .wire
            .iter()
            .filter_map(|m| match m {
                TWire::Transfer { to, seq, units } if *to == r => {
                    Some((0, *seq, units.iter().map(|&u| co(u)).collect()))
                }
                TWire::Ack { from, watermark } if *from == r => Some((1, *watermark, Vec::new())),
                _ => None,
            })
            .collect();
        wire.sort();
        ReceiverSig {
            sender,
            window: s.receivers[r].window.clone(),
            holding,
            reowned,
            evicted: s.receivers[r].evicted,
            wire,
        }
    }
}

impl Symmetric for TransferModel {
    fn canonical(&self, s: &TransferState) -> TransferState {
        let coords = self.unit_coords();
        let mut sigma: Vec<usize> = (0..self.receivers).collect();
        let mut moved = false;
        for class in self.classes(s) {
            if class.len() < 2 {
                continue;
            }
            let mut order = class.clone();
            order.sort_by_cached_key(|&r| self.receiver_sig(s, r, &coords));
            for (rank, &r) in order.iter().enumerate() {
                sigma[r] = class[rank];
                moved |= r != class[rank];
            }
        }
        if moved {
            self.permute(s, &sigma)
        } else {
            s.clone()
        }
    }
}

impl Ample for TransferModel {
    fn ample(&self, s: &TransferState, enabled: Vec<TStep>) -> Vec<TStep> {
        // Two-tier serialization. First: while an ack is in flight, only
        // its own wire actions plus the local actions (which race with it
        // through the sender windows) need expanding now — an ack only
        // advances one sender's contiguous watermark, so ack deliveries
        // commute with everything but that sender's locals, and resolving
        // them eagerly collapses the watermark-advance interleavings
        // (the dominant blowup at width 16). Second, with no ack in
        // flight: serialize transfer handling per receiver lane — a
        // `Transfer` to `r` touches only `senders[r]`/`receivers[r]` and
        // set-valued wire appends, so wire actions in *different* lanes
        // are independent and only the first message's lane expands.
        // Every action advances a monotone event counter, so the
        // transition graph is a DAG and the ignoring proviso is vacuous.
        // Soundness is continuously re-validated by the reduced-vs-full
        // agreement tests, including the no-dedup duplicate-apply
        // counterexample.
        let lane = |m: &TWire| match m {
            TWire::Transfer { to, .. } => *to,
            TWire::Ack { from, .. } => *from,
        };
        let pick = s
            .wire
            .iter()
            .position(|m| matches!(m, TWire::Ack { .. }))
            .or(if s.wire.is_empty() { None } else { Some(0) });
        let Some(i) = pick else {
            return enabled;
        };
        let ack_first = matches!(s.wire[i], TWire::Ack { .. });
        let r = lane(&s.wire[i]);
        let ample: Vec<TStep> = enabled
            .iter()
            .filter(|a| match a {
                TStep::Deliver(j) | TStep::DeliverCopy(j) | TStep::Drop(j) => {
                    if ack_first {
                        *j == i
                    } else {
                        lane(&s.wire[*j]) == r
                    }
                }
                TStep::Offer(_) | TStep::Resend(_) | TStep::Heartbeat(_) | TStep::Evict(_) => true,
            })
            .cloned()
            .collect();
        if ample.is_empty() {
            enabled
        } else {
            ample
        }
    }
}

// ---------------------------------------------------------------------------
// Deputy election (master failover)
// ---------------------------------------------------------------------------

/// A message in flight in the [`ElectionModel`]'s network. Every variant
/// carries its recipient so delivery is well-defined under reordering.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EWire {
    /// Candidate → peer deputy: stand for `term` with replica freshness
    /// `fresh` (the runtime's [`crate::msg::Msg::Candidacy`]).
    Candidacy {
        to: usize,
        term: u64,
        candidate: usize,
        fresh: u64,
    },
    /// Voter → candidate: vote granted in `term`
    /// ([`crate::msg::Msg::Vote`]).
    Vote { to: usize, term: u64, voter: usize },
    /// Winner → peer deputy: takeover announcement
    /// ([`crate::msg::Msg::Promoted`]).
    Promoted { to: usize, term: u64, winner: usize },
}

/// One enabled step of the [`ElectionModel`]. Same idempotent-wire
/// reduction as [`Step`]: re-sending an identical message merges with the
/// in-flight copy, duplicates apply without consuming.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EStep {
    /// Deputy `d`'s master-silence timer fires: it stands in a fresh term
    /// (re-standing abandons any stalled candidacy, as the runtime's
    /// rate-limited retry does). Bounded by the stand budget.
    Stand(usize),
    /// Deliver the `i`-th in-flight message (and consume it).
    Deliver(usize),
    /// Deliver a duplicate of the `i`-th message (bounded budget).
    DeliverCopy(usize),
    /// Drop the `i`-th message (bounded budget).
    Drop(usize),
    /// Deputy `d`'s candidacy reached quorum: it promotes itself and
    /// announces the takeover.
    Win(usize),
}

/// Per-deputy election state in the model — the pure subset of
/// [`crate::session::replica::DeputyState`] that decides votes.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeputyModel {
    pub term_seen: u64,
    /// Highest term voted in (including self-votes when standing). The
    /// broken variant never consults it — the split-brain bug.
    pub voted_in: u64,
    /// Term of the live candidacy (0 = not standing).
    pub standing: u64,
    /// Voters collected for the live candidacy (includes self).
    pub votes: BTreeSet<usize>,
    /// This deputy won and became master; it takes no further part.
    pub promoted_self: bool,
}

/// Full [`ElectionModel`] state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElectionState {
    pub deps: Vec<DeputyModel>,
    pub wire: Vec<EWire>,
    /// Every promotion announced so far, as `(term, winner)` — the
    /// split-brain invariant reads this.
    pub promoted: Vec<(u64, usize)>,
    /// Set when a winner's electing quorum contained a voter with a
    /// strictly fresher replica: `(term, winner, fresher_voter)`.
    pub stale_win: Option<(u64, usize, usize)>,
    pub stands_used: u32,
    pub drops_used: u32,
    pub dups_used: u32,
}

/// The abstracted deputy-set/network system around the election rules of
/// [`crate::session::replica::DeputyState`].
///
/// Every deputy suspects the master (it is dead in this model) and may
/// stand; the network may drop or duplicate a bounded number of messages;
/// votes follow the production rules: one vote per term, never for a
/// candidate whose replica is staler than the voter's, majority of the
/// *full* deputy set to win. `one_vote_per_term = false` is the
/// deliberately broken variant whose voters forget which terms they voted
/// in — the model checker must find the two-winners-one-term counterexample
/// (`dlb-analyze` maps it to E107). `fresh_guard = false` drops the
/// newest-replica rule instead, electing a quorum that out-freshes its
/// winner (E108).
#[derive(Clone, Debug)]
pub struct ElectionModel {
    /// Size of the full deputy set (quorum denominator).
    pub deputies: usize,
    /// Per-deputy replica freshness (the election's comparison scale).
    pub fresh: Vec<u64>,
    /// Total stands allowed across all deputies (bounds the term space).
    pub max_stands: u32,
    pub max_drops: u32,
    pub max_dups: u32,
    /// True = the real protocol (a voter spends its vote for the term).
    pub one_vote_per_term: bool,
    /// True = the real protocol (no vote for a staler candidate).
    pub fresh_guard: bool,
}

impl ElectionModel {
    /// The standard checked configuration: three deputies with distinct
    /// replica freshness, three stands, one drop and one duplication
    /// budget.
    pub fn standard() -> ElectionModel {
        ElectionModel {
            deputies: 3,
            fresh: vec![2, 1, 0],
            max_stands: 3,
            max_drops: 1,
            max_dups: 1,
            one_vote_per_term: true,
            fresh_guard: true,
        }
    }

    /// The broken variant: voters forget which terms they voted in, so one
    /// term can promote two masters (split brain).
    pub fn broken_split_brain() -> ElectionModel {
        ElectionModel {
            one_vote_per_term: false,
            ..ElectionModel::standard()
        }
    }

    /// The broken variant that ignores replica freshness when voting: a
    /// stale deputy can win while a quorum member holds newer state.
    pub fn broken_fresh_blind() -> ElectionModel {
        ElectionModel {
            fresh_guard: false,
            ..ElectionModel::standard()
        }
    }

    /// A runtime-width configuration: `n` deputies with *equal* replica
    /// freshness (the common case right after a checkpoint broadcast),
    /// which makes the whole deputy set one symmetry class. Two stands
    /// keep the term space bounded.
    pub fn wide(n: usize) -> ElectionModel {
        ElectionModel {
            deputies: n,
            fresh: vec![1; n],
            max_stands: 2,
            max_drops: 1,
            max_dups: 1,
            one_vote_per_term: true,
            fresh_guard: true,
        }
    }

    fn quorum(&self) -> usize {
        self.deputies / 2 + 1
    }

    fn deliver(&self, n: &mut ElectionState, msg: EWire) {
        match msg {
            EWire::Candidacy {
                to,
                term,
                candidate,
                fresh,
            } => {
                let dep = &mut n.deps[to];
                dep.term_seen = dep.term_seen.max(term);
                if dep.promoted_self {
                    return; // Now a master; election traffic is inert.
                }
                let spent = self.one_vote_per_term && term <= dep.voted_in;
                let staler = self.fresh_guard && fresh < self.fresh[to];
                if spent || staler {
                    return;
                }
                dep.voted_in = dep.voted_in.max(term);
                insert_unique_e(
                    &mut n.wire,
                    EWire::Vote {
                        to: candidate,
                        term,
                        voter: to,
                    },
                );
            }
            EWire::Vote { to, term, voter } => {
                let dep = &mut n.deps[to];
                dep.term_seen = dep.term_seen.max(term);
                // Counted only while standing in exactly that term (late
                // votes for abandoned candidacies are inert).
                if !dep.promoted_self && dep.standing == term {
                    dep.votes.insert(voter);
                }
            }
            EWire::Promoted {
                to,
                term,
                winner: _,
            } => {
                let dep = &mut n.deps[to];
                dep.term_seen = dep.term_seen.max(term);
                // Stand down any candidacy the promotion outranks.
                if dep.standing != 0 && dep.standing <= term {
                    dep.standing = 0;
                    dep.votes.clear();
                }
            }
        }
    }

    fn quiescent(&self, s: &ElectionState) -> bool {
        s.wire.is_empty()
    }
}

fn insert_unique_e(wire: &mut Vec<EWire>, msg: EWire) {
    if let Err(at) = wire.binary_search(&msg) {
        wire.insert(at, msg);
    }
}

impl TransitionSystem for ElectionModel {
    type State = ElectionState;
    type Action = EStep;

    fn initial(&self) -> ElectionState {
        ElectionState {
            deps: vec![DeputyModel::default(); self.deputies],
            wire: Vec::new(),
            promoted: Vec::new(),
            stale_win: None,
            stands_used: 0,
            drops_used: 0,
            dups_used: 0,
        }
    }

    fn actions(&self, s: &ElectionState) -> Vec<EStep> {
        let mut out = Vec::new();
        for d in 0..self.deputies {
            if s.stands_used < self.max_stands && !s.deps[d].promoted_self {
                out.push(EStep::Stand(d));
            }
            if !s.deps[d].promoted_self
                && s.deps[d].standing != 0
                && s.deps[d].votes.len() >= self.quorum()
            {
                out.push(EStep::Win(d));
            }
        }
        for i in 0..s.wire.len() {
            out.push(EStep::Deliver(i));
            if s.drops_used < self.max_drops {
                out.push(EStep::Drop(i));
            }
            if s.dups_used < self.max_dups {
                out.push(EStep::DeliverCopy(i));
            }
        }
        out
    }

    fn apply(&self, s: &ElectionState, a: &EStep) -> ElectionState {
        let mut n = s.clone();
        match a {
            EStep::Stand(d) => {
                let term = n.deps[*d].term_seen + 1;
                let dep = &mut n.deps[*d];
                dep.term_seen = term;
                dep.voted_in = term; // self-vote spends the term
                dep.standing = term;
                dep.votes = BTreeSet::from([*d]);
                n.stands_used += 1;
                for to in (0..self.deputies).filter(|&to| to != *d) {
                    insert_unique_e(
                        &mut n.wire,
                        EWire::Candidacy {
                            to,
                            term,
                            candidate: *d,
                            fresh: self.fresh[*d],
                        },
                    );
                }
            }
            EStep::Deliver(i) => {
                let msg = n.wire.remove(*i);
                self.deliver(&mut n, msg);
            }
            EStep::DeliverCopy(i) => {
                let msg = n.wire[*i].clone();
                n.dups_used += 1;
                self.deliver(&mut n, msg);
            }
            EStep::Drop(i) => {
                n.wire.remove(*i);
                n.drops_used += 1;
            }
            EStep::Win(d) => {
                let term = n.deps[*d].standing;
                if let Some(fresher) = n.deps[*d]
                    .votes
                    .iter()
                    .find(|&&v| self.fresh[v] > self.fresh[*d])
                {
                    n.stale_win = Some((term, *d, *fresher));
                }
                n.promoted.push((term, *d));
                n.promoted.sort_unstable();
                let dep = &mut n.deps[*d];
                dep.promoted_self = true;
                dep.standing = 0;
                dep.votes.clear();
                for to in (0..self.deputies).filter(|&to| to != *d) {
                    insert_unique_e(
                        &mut n.wire,
                        EWire::Promoted {
                            to,
                            term,
                            winner: *d,
                        },
                    );
                }
            }
        }
        n
    }

    fn violation(&self, s: &ElectionState) -> Option<String> {
        for pair in s.promoted.windows(2) {
            if pair[0].0 == pair[1].0 && pair[0].1 != pair[1].1 {
                return Some(format!(
                    "split brain: deputies {} and {} both promoted in term {}",
                    pair[0].1, pair[1].1, pair[0].0
                ));
            }
        }
        if let Some((term, winner, voter)) = s.stale_win {
            return Some(format!(
                "stale replica won term {term}: deputy {winner} (fresh {}) elected by \
                 fresher voter {voter} (fresh {})",
                self.fresh[winner], self.fresh[voter]
            ));
        }
        None
    }

    fn is_accepting(&self, s: &ElectionState) -> bool {
        // Bounded model: liveness (someone eventually wins) is out of
        // scope; any drained-wire terminal state is a legitimate end.
        self.quiescent(s)
    }
}

/// Permutation-covariant summary of one deputy's situation: local election
/// state plus its wire involvement and promotion record, with peer indices
/// erased. Election state references other deputies (vote sets, message
/// addressing), so equal signatures do not guarantee interchangeability —
/// the sort is a canonicalization heuristic, never a soundness condition.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct DeputySig {
    term_seen: u64,
    voted_in: u64,
    standing: u64,
    promoted_self: bool,
    votes: usize,
    wire_in: Vec<(u8, u64)>,
    wire_out: Vec<(u8, u64)>,
    promoted_terms: Vec<u64>,
    stale_role: (bool, bool),
}

impl ElectionModel {
    /// Interchangeability classes: deputies with equal replica freshness.
    /// Freshness is the only per-deputy model parameter, so any relabeling
    /// within a class maps the model onto itself.
    fn classes(&self) -> Vec<Vec<usize>> {
        let mut by_fresh: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for d in 0..self.deputies {
            by_fresh.entry(self.fresh[d]).or_default().push(d);
        }
        by_fresh.into_values().collect()
    }

    /// Relabel deputies by `sigma` (`sigma[d]` is `d`'s new index), which
    /// must map each deputy to one with equal freshness.
    pub fn permute(&self, s: &ElectionState, sigma: &[usize]) -> ElectionState {
        let mut n = s.clone();
        for (d, dep) in s.deps.iter().enumerate() {
            n.deps[sigma[d]] = DeputyModel {
                votes: dep.votes.iter().map(|&v| sigma[v]).collect(),
                ..dep.clone()
            };
        }
        n.wire = s
            .wire
            .iter()
            .map(|m| match m {
                EWire::Candidacy {
                    to,
                    term,
                    candidate,
                    fresh,
                } => EWire::Candidacy {
                    to: sigma[*to],
                    term: *term,
                    candidate: sigma[*candidate],
                    fresh: *fresh,
                },
                EWire::Vote { to, term, voter } => EWire::Vote {
                    to: sigma[*to],
                    term: *term,
                    voter: sigma[*voter],
                },
                EWire::Promoted { to, term, winner } => EWire::Promoted {
                    to: sigma[*to],
                    term: *term,
                    winner: sigma[*winner],
                },
            })
            .collect();
        n.wire.sort();
        n.promoted = s.promoted.iter().map(|&(t, w)| (t, sigma[w])).collect();
        n.promoted.sort_unstable();
        n.stale_win = s.stale_win.map(|(t, w, v)| (t, sigma[w], sigma[v]));
        n
    }

    fn deputy_sig(&self, s: &ElectionState, d: usize) -> DeputySig {
        let dep = &s.deps[d];
        let mut wire_in = Vec::new();
        let mut wire_out = Vec::new();
        for m in &s.wire {
            let (kind, to, from, term) = match m {
                EWire::Candidacy {
                    to,
                    term,
                    candidate,
                    ..
                } => (0u8, *to, *candidate, *term),
                EWire::Vote { to, term, voter } => (1, *to, *voter, *term),
                EWire::Promoted { to, term, winner } => (2, *to, *winner, *term),
            };
            if to == d {
                wire_in.push((kind, term));
            }
            if from == d {
                wire_out.push((kind, term));
            }
        }
        wire_in.sort_unstable();
        wire_out.sort_unstable();
        DeputySig {
            term_seen: dep.term_seen,
            voted_in: dep.voted_in,
            standing: dep.standing,
            promoted_self: dep.promoted_self,
            votes: dep.votes.len(),
            wire_in,
            wire_out,
            promoted_terms: s
                .promoted
                .iter()
                .filter(|&&(_, w)| w == d)
                .map(|&(t, _)| t)
                .collect(),
            stale_role: match s.stale_win {
                Some((_, w, v)) => (w == d, v == d),
                None => (false, false),
            },
        }
    }
}

impl ElectionModel {
    /// Deputies the rest of the state can point at: candidates, winners,
    /// and vote targets. Ranked by local signature so the ranking itself
    /// is label-free (ties keep index order — a dedup loss, never a
    /// soundness one).
    fn anchors(&self, s: &ElectionState) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.deputies)
            .filter(|&d| {
                s.deps[d].standing != 0
                    || s.deps[d].promoted_self
                    || s.promoted.iter().any(|&(_, w)| w == d)
                    || s.wire.iter().any(|m| match m {
                        EWire::Candidacy { candidate, .. } => *candidate == d,
                        EWire::Vote { to, .. } => *to == d,
                        EWire::Promoted { winner, .. } => *winner == d,
                    })
            })
            .collect();
        out.sort_by_cached_key(|&a| self.deputy_sig(s, a));
        out
    }

    /// How deputy `d` relates to anchor `a`, with labels erased: vote-set
    /// membership plus the terms of each directed in-flight message kind
    /// between them. This is what [`DeputySig`] alone cannot express —
    /// *which* candidate a voter's references point at — and recovering it
    /// is what keeps orbit-equivalent wide states merging instead of
    /// multiplying through voter-membership patterns.
    fn relation(
        &self,
        s: &ElectionState,
        d: usize,
        a: usize,
    ) -> (bool, Vec<u64>, Vec<u64>, Vec<u64>) {
        let voted = s.deps[a].votes.contains(&d);
        let mut cand_in = Vec::new(); // candidacy a → d
        let mut vote_out = Vec::new(); // vote d → a
        let mut prom_in = Vec::new(); // promotion a → d
        for m in &s.wire {
            match m {
                EWire::Candidacy {
                    to,
                    term,
                    candidate,
                    ..
                } if *candidate == a && *to == d => cand_in.push(*term),
                EWire::Vote { to, term, voter } if *to == a && *voter == d => vote_out.push(*term),
                EWire::Promoted { to, term, winner } if *winner == a && *to == d => {
                    prom_in.push(*term)
                }
                _ => {}
            }
        }
        (voted, cand_in, vote_out, prom_in)
    }

    /// One pass of anchored refinement: sort each symmetry class by local
    /// signature extended with the anchor relations, and apply that
    /// relabeling.
    fn refine_once(&self, s: &ElectionState) -> ElectionState {
        let anchors = self.anchors(s);
        let mut sigma: Vec<usize> = (0..self.deputies).collect();
        let mut moved = false;
        for class in self.classes() {
            if class.len() < 2 {
                continue;
            }
            let mut order = class.clone();
            order.sort_by_cached_key(|&d| {
                (
                    self.deputy_sig(s, d),
                    anchors
                        .iter()
                        .map(|&a| self.relation(s, d, a))
                        .collect::<Vec<_>>(),
                )
            });
            for (rank, &d) in order.iter().enumerate() {
                sigma[d] = class[rank];
                moved |= d != class[rank];
            }
        }
        if moved {
            self.permute(s, &sigma)
        } else {
            s.clone()
        }
    }
}

impl Symmetric for ElectionModel {
    fn canonical(&self, s: &ElectionState) -> ElectionState {
        // Iterate the refinement pass to a deterministic representative.
        // Relabeling can shuffle the anchor ranking, so a single pass is
        // not always a fixpoint; iterating until the state repeats — and
        // taking the least state of the final cycle — makes the result
        // both stable (idempotent) and independent of the starting
        // labels' incidental order. In practice the loop exits after one
        // or two passes.
        let mut seen: Vec<ElectionState> = vec![s.clone()];
        loop {
            let next = self.refine_once(seen.last().expect("nonempty"));
            if let Some(pos) = seen.iter().position(|t| *t == next) {
                return seen[pos..].iter().min().expect("nonempty").clone();
            }
            seen.push(next);
        }
    }
}

impl Ample for ElectionModel {
    fn ample(&self, s: &ElectionState, enabled: Vec<EStep>) -> Vec<EStep> {
        // Serialize wire handling per recipient. A delivery touches only
        // its recipient's local state (plus set-valued wire appends, which
        // commute), so wire actions addressed to *different* deputies are
        // independent: expanding only the first message's recipient — and
        // every local action, since stands and wins race with deliveries
        // and must stay interleaved — preserves all verdicts. Deliveries
        // to the *same* deputy do conflict (the first candidacy wins its
        // vote), so the ample set keeps every action on that recipient's
        // messages. Every action advances a monotone event counter
        // (delivered + dropped + duplicated + stood), so the transition
        // graph is a DAG and the classic ignoring/cycle proviso is
        // vacuous. Soundness is continuously re-validated by the
        // reduced-vs-full agreement tests, including the broken variants'
        // counterexamples.
        let Some(first) = s.wire.first() else {
            return enabled;
        };
        let recipient = |m: &EWire| match m {
            EWire::Candidacy { to, .. } | EWire::Vote { to, .. } | EWire::Promoted { to, .. } => {
                *to
            }
        };
        let d = recipient(first);
        let ample: Vec<EStep> = enabled
            .iter()
            .filter(|a| match a {
                EStep::Deliver(j) | EStep::DeliverCopy(j) | EStep::Drop(j) => {
                    recipient(&s.wire[*j]) == d
                }
                EStep::Stand(_) | EStep::Win(_) => true,
            })
            .cloned()
            .collect();
        if ample.is_empty() {
            enabled
        } else {
            ample
        }
    }
}

// ---------------------------------------------------------------------------
// Mid-run join / rejoin (elastic membership)
// ---------------------------------------------------------------------------

/// A message in flight in the [`JoinModel`]'s network.
///
/// `Evict`, `Join`, and `Admit` carry the incarnation they speak for; the
/// runtime gets the same effect from the sim's per-(src, dst) FIFO channels
/// (a stale `Evict` is always drained by the join handshake before the
/// admission `Rollback` arrives), which the unordered model wire cannot
/// express — so the stamp makes the FIFO guarantee explicit. `Ack` carries
/// only an epoch: the runtime's checkpoint acknowledgements are *not*
/// incarnation-stamped, which is exactly why the master keeps a per-slot
/// `join_epoch` ack floor — the property the [`JoinModel`] checks.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JWire {
    /// Slave life `inc` → master: heartbeat ([`crate::msg::Msg::Alive`]).
    Alive { slot: usize, inc: u64 },
    /// Master → slot: eviction verdict for life `inc`
    /// ([`crate::msg::Msg::Evict`], including the self-healing re-reply
    /// to a non-member's traffic).
    Evict { slot: usize, inc: u64 },
    /// Slave life `inc` → master: admission request
    /// ([`crate::msg::Msg::Join`]).
    Join { slot: usize, inc: u64 },
    /// Master → slot: admission for life `inc`, shipping the snapshot of
    /// admission epoch `epoch` (the windowed `Rollback` that ends the
    /// join handshake).
    Admit { slot: usize, inc: u64, epoch: u64 },
    /// Slot → master: checkpoint acknowledgement stamped with the epoch
    /// the slave computes at — deliberately *not* incarnation-stamped,
    /// as in the runtime.
    Ack { slot: usize, epoch: u64 },
}

/// One enabled step of the [`JoinModel`]. Same idempotent-wire reduction
/// as [`Step`]: re-sending an identical message merges with the in-flight
/// copy, duplicates apply without consuming.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JStep {
    /// The master's suspicion timer fires for live slot `s`: evict it
    /// (bounded budget).
    Suspect(usize),
    /// Deliver the `i`-th in-flight message (and consume it).
    Deliver(usize),
    /// Deliver a duplicate of the `i`-th message (bounded budget).
    DeliverCopy(usize),
    /// Drop the `i`-th message (bounded budget).
    Drop(usize),
    /// Slot `s` heartbeats while the master disagrees with it (evicted or
    /// superseded): re-send `Alive` until the verdict lands. Quiescent
    /// agreement disables it, keeping accepting states terminal.
    Heartbeat(usize),
    /// Slot `s`'s join retry timer fires: re-send the unanswered `Join`
    /// (the handshake's bounded backoff loop).
    RejoinNudge(usize),
    /// The master's nudge timer fires for slot `s`: re-send the
    /// unacknowledged admission window.
    AdmitNudge(usize),
}

/// Master-side view of one slot — the pure subset of
/// [`crate::session::membership::Membership`] plus the checkpointed
/// master's per-slave ack floor that decide join admission and fencing.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JoinSlotMaster {
    pub alive: bool,
    /// Latest admitted life of this slot.
    pub incarnation: u64,
    /// Admission epoch of the snapshot shipped at the latest admission —
    /// the ack floor (`join_epoch` in the checkpointed master).
    pub join_epoch: u64,
    /// Highest credited checkpoint-ack epoch.
    pub acked: u64,
}

/// Slave-side lifecycle of one slot.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JoinPhase {
    /// Computing from the snapshot of admission epoch `epoch`.
    Member { epoch: u64 },
    /// Evicted and handshaking a new life in.
    Joining,
    /// Evicted with the rejoin budget exhausted (the runtime's
    /// `JoinRefused` exit).
    Dead,
}

/// Slave-side view of one slot.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JoinSlotSlave {
    /// Current incarnation (previous lives are zombies).
    pub life: u64,
    pub phase: JoinPhase,
}

/// Full [`JoinModel`] state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JoinState {
    pub master: Vec<JoinSlotMaster>,
    pub slaves: Vec<JoinSlotSlave>,
    pub wire: Vec<JWire>,
    /// Sticky first fencing violation, as `(detail)` — the E111/E112
    /// invariants read this.
    pub violated: Option<String>,
    pub evicts_used: u32,
    pub rejoins_used: u32,
    pub drops_used: u32,
    pub dups_used: u32,
}

/// The abstracted master/slots/network system around the elastic-membership
/// rules: epoch-fenced mid-run admission, bounded rejoin, and zombie
/// fencing.
///
/// Each slot starts as an admitted member. The master may evict it
/// (suspicion), the evicted life learns its verdict — possibly only
/// through the self-healing `Evict` re-reply after a heal — and its
/// successor life handshakes back in; the network may drop or duplicate a
/// bounded number of messages. Two production fences are switchable to
/// deliberately broken variants:
///
/// * `fence_incarnation = false` credits heartbeats without the
///   incarnation check — a zombie (pre-eviction life) can then vouch for
///   the slot after a newer life was admitted, the **double-incarnation**
///   bug (E111).
/// * `fence_epoch = false` credits checkpoint acks below the admission
///   ack floor — a pre-eviction checkpoint then counts as the rejoined
///   life's progress, the **stale-snapshot-join** bug (E112): a later
///   rollback would source state the new life never had.
///
/// Admission mirrors the runtime's `pending_joins` max-dedup: a strictly
/// newer life's `Join` supersedes whatever the slot held, an equal life's
/// `Join` re-admits only a non-member (lost-`Admit` replay otherwise), and
/// older lives are fenced outright.
#[derive(Clone, Debug)]
pub struct JoinModel {
    pub slots: usize,
    /// Total evictions allowed across all slots (bounds the life space).
    pub max_evicts: u32,
    /// Total rejoins allowed across all slots.
    pub max_rejoins: u32,
    pub max_drops: u32,
    pub max_dups: u32,
    /// True = the real protocol (heartbeats credited only for the current
    /// incarnation).
    pub fence_incarnation: bool,
    /// True = the real protocol (checkpoint acks credited only at or above
    /// the admission ack floor).
    pub fence_epoch: bool,
}

impl JoinModel {
    /// The standard checked configuration: two slots, two evictions and
    /// two rejoins (enough for an evict → rejoin → evict → rejoin chain on
    /// one slot, or one cycle on each), one drop and one duplication
    /// budget.
    pub fn standard() -> JoinModel {
        JoinModel {
            slots: 2,
            max_evicts: 2,
            max_rejoins: 2,
            max_drops: 1,
            max_dups: 1,
            fence_incarnation: true,
            fence_epoch: true,
        }
    }

    /// The broken variant without the incarnation fence: a zombie's
    /// heartbeat is credited to the slot after a newer life was admitted
    /// (E111).
    pub fn broken_double_incarnation() -> JoinModel {
        JoinModel {
            fence_incarnation: false,
            ..JoinModel::standard()
        }
    }

    /// The broken variant without the admission ack floor: a pre-eviction
    /// checkpoint ack is credited as the rejoined life's progress (E112).
    pub fn broken_stale_snapshot() -> JoinModel {
        JoinModel {
            fence_epoch: false,
            ..JoinModel::standard()
        }
    }

    /// A runtime-width instance: `n` identical slots (one symmetry class),
    /// the standard eviction/rejoin/fault budgets. This is what the
    /// `lint-wide` CI job checks at n = 16.
    pub fn wide(n: usize) -> JoinModel {
        JoinModel {
            slots: n,
            ..JoinModel::standard()
        }
    }

    /// Receiver/sender effects of one message delivery (shared by
    /// [`JStep::Deliver`] and [`JStep::DeliverCopy`]).
    fn deliver(&self, n: &mut JoinState, msg: JWire) {
        match msg {
            JWire::Alive { slot, inc } => {
                let m = &mut n.master[slot];
                if m.alive {
                    // A credited heartbeat only refreshes the suspicion
                    // timer; the fence rejects non-current lives. Without
                    // it, a zombie's heartbeat is credited to the slot —
                    // the double-incarnation violation.
                    if inc != m.incarnation && !self.fence_incarnation && n.violated.is_none() {
                        n.violated = Some(format!(
                            "double incarnation: slot {slot} credited life {inc} while life {} \
                             is the member",
                            m.incarnation
                        ));
                    }
                } else if inc >= m.incarnation {
                    // The latest life of an evicted slot is still
                    // heartbeating — its Evict was lost (e.g. across a
                    // partition). Repeat the verdict so it can rejoin or
                    // exit: the self-healing reply.
                    insert_unique_j(&mut n.wire, JWire::Evict { slot, inc });
                }
            }
            JWire::Join { slot, inc } => {
                let m = &mut n.master[slot];
                if inc > m.incarnation || (inc == m.incarnation && !m.alive) {
                    // Admit (or supersede a stale admitted life): fresh
                    // two-clock state, bumped admission epoch, snapshot
                    // shipped via the ack-gated window.
                    m.alive = true;
                    m.incarnation = inc;
                    m.join_epoch += 1;
                    let epoch = m.join_epoch;
                    insert_unique_j(&mut n.wire, JWire::Admit { slot, inc, epoch });
                } else if inc == m.incarnation && m.alive {
                    // Already admitted: the Admit must have been lost.
                    let epoch = m.join_epoch;
                    insert_unique_j(&mut n.wire, JWire::Admit { slot, inc, epoch });
                }
                // Older lives are zombies: fenced outright.
            }
            JWire::Ack { slot, epoch } => {
                let m = &mut n.master[slot];
                if m.alive && (epoch >= m.join_epoch || !self.fence_epoch) {
                    if epoch < m.join_epoch && n.violated.is_none() {
                        n.violated = Some(format!(
                            "stale snapshot: slot {slot} checkpoint ack for epoch {epoch} \
                             credited after admission shipped epoch {}",
                            m.join_epoch
                        ));
                    }
                    m.acked = m.acked.max(epoch);
                }
            }
            JWire::Evict { slot, inc } => {
                let sl = &mut n.slaves[slot];
                if sl.life == inc && !matches!(sl.phase, JoinPhase::Dead) {
                    if n.rejoins_used < self.max_rejoins {
                        n.rejoins_used += 1;
                        sl.life += 1;
                        sl.phase = JoinPhase::Joining;
                        let inc = sl.life;
                        insert_unique_j(&mut n.wire, JWire::Join { slot, inc });
                    } else {
                        sl.phase = JoinPhase::Dead;
                    }
                }
                // A verdict for another life is stale (FIFO in the
                // runtime): ignored.
            }
            JWire::Admit { slot, inc, epoch } => {
                let sl = &mut n.slaves[slot];
                if sl.life == inc && !matches!(sl.phase, JoinPhase::Dead) {
                    // Epoch-fenced like the runtime's rollback adoption: a
                    // duplicated older admission must not regress the
                    // member; an equal one re-acks (lost-ack replay).
                    let stale = matches!(sl.phase, JoinPhase::Member { epoch: e } if epoch < e);
                    if !stale {
                        sl.phase = JoinPhase::Member { epoch };
                        insert_unique_j(&mut n.wire, JWire::Ack { slot, epoch });
                    }
                }
            }
        }
    }

    /// Master and slave agree on slot `s` and nothing remains to settle.
    fn slot_settled(&self, s: &JoinState, i: usize) -> bool {
        let (m, sl) = (&s.master[i], &s.slaves[i]);
        match sl.phase {
            JoinPhase::Member { epoch } => {
                m.alive && m.incarnation == sl.life && epoch == m.join_epoch && m.acked >= epoch
            }
            JoinPhase::Joining => false,
            JoinPhase::Dead => !m.alive,
        }
    }

    fn quiescent(&self, s: &JoinState) -> bool {
        s.wire.is_empty() && (0..self.slots).all(|i| self.slot_settled(s, i))
    }
}

fn insert_unique_j(wire: &mut Vec<JWire>, msg: JWire) {
    if let Err(at) = wire.binary_search(&msg) {
        wire.insert(at, msg);
    }
}

impl TransitionSystem for JoinModel {
    type State = JoinState;
    type Action = JStep;

    fn initial(&self) -> JoinState {
        JoinState {
            master: vec![
                JoinSlotMaster {
                    alive: true,
                    incarnation: 1,
                    join_epoch: 0,
                    acked: 0,
                };
                self.slots
            ],
            slaves: vec![
                JoinSlotSlave {
                    life: 1,
                    phase: JoinPhase::Member { epoch: 0 },
                };
                self.slots
            ],
            wire: Vec::new(),
            violated: None,
            evicts_used: 0,
            rejoins_used: 0,
            drops_used: 0,
            dups_used: 0,
        }
    }

    fn actions(&self, s: &JoinState) -> Vec<JStep> {
        let mut out = Vec::new();
        for i in 0..s.wire.len() {
            out.push(JStep::Deliver(i));
            if s.drops_used < self.max_drops {
                out.push(JStep::Drop(i));
            }
            if s.dups_used < self.max_dups {
                out.push(JStep::DeliverCopy(i));
            }
        }
        for t in 0..self.slots {
            let (m, sl) = (&s.master[t], &s.slaves[t]);
            if m.alive && s.evicts_used < self.max_evicts {
                out.push(JStep::Suspect(t));
            }
            // Heartbeat while it carries news (the master disagrees): in
            // the runtime a slave heartbeats until settled, so the model
            // stops at agreement too — quiescent states stay terminal.
            if matches!(sl.phase, JoinPhase::Member { .. })
                && (!m.alive || m.incarnation != sl.life)
                && !s.wire.contains(&JWire::Alive {
                    slot: t,
                    inc: sl.life,
                })
            {
                out.push(JStep::Heartbeat(t));
            }
            // Join retry: at most one copy in flight (the backoff timer
            // refires, so this loses no behaviours).
            if matches!(sl.phase, JoinPhase::Joining)
                && !s.wire.contains(&JWire::Join {
                    slot: t,
                    inc: sl.life,
                })
            {
                out.push(JStep::RejoinNudge(t));
            }
            // Admission-window replay while unacknowledged.
            if m.alive
                && m.acked < m.join_epoch
                && !s.wire.contains(&JWire::Admit {
                    slot: t,
                    inc: m.incarnation,
                    epoch: m.join_epoch,
                })
            {
                out.push(JStep::AdmitNudge(t));
            }
        }
        out
    }

    fn apply(&self, s: &JoinState, a: &JStep) -> JoinState {
        let mut n = s.clone();
        match a {
            JStep::Suspect(t) => {
                n.evicts_used += 1;
                let m = &mut n.master[*t];
                m.alive = false;
                let inc = m.incarnation;
                insert_unique_j(&mut n.wire, JWire::Evict { slot: *t, inc });
            }
            JStep::Deliver(i) => {
                let msg = n.wire.remove(*i);
                self.deliver(&mut n, msg);
            }
            JStep::DeliverCopy(i) => {
                let msg = n.wire[*i].clone();
                n.dups_used += 1;
                self.deliver(&mut n, msg);
            }
            JStep::Drop(i) => {
                n.wire.remove(*i);
                n.drops_used += 1;
            }
            JStep::Heartbeat(t) => {
                let inc = n.slaves[*t].life;
                insert_unique_j(&mut n.wire, JWire::Alive { slot: *t, inc });
            }
            JStep::RejoinNudge(t) => {
                let inc = n.slaves[*t].life;
                insert_unique_j(&mut n.wire, JWire::Join { slot: *t, inc });
            }
            JStep::AdmitNudge(t) => {
                let m = &n.master[*t];
                let (inc, epoch) = (m.incarnation, m.join_epoch);
                insert_unique_j(
                    &mut n.wire,
                    JWire::Admit {
                        slot: *t,
                        inc,
                        epoch,
                    },
                );
            }
        }
        n
    }

    fn violation(&self, s: &JoinState) -> Option<String> {
        s.violated.clone()
    }

    fn is_accepting(&self, s: &JoinState) -> bool {
        self.quiescent(s)
    }
}

/// Permutation-invariant rendering of one slot's entire view of a
/// [`JoinState`]: master slot, slave slot, and the slot's wire messages.
/// Join state never crosses slots (budgets are slot-independent
/// counters), so equal signatures mean interchangeable slots.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct JoinSlotSig {
    master: JoinSlotMaster,
    slave: JoinSlotSlave,
    wire: Vec<JWire>,
}

impl JoinModel {
    fn slot_of(m: &JWire) -> usize {
        match m {
            JWire::Alive { slot, .. }
            | JWire::Evict { slot, .. }
            | JWire::Join { slot, .. }
            | JWire::Admit { slot, .. }
            | JWire::Ack { slot, .. } => *slot,
        }
    }

    fn slot_sig(&self, s: &JoinState, t: usize) -> JoinSlotSig {
        let retag = |m: &JWire| -> JWire {
            let mut m = m.clone();
            match &mut m {
                JWire::Alive { slot, .. }
                | JWire::Evict { slot, .. }
                | JWire::Join { slot, .. }
                | JWire::Admit { slot, .. }
                | JWire::Ack { slot, .. } => *slot = 0,
            }
            m
        };
        let mut wire: Vec<JWire> = s
            .wire
            .iter()
            .filter(|m| Self::slot_of(m) == t)
            .map(retag)
            .collect();
        wire.sort();
        JoinSlotSig {
            master: s.master[t].clone(),
            slave: s.slaves[t].clone(),
            wire,
        }
    }

    /// Relabel slots by `sigma` (`sigma[t]` is `t`'s new index). All slots
    /// are role-identical, so any permutation is admissible.
    pub fn permute(&self, s: &JoinState, sigma: &[usize]) -> JoinState {
        let mut n = s.clone();
        for (t, &to) in sigma.iter().enumerate().take(self.slots) {
            n.master[to] = s.master[t].clone();
            n.slaves[to] = s.slaves[t].clone();
        }
        n.wire = s
            .wire
            .iter()
            .map(|m| {
                let mut m = m.clone();
                match &mut m {
                    JWire::Alive { slot, .. }
                    | JWire::Evict { slot, .. }
                    | JWire::Join { slot, .. }
                    | JWire::Admit { slot, .. }
                    | JWire::Ack { slot, .. } => *slot = sigma[*slot],
                }
                m
            })
            .collect();
        n.wire.sort();
        n
    }
}

impl Symmetric for JoinModel {
    fn canonical(&self, s: &JoinState) -> JoinState {
        let mut order: Vec<usize> = (0..self.slots).collect();
        order.sort_by_cached_key(|&t| self.slot_sig(s, t));
        let mut sigma = vec![0usize; self.slots];
        let mut moved = false;
        for (rank, &t) in order.iter().enumerate() {
            sigma[t] = rank;
            moved |= t != rank;
        }
        if moved {
            self.permute(s, &sigma)
        } else {
            s.clone()
        }
    }
}

impl Ample for JoinModel {
    fn ample(&self, s: &JoinState, enabled: Vec<JStep>) -> Vec<JStep> {
        // Serialize wire handling per slot lane. A slot-`t` message
        // touches only slot `t`'s master and slave views (the self-healing
        // Evict reply and the re-ack it may insert stay in lane `t`), so
        // wire actions in *different* lanes are independent: expanding
        // only the first message's lane preserves all verdicts. Local
        // actions (Suspect / Heartbeat / RejoinNudge / AdmitNudge) race
        // with deliveries through the shared budgets and the slot views,
        // so they stay in. Every action strictly consumes wire occupancy
        // or a monotone budget/lifecycle resource, so the transition graph
        // is a DAG and the ignoring proviso is vacuous. Soundness is
        // continuously re-validated by the reduced-vs-full agreement
        // tests, including both broken variants' counterexamples.
        let Some(first) = s.wire.first() else {
            return enabled;
        };
        let d = Self::slot_of(first);
        let ample: Vec<JStep> = enabled
            .iter()
            .filter(|a| match a {
                JStep::Deliver(j) | JStep::DeliverCopy(j) | JStep::Drop(j) => {
                    Self::slot_of(&s.wire[*j]) == d
                }
                JStep::Suspect(_)
                | JStep::Heartbeat(_)
                | JStep::RejoinNudge(_)
                | JStep::AdmitNudge(_) => true,
            })
            .cloned()
            .collect();
        if ample.is_empty() {
            enabled
        } else {
            ample
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_quiesces_on_the_happy_path() {
        let m = RestoreModel::standard();
        let mut s = m.initial();
        // Scatter both waves, then deliver everything FIFO until quiescent.
        while !m.is_accepting(&s) {
            let acts = m.actions(&s);
            let a = acts
                .iter()
                .find(|a| matches!(a, Step::Scatter(_) | Step::Deliver(_)))
                .expect("happy path always has a scatter or deliver");
            s = m.apply(&s, a);
            assert_eq!(m.violation(&s), None, "happy path must stay clean");
        }
        let held: usize = s.slaves.iter().map(|sl| sl.holding.len()).sum();
        assert_eq!(held, 4);
    }

    #[test]
    fn broken_variant_double_applies_on_duplicate_delivery() {
        let m = RestoreModel::broken_no_dedup();
        let mut s = m.initial();
        s = m.apply(&s, &Step::Scatter(0));
        // Deliver a duplicate of the first restore, then the original.
        s = m.apply(&s, &Step::DeliverCopy(0));
        assert_eq!(m.violation(&s), None);
        s = m.apply(&s, &Step::Deliver(0));
        let v = m.violation(&s).expect("duplicate apply must be detected");
        assert!(v.contains("duplicate apply"), "{v}");
    }

    #[test]
    fn dedup_variant_ignores_duplicate_delivery() {
        let m = RestoreModel::standard();
        let mut s = m.initial();
        s = m.apply(&s, &Step::Scatter(0));
        s = m.apply(&s, &Step::DeliverCopy(0));
        s = m.apply(&s, &Step::Deliver(0));
        assert_eq!(m.violation(&s), None, "dedup must absorb the duplicate");
    }

    #[test]
    fn transfer_model_quiesces_on_the_happy_path() {
        let m = TransferModel::standard();
        let mut s = m.initial();
        while !m.is_accepting(&s) {
            let acts = m.actions(&s);
            let a = acts
                .iter()
                .find(|a| matches!(a, TStep::Offer(_) | TStep::Deliver(_)))
                .expect("happy path always has an offer or deliver");
            s = m.apply(&s, a);
            assert_eq!(m.violation(&s), None, "happy path must stay clean");
        }
        assert_eq!(s.sender_holding.len(), 1, "unit 3 stays at the sender");
        assert_eq!(s.receivers[0].holding.len(), 3);
    }

    #[test]
    fn transfer_model_eviction_reowns_in_flight_units() {
        let m = TransferModel::standard();
        let mut s = m.initial();
        s = m.apply(&s, &TStep::Offer(0));
        // The receiver crashes with the transfer still on the wire.
        s = m.apply(&s, &TStep::Evict(0));
        assert_eq!(m.violation(&s), None);
        assert_eq!(
            s.sender_holding.len(),
            4,
            "sender re-owns the in-flight units"
        );
        // Offer 1 is refused locally; the stale transfer on the wire is
        // discarded at the dead node. No unit is lost or duplicated.
        s = m.apply(&s, &TStep::Offer(1));
        s = m.apply(&s, &TStep::Deliver(0));
        assert_eq!(m.violation(&s), None);
        assert!(m.is_accepting(&s));
    }

    #[test]
    fn broken_transfer_variant_double_applies_on_duplicate_delivery() {
        let m = TransferModel::broken_no_dedup();
        let mut s = m.initial();
        s = m.apply(&s, &TStep::Offer(0));
        s = m.apply(&s, &TStep::DeliverCopy(0));
        assert_eq!(m.violation(&s), None);
        s = m.apply(&s, &TStep::Deliver(0));
        let v = m.violation(&s).expect("duplicate apply must be detected");
        assert!(v.contains("duplicate work unit"), "{v}");
    }

    #[test]
    fn election_single_candidate_wins_cleanly() {
        let m = ElectionModel::standard();
        let mut s = m.initial();
        s = m.apply(&s, &EStep::Stand(0)); // freshest deputy stands first
        while let Some(i) = s
            .wire
            .iter()
            .position(|w| matches!(w, EWire::Candidacy { .. }))
        {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        while let Some(i) = s.wire.iter().position(|w| matches!(w, EWire::Vote { .. })) {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        assert!(m.actions(&s).contains(&EStep::Win(0)), "quorum reached");
        s = m.apply(&s, &EStep::Win(0));
        assert_eq!(m.violation(&s), None);
        assert_eq!(s.promoted, vec![(1, 0)]);
    }

    #[test]
    fn election_one_vote_per_term_blocks_the_second_winner() {
        let m = ElectionModel::standard();
        let mut s = m.initial();
        // Deputies 0 and 1 both stand in term 1 (neither has heard the
        // other), and deputy 2 sees both candidacies.
        s = m.apply(&s, &EStep::Stand(0));
        s = m.apply(&s, &EStep::Stand(1));
        let to2: Vec<usize> = (0..s.wire.len())
            .filter(|&i| matches!(s.wire[i], EWire::Candidacy { to: 2, .. }))
            .collect();
        assert_eq!(to2.len(), 2);
        // Deliver both candidacies to deputy 2 (highest index first so the
        // removal indices stay valid): only ONE vote leaves.
        s = m.apply(&s, &EStep::Deliver(to2[1]));
        s = m.apply(&s, &EStep::Deliver(to2[0]));
        let votes = s
            .wire
            .iter()
            .filter(|w| matches!(w, EWire::Vote { voter: 2, .. }))
            .count();
        assert_eq!(votes, 1, "term 1 is spent after the first grant");
    }

    #[test]
    fn broken_election_variant_promotes_two_masters_in_one_term() {
        let m = ElectionModel::broken_split_brain();
        let mut s = m.initial();
        s = m.apply(&s, &EStep::Stand(0));
        s = m.apply(&s, &EStep::Stand(1));
        // The forgetful voter (deputy 2) grants term 1 twice.
        while let Some(i) = s
            .wire
            .iter()
            .position(|w| matches!(w, EWire::Candidacy { to: 2, .. }))
        {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        while let Some(i) = s.wire.iter().position(|w| matches!(w, EWire::Vote { .. })) {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        s = m.apply(&s, &EStep::Win(0));
        assert_eq!(m.violation(&s), None, "one winner is still legal");
        s = m.apply(&s, &EStep::Win(1));
        let v = m.violation(&s).expect("split brain must be detected");
        assert!(v.contains("split brain"), "{v}");
    }

    #[test]
    fn fresh_blind_variant_elects_a_stale_winner() {
        let m = ElectionModel::broken_fresh_blind();
        let mut s = m.initial();
        // The stalest deputy stands; without the freshness guard the
        // freshest deputy still votes for it.
        s = m.apply(&s, &EStep::Stand(2));
        while let Some(i) = s
            .wire
            .iter()
            .position(|w| matches!(w, EWire::Candidacy { .. }))
        {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        while let Some(i) = s.wire.iter().position(|w| matches!(w, EWire::Vote { .. })) {
            s = m.apply(&s, &EStep::Deliver(i));
        }
        s = m.apply(&s, &EStep::Win(2));
        let v = m.violation(&s).expect("stale winner must be detected");
        assert!(v.contains("stale replica"), "{v}");
    }

    #[test]
    fn election_vote_rule_matches_production_deputy_state() {
        use crate::error::FaultToleranceConfig;
        use crate::session::replica::DeputyState;
        use dlb_sim::SimTime;

        // The model's grant/refuse decision must agree with
        // `DeputyState::on_candidacy` case by case. Model deputy 0 holds
        // freshness 2 (ElectionModel::standard); give the production deputy
        // the same effective freshness via its replica watermark.
        let tol = FaultToleranceConfig::default();
        let mut prod = DeputyState::new(0, 3, 4, false, SimTime::ZERO, &tol);
        let mut r = prod.replica.clone();
        r.invocation = 2;
        prod.absorb(r, SimTime::ZERO);

        let m = ElectionModel::standard();
        let cases = [
            (1u64, 1usize, 1u64, false), // staler candidate: refuse
            (1, 1, 2, true),             // tie: grant
            (1, 2, 9, false),            // term spent: refuse
            (2, 2, 2, true),             // new term: grant
        ];
        let mut s = m.initial();
        for (term, candidate, fresh, expect_grant) in cases {
            let granted = !prod.on_candidacy(term, candidate, fresh).is_empty();
            assert_eq!(granted, expect_grant, "production at term {term}");
            let before = s
                .wire
                .iter()
                .filter(|w| matches!(w, EWire::Vote { .. }))
                .count();
            insert_unique_e(
                &mut s.wire,
                EWire::Candidacy {
                    to: 0,
                    term,
                    candidate,
                    fresh,
                },
            );
            let at = s
                .wire
                .iter()
                .position(|w| matches!(w, EWire::Candidacy { to: 0, .. }))
                .unwrap();
            s = m.apply(&s, &EStep::Deliver(at));
            let after = s
                .wire
                .iter()
                .filter(|w| matches!(w, EWire::Vote { .. }))
                .count();
            assert_eq!(after > before, expect_grant, "model at term {term}");
        }
    }

    // -- symmetry + reduction soundness -------------------------------------

    use dlb_sim::{explore, explore_reduced, Pcg32, ReduceConfig};

    fn shuffle(rng: &mut Pcg32, v: &mut [usize]) {
        for i in (1..v.len()).rev() {
            let j = rng.gen_index(0, i + 1);
            v.swap(i, j);
        }
    }

    /// Random admissible relabeling: an independent shuffle of each class.
    fn random_sigma(rng: &mut Pcg32, n: usize, classes: &[Vec<usize>]) -> Vec<usize> {
        let mut sigma: Vec<usize> = (0..n).collect();
        for class in classes {
            let mut perm = class.clone();
            shuffle(rng, &mut perm);
            for (i, &d) in class.iter().enumerate() {
                sigma[d] = perm[i];
            }
        }
        sigma
    }

    #[test]
    fn restore_canonical_is_permutation_invariant() {
        let m = RestoreModel::wide(3);
        let mut rng = Pcg32::with_stream(0xD1B, 1);
        for walk in 0..20 {
            let mut s = m.initial();
            for _ in 0..40 {
                let sigma = random_sigma(&mut rng, m.survivors, &m.classes());
                let permuted = m.permute(&s, &sigma);
                assert_eq!(
                    m.canonical(&s),
                    m.canonical(&permuted),
                    "walk {walk}: canonical must erase relabeling {sigma:?}"
                );
                let acts = m.actions(&s);
                if acts.is_empty() {
                    break;
                }
                let a = acts[rng.gen_index(0, acts.len())].clone();
                s = m.apply(&s, &a);
            }
        }
    }

    #[test]
    fn transfer_canonical_is_permutation_invariant() {
        let m = TransferModel::wide(3);
        let mut rng = Pcg32::with_stream(0xD1B, 2);
        for walk in 0..20 {
            let mut s = m.initial();
            for _ in 0..40 {
                let sigma = random_sigma(&mut rng, m.receivers, &m.classes(&s));
                let permuted = m.permute(&s, &sigma);
                assert_eq!(
                    m.canonical(&s),
                    m.canonical(&permuted),
                    "walk {walk}: canonical must erase relabeling {sigma:?}"
                );
                let acts = m.actions(&s);
                if acts.is_empty() {
                    break;
                }
                let a = acts[rng.gen_index(0, acts.len())].clone();
                s = m.apply(&s, &a);
            }
        }
    }

    #[test]
    fn election_canonical_is_sound_up_to_orbit() {
        // Election state holds cross-deputy references (vote sets, message
        // addressing), so the signature sort is a heuristic: canonical forms
        // of two relabelings may differ, but must stay in the same orbit,
        // and canonicalization must be idempotent. At three deputies the
        // orbit is small enough to check by enumerating all six relabelings.
        let m = ElectionModel::wide(3);
        let perms: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        let mut rng = Pcg32::with_stream(0xD1B, 3);
        for walk in 0..20 {
            let mut s = m.initial();
            for _ in 0..40 {
                let sigma = &perms[rng.gen_index(0, perms.len())];
                let ca = m.canonical(&s);
                let cb = m.canonical(&m.permute(&s, sigma));
                assert!(
                    perms.iter().any(|p| m.permute(&ca, p) == cb),
                    "walk {walk}: canonical left the orbit under {sigma:?}"
                );
                assert_eq!(m.canonical(&ca), ca, "canonical must be idempotent");
                let acts = m.actions(&s);
                if acts.is_empty() {
                    break;
                }
                let a = acts[rng.gen_index(0, acts.len())].clone();
                s = m.apply(&s, &a);
            }
        }
    }

    /// The violation keyword `dlb-analyze` keys its diagnostic codes on.
    fn code_of(detail: &str) -> &'static str {
        for k in [
            "duplicate apply",
            "duplicate work unit",
            "lost work unit",
            "lost work",
            "split brain",
            "stale replica",
            "double incarnation",
            "stale snapshot",
        ] {
            if detail.contains(k) {
                return k;
            }
        }
        panic!("unrecognized violation detail: {detail}");
    }

    /// Reduction soundness: reduced and full exploration must reach the
    /// same verdict (and the same violation class) on every configuration
    /// small enough to exhaust both ways.
    fn assert_reduced_agrees<S>(sys: &S)
    where
        S: Symmetric + Ample,
        S::State: std::hash::Hash,
    {
        let full = explore(sys, 64, 2_000_000);
        let (red, _) = explore_reduced(
            sys,
            &ReduceConfig {
                max_depth: 64,
                max_states: 2_000_000,
                symmetry: true,
                ample: true,
                fingerprint: false,
            },
        );
        assert!(
            !full.truncated && !red.truncated,
            "agreement needs both runs exhaustive"
        );
        assert_eq!(full.verdict, red.verdict, "verdicts diverged");
        // State counts are only comparable when both searches ran to
        // completion — a violation stops each one at a different point.
        if full.verdict == dlb_sim::Verdict::Ok {
            assert!(
                red.states <= full.states,
                "reduction must not inflate the space ({} > {})",
                red.states,
                full.states
            );
        }
        match (&full.trace, &red.trace) {
            (Some(a), Some(b)) => assert_eq!(code_of(&a.detail), code_of(&b.detail)),
            (None, None) => {}
            _ => panic!("counterexample presence diverged"),
        }
    }

    #[test]
    fn reduced_exploration_agrees_with_full_restore() {
        assert_reduced_agrees(&RestoreModel::standard());
        assert_reduced_agrees(&RestoreModel::broken_no_dedup());
        assert_reduced_agrees(&RestoreModel::wide(2));
    }

    #[test]
    fn reduced_exploration_agrees_with_full_transfer() {
        assert_reduced_agrees(&TransferModel::standard());
        assert_reduced_agrees(&TransferModel::broken_no_dedup());
        assert_reduced_agrees(&TransferModel::wide(2));
    }

    #[test]
    fn reduced_exploration_agrees_with_full_election() {
        assert_reduced_agrees(&ElectionModel::standard());
        assert_reduced_agrees(&ElectionModel::broken_split_brain());
        assert_reduced_agrees(&ElectionModel::broken_fresh_blind());
        assert_reduced_agrees(&ElectionModel::wide(2));
    }

    /// Drive the join model through one eviction + rejoin by hand,
    /// returning the state right after the new life was admitted, with the
    /// old life's heartbeat still in flight.
    fn evict_and_rejoin_with_zombie_alive(m: &JoinModel) -> JoinState {
        let mut s = m.initial();
        s = m.apply(&s, &JStep::Suspect(0)); // wire: Evict{0,1}
        s = m.apply(&s, &JStep::Heartbeat(0)); // wire: + Alive{0,1} (zombie-to-be)
        let evict = s
            .wire
            .iter()
            .position(|w| matches!(w, JWire::Evict { .. }))
            .unwrap();
        s = m.apply(&s, &JStep::Deliver(evict)); // life 2 joins
        let join = s
            .wire
            .iter()
            .position(|w| matches!(w, JWire::Join { .. }))
            .unwrap();
        s = m.apply(&s, &JStep::Deliver(join)); // admitted: epoch 1
        let admit = s
            .wire
            .iter()
            .position(|w| matches!(w, JWire::Admit { .. }))
            .unwrap();
        s = m.apply(&s, &JStep::Deliver(admit)); // member at epoch 1
        assert!(s.master[0].alive);
        assert_eq!(s.master[0].incarnation, 2);
        assert_eq!(s.master[0].join_epoch, 1);
        assert_eq!(s.slaves[0].phase, JoinPhase::Member { epoch: 1 });
        s
    }

    #[test]
    fn join_model_quiesces_after_evict_and_rejoin() {
        let m = JoinModel::standard();
        let mut s = evict_and_rejoin_with_zombie_alive(&m);
        // Drain the wire (the zombie Alive and the fresh Ack) FIFO-style.
        while !s.wire.is_empty() {
            s = m.apply(&s, &JStep::Deliver(0));
            assert_eq!(m.violation(&s), None, "fenced model must stay clean");
        }
        assert!(m.is_accepting(&s), "settled after rejoin: {s:?}");
        assert_eq!(s.master[0].acked, 1);
    }

    #[test]
    fn zombie_heartbeat_is_fenced_after_rejoin() {
        let m = JoinModel::standard();
        let mut s = evict_and_rejoin_with_zombie_alive(&m);
        let zombie = s
            .wire
            .iter()
            .position(|w| matches!(w, JWire::Alive { inc: 1, .. }))
            .unwrap();
        s = m.apply(&s, &JStep::Deliver(zombie));
        assert_eq!(m.violation(&s), None, "incarnation fence must hold");
    }

    #[test]
    fn broken_variant_credits_the_zombie_heartbeat() {
        let m = JoinModel::broken_double_incarnation();
        let mut s = evict_and_rejoin_with_zombie_alive(&m);
        let zombie = s
            .wire
            .iter()
            .position(|w| matches!(w, JWire::Alive { inc: 1, .. }))
            .unwrap();
        s = m.apply(&s, &JStep::Deliver(zombie));
        let v = m.violation(&s).expect("zombie credit must be detected");
        assert!(v.contains("double incarnation"), "{v}");
    }

    #[test]
    fn stale_checkpoint_ack_is_floored_after_readmission() {
        // Two admission cycles: the first life's Ack (epoch 1) is still in
        // flight when the second eviction and readmission raise the floor
        // to epoch 2.
        for (model, expect_violation) in [
            (JoinModel::standard(), false),
            (JoinModel::broken_stale_snapshot(), true),
        ] {
            let m = model;
            let mut s = evict_and_rejoin_with_zombie_alive(&m);
            // Don't deliver the epoch-1 Ack; evict life 2 and admit life 3.
            s = m.apply(&s, &JStep::Suspect(0));
            let evict = s
                .wire
                .iter()
                .position(|w| matches!(w, JWire::Evict { inc: 2, .. }))
                .unwrap();
            s = m.apply(&s, &JStep::Deliver(evict));
            let join = s
                .wire
                .iter()
                .position(|w| matches!(w, JWire::Join { inc: 3, .. }))
                .unwrap();
            s = m.apply(&s, &JStep::Deliver(join));
            assert_eq!(s.master[0].join_epoch, 2);
            let stale = s
                .wire
                .iter()
                .position(|w| matches!(w, JWire::Ack { epoch: 1, .. }))
                .unwrap();
            s = m.apply(&s, &JStep::Deliver(stale));
            match m.violation(&s) {
                Some(v) => {
                    assert!(expect_violation, "fenced model flagged: {v}");
                    assert!(v.contains("stale snapshot"), "{v}");
                }
                None => {
                    assert!(!expect_violation, "broken model must flag the stale ack");
                    assert_eq!(s.master[0].acked, 0, "floored ack must not be credited");
                }
            }
        }
    }

    #[test]
    fn self_healing_evict_reply_recovers_a_lost_verdict() {
        // The Evict is dropped (partition): the slave's heartbeat must
        // regenerate the verdict, and the slot still rejoins and settles.
        let m = JoinModel::standard();
        let mut s = m.initial();
        s = m.apply(&s, &JStep::Suspect(0));
        s = m.apply(&s, &JStep::Drop(0)); // the Evict is lost
        assert!(s.wire.is_empty());
        s = m.apply(&s, &JStep::Heartbeat(0)); // slave still thinks it is a member
        s = m.apply(&s, &JStep::Deliver(0)); // master re-replies Evict
        assert!(
            s.wire
                .iter()
                .any(|w| matches!(w, JWire::Evict { inc: 1, .. })),
            "self-healing reply must regenerate the verdict: {:?}",
            s.wire
        );
        while !s.wire.is_empty() {
            s = m.apply(&s, &JStep::Deliver(0));
            assert_eq!(m.violation(&s), None);
        }
        assert!(m.is_accepting(&s), "must settle after the heal: {s:?}");
        assert_eq!(s.slaves[0].life, 2);
    }

    #[test]
    fn rejoin_budget_exhaustion_parks_the_slot_dead() {
        let m = JoinModel {
            max_rejoins: 0,
            ..JoinModel::standard()
        };
        let mut s = m.initial();
        s = m.apply(&s, &JStep::Suspect(0));
        s = m.apply(&s, &JStep::Deliver(0));
        assert_eq!(s.slaves[0].phase, JoinPhase::Dead);
        assert!(
            m.slot_settled(&s, 0),
            "a dead slot with a dead master view is settled"
        );
    }

    #[test]
    fn join_permute_roundtrips_and_canonical_is_stable() {
        let m = JoinModel::wide(3);
        let mut s = m.initial();
        s = m.apply(&s, &JStep::Suspect(2));
        s = m.apply(&s, &JStep::Heartbeat(2));
        // A 3-cycle and its inverse round-trip.
        let sigma = vec![1, 2, 0];
        let inv = vec![2, 0, 1];
        let p = m.permute(&s, &sigma);
        assert_eq!(m.permute(&p, &inv), s);
        // Canonicalization is permutation-invariant.
        assert_eq!(m.canonical(&s), m.canonical(&p));
    }

    #[test]
    fn reduced_exploration_agrees_with_full_join() {
        assert_reduced_agrees(&JoinModel::standard());
        assert_reduced_agrees(&JoinModel::broken_double_incarnation());
        assert_reduced_agrees(&JoinModel::broken_stale_snapshot());
        assert_reduced_agrees(&JoinModel::wide(3));
    }

    #[test]
    fn reduced_exploration_keeps_the_resend_race() {
        // The duplicate-apply race that needs no fault budget at all:
        // deliver a restore, re-send it while the acknowledgement is still
        // in flight, deliver the stale copy. An over-eager "deliver acks
        // first" reduction would prune exactly this interleaving — the
        // ample sets must keep local re-send actions expanded.
        let m = RestoreModel {
            max_drops: 0,
            max_dups: 0,
            ..RestoreModel::broken_no_dedup()
        };
        assert_reduced_agrees(&m);
        let full = explore(&m, 64, 2_000_000);
        assert_eq!(full.verdict, dlb_sim::Verdict::Violation);
    }
}
