//! Deputy-side master failover: replica absorption, master-silence watch,
//! and the epoch-fenced election state machine.
//!
//! The lowest-ranked `deputies` slaves each hold a [`DeputyState`]: a copy
//! of the master's control-plane replica ([`crate::msg::ReplicaMsg`]), a
//! one-row [`Membership`] table watching the *master's* liveness with the
//! same two-clock rules slaves are watched by, and the election bookkeeping
//! (terms, one vote per term, quorum counting).
//!
//! The state machine is pure: every input returns the messages to send as
//! `(slave_index, Msg)` pairs and never touches an actor context, so the
//! whole election is unit-testable without a simulator.
//!
//! ## Election rules
//!
//! * A deputy **stands** when the master has shown no sign of life (neither
//!   protocol traffic nor [`crate::msg::Msg::MasterPing`]) for
//!   `master_suspicion + rank × election_stagger`. The stagger makes the
//!   lowest live rank stand first, so the common case is a one-candidate
//!   election.
//! * Standing picks the term `term_seen + 1`, votes for itself, and
//!   broadcasts [`crate::msg::Msg::Candidacy`] to the other deputies.
//! * A deputy **grants** a vote iff the candidacy's term is newer than any
//!   term it already voted in (one vote per term — this is what makes two
//!   winners in one term impossible) *and* the candidate's replica is at
//!   least as fresh as its own (the newest-replica rule; ties go to the
//!   first candidacy to arrive, which the stagger biases toward the lowest
//!   rank).
//! * A candidate **wins** on a majority of the full deputy set (dead
//!   deputies count against the quorum, never for it). With one deputy the
//!   self-vote is the majority and the stand wins instantly.
//! * A candidacy that stalls (lost messages, dead voters) is retried after
//!   one more suspicion window *plus the rank stagger*, in a fresh term.
//!   Re-applying the stagger on every retry keeps the ranks separated even
//!   if a round dueled (two deputies standing in the same heartbeat slice,
//!   each refusing the other because its own vote for the term was spent) —
//!   without it, dueling candidates stay phase-locked forever. For the same
//!   reason the stagger must be coarser than the heartbeat slice that
//!   drives the election timer (see
//!   [`FaultToleranceConfig::election_stagger`]).
//!
//! Exactly one winner can reach quorum in a given term; distinct terms may
//! each have a winner, and [`crate::msg::Msg::Promoted`] fencing resolves
//! that: the higher term supersedes the lower
//! ([`crate::error::ProtocolError::Superseded`]).

use crate::error::FaultToleranceConfig;
use crate::msg::{Msg, ReplicaMsg};
use crate::recovery::RecoveryStats;
use crate::session::membership::Membership;
use dlb_sim::SimTime;
use std::collections::BTreeSet;

/// Everything the election winner needs to take over as master: carried out
/// of the engine unwind by `SlaveCommon::takeover`.
#[derive(Clone, Debug)]
pub struct TakeoverSeed {
    /// The term this deputy won; fences the takeover epoch.
    pub term: u64,
    /// The newest control-plane replica it holds.
    pub replica: ReplicaMsg,
    /// When it last heard the old master (either clock) — the start of the
    /// failover blackout, for `takeover_latency`.
    pub last_heard: SimTime,
}

/// The deputy role riding alongside a slave: replica storage, master watch,
/// and election state.
#[derive(Clone, Debug)]
pub struct DeputyState {
    /// This deputy's rank == its slave index (deputies are slaves
    /// `0..n_deputies`).
    pub idx: usize,
    /// Size of the full deputy set (quorum denominator).
    pub n_deputies: usize,
    /// Whether the engine banks checkpoints: decides how replica freshness
    /// is measured (checkpointed → held snapshot's invocation; independent
    /// → the replica's invocation watermark).
    pub checkpointed: bool,
    /// One-row liveness table watching the master (index 0 = the master),
    /// under the same two-clock rules the master applies to slaves.
    pub watch: Membership,
    /// Newest control-plane replica received (term-gated).
    pub replica: ReplicaMsg,
    /// Highest term seen anywhere (candidacies, votes, pings, promotions).
    pub term_seen: u64,
    /// Highest term this deputy has voted in (including for itself).
    voted_in: u64,
    /// `Some(term)` while standing as a candidate in `term`.
    standing: Option<u64>,
    /// Voters collected for the current candidacy (includes self).
    votes: BTreeSet<usize>,
    /// Earliest instant a (re-)stand is allowed: rate-limits candidacies.
    next_stand_ok: SimTime,
}

impl DeputyState {
    pub fn new(
        idx: usize,
        n_deputies: usize,
        n_slaves: usize,
        checkpointed: bool,
        now: SimTime,
        tol: &FaultToleranceConfig,
    ) -> DeputyState {
        DeputyState {
            idx,
            n_deputies,
            checkpointed,
            watch: Membership::new(1, now, tol.nudge),
            replica: ReplicaMsg {
                term: 0,
                epoch: 0,
                invocation: 0,
                ckpt_stride: 1,
                alive: vec![true; n_slaves],
                fresh: 0,
                snapshot: None,
                best_banked: 0,
                recovery: RecoveryStats::default(),
                incarnations: vec![0; n_slaves],
            },
            term_seen: 0,
            voted_in: 0,
            standing: None,
            votes: BTreeSet::new(),
            next_stand_ok: now + tol.master_suspicion,
        }
    }

    /// Votes needed to win: a majority of the *full* deputy set.
    pub fn quorum(&self) -> usize {
        self.n_deputies / 2 + 1
    }

    /// Record protocol traffic from the master (replica, rollback, any
    /// control message): defers the election trigger.
    pub fn master_heard(&mut self, now: SimTime) {
        self.watch.heard(0, now);
    }

    /// Record a bare [`crate::msg::Msg::MasterPing`]: defers the election
    /// trigger on the ping clock only, mirroring how slave `Alive` pings
    /// defer suspicion without counting as protocol progress.
    pub fn master_ping(&mut self, term: u64, now: SimTime) {
        self.watch.ping(0, now);
        self.term_seen = self.term_seen.max(term);
    }

    /// Absorb a control-plane replica. Stale terms (an old master still
    /// flushing) are ignored; within the current term the newest message
    /// wins, but a held snapshot is never discarded just because a newer
    /// replica chose not to re-ship it.
    pub fn absorb(&mut self, r: ReplicaMsg, now: SimTime) {
        if r.term < self.replica.term {
            return;
        }
        self.term_seen = self.term_seen.max(r.term);
        self.master_heard(now);
        let held = self.replica.snapshot.take();
        let keep_held = match (&r.snapshot, &held) {
            (None, Some(_)) => true,
            (Some((new_inv, _)), Some((held_inv, _))) => held_inv > new_inv,
            _ => false,
        };
        self.replica = r;
        if keep_held {
            self.replica.snapshot = held;
        }
    }

    /// How fresh this deputy's replica is, on the scale the election
    /// compares: checkpointed engines can only restart from a snapshot they
    /// actually hold; the independent engine recomputes from the invocation
    /// watermark alone.
    pub fn effective_fresh(&self) -> u64 {
        if self.checkpointed {
            self.replica
                .snapshot
                .as_ref()
                .map(|(inv, _)| *inv)
                .unwrap_or(0)
        } else {
            self.replica.invocation
        }
    }

    /// Timer check: stand for election when the master has been silent past
    /// this rank's staggered threshold. Returns candidacy broadcasts (empty
    /// when not standing). Call [`Self::won`] afterwards — with one deputy
    /// the self-vote wins immediately.
    pub fn tick(&mut self, now: SimTime, tol: &FaultToleranceConfig) -> Vec<(usize, Msg)> {
        let threshold = tol.master_suspicion + tol.election_stagger * (self.idx as u64);
        if self.watch.silent_for(0, now) < threshold || now < self.next_stand_ok {
            return Vec::new();
        }
        let term = self.term_seen + 1;
        self.term_seen = term;
        self.voted_in = term;
        self.standing = Some(term);
        self.votes = BTreeSet::from([self.idx]);
        // The retry backoff re-applies the rank stagger: if a round ever
        // duels (two candidacies crossing on the wire, each refused because
        // the voter spent its term on itself), the retries separate by rank
        // again instead of staying phase-locked in dueling candidacies.
        self.next_stand_ok = now + tol.master_suspicion + tol.election_stagger * (self.idx as u64);
        let fresh = self.effective_fresh();
        (0..self.n_deputies)
            .filter(|&d| d != self.idx)
            .map(|d| {
                (
                    d,
                    Msg::Candidacy {
                        term,
                        candidate: self.idx,
                        fresh,
                    },
                )
            })
            .collect()
    }

    /// A peer deputy stood. Grant a vote iff the term is newer than any we
    /// voted in and the candidate's replica is at least as fresh as ours.
    pub fn on_candidacy(&mut self, term: u64, candidate: usize, fresh: u64) -> Vec<(usize, Msg)> {
        self.term_seen = self.term_seen.max(term);
        if candidate == self.idx || term <= self.voted_in || fresh < self.effective_fresh() {
            return Vec::new();
        }
        self.voted_in = term;
        vec![(
            candidate,
            Msg::Vote {
                term,
                voter: self.idx,
                candidate,
            },
        )]
    }

    /// A vote arrived. Counted only while standing in exactly that term for
    /// exactly this deputy (late votes for abandoned candidacies are inert).
    pub fn on_vote(&mut self, term: u64, voter: usize, candidate: usize) {
        self.term_seen = self.term_seen.max(term);
        if self.standing == Some(term) && candidate == self.idx {
            self.votes.insert(voter);
        }
    }

    /// `Some(term)` when the current candidacy has reached quorum.
    pub fn won(&self) -> Option<u64> {
        self.standing.filter(|_| self.votes.len() >= self.quorum())
    }

    /// A master was promoted in `term`. Stand down any candidacy it
    /// outranks and start watching the new master's clocks from now.
    pub fn on_promoted(&mut self, term: u64, now: SimTime) {
        self.term_seen = self.term_seen.max(term);
        if self.standing.is_some_and(|t| t <= term) {
            self.standing = None;
            self.votes.clear();
        }
        self.replica.term = self.replica.term.max(term);
        self.watch.heard(0, now);
    }

    /// Package the takeover seed after winning `term`.
    pub fn seed(&self, term: u64) -> TakeoverSeed {
        TakeoverSeed {
            term,
            replica: self.replica.clone(),
            last_heard: self.watch.last_heard[0].max(self.watch.last_ping[0]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_sim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn tol() -> FaultToleranceConfig {
        FaultToleranceConfig::default() // suspicion 8 s, stagger 2 s
    }

    fn deputy(idx: usize, n: usize, checkpointed: bool) -> DeputyState {
        DeputyState::new(idx, n, 16, checkpointed, t(0), &tol())
    }

    fn replica(term: u64, invocation: u64, snapshot: Option<u64>) -> ReplicaMsg {
        ReplicaMsg {
            term,
            epoch: 0,
            invocation,
            ckpt_stride: 1,
            alive: vec![true; 16],
            fresh: snapshot.unwrap_or(invocation),
            snapshot: snapshot.map(|inv| (inv, vec![(0, vec![vec![1.0]])])),
            best_banked: snapshot.unwrap_or(0),
            recovery: RecoveryStats::default(),
            incarnations: vec![0; 16],
        }
    }

    #[test]
    fn stagger_orders_candidacies_by_rank() {
        let mut d0 = deputy(0, 3, false);
        let mut d1 = deputy(1, 3, false);
        // Rank 0 stands right at the suspicion threshold…
        assert!(d0.tick(t(7_999), &tol()).is_empty());
        let msgs = d0.tick(t(8_000), &tol());
        assert_eq!(msgs.len(), 2, "candidacy goes to the other two deputies");
        assert!(matches!(
            msgs[0],
            (
                1,
                Msg::Candidacy {
                    term: 1,
                    candidate: 0,
                    ..
                }
            )
        ));
        // …rank 1 must wait one extra stagger.
        assert!(d1.tick(t(9_999), &tol()).is_empty());
        assert!(!d1.tick(t(10_000), &tol()).is_empty());
    }

    #[test]
    fn master_pings_defer_the_stand_but_not_forever() {
        let mut d = deputy(0, 3, false);
        d.master_ping(0, t(6_000));
        assert!(d.tick(t(8_000), &tol()).is_empty(), "ping reset the clock");
        assert!(
            !d.tick(t(14_000), &tol()).is_empty(),
            "silence since the ping"
        );
    }

    #[test]
    fn one_vote_per_term_and_staleness_guard() {
        let mut d = deputy(2, 3, false);
        d.absorb(replica(0, 5, None), t(100));
        // A candidate with a staler replica is refused…
        assert!(d.on_candidacy(1, 0, 4).is_empty());
        // …a tie is granted (lowest rank stands first, so ties go to it)…
        let v = d.on_candidacy(1, 0, 5);
        assert!(matches!(
            v[0],
            (
                0,
                Msg::Vote {
                    term: 1,
                    voter: 2,
                    candidate: 0
                }
            )
        ));
        // …and the term is now spent, even for a fresher rival.
        assert!(d.on_candidacy(1, 1, 9).is_empty());
        assert!(!d.on_candidacy(2, 1, 9).is_empty(), "new term, new vote");
    }

    #[test]
    fn standing_consumes_own_vote_for_the_term() {
        let mut d = deputy(0, 3, false);
        let msgs = d.tick(t(8_000), &tol());
        assert_eq!(msgs.len(), 2);
        assert!(
            d.on_candidacy(1, 1, u64::MAX).is_empty(),
            "already voted for self"
        );
        assert!(!d.on_candidacy(2, 1, u64::MAX).is_empty());
    }

    #[test]
    fn quorum_counts_the_full_deputy_set() {
        let mut d = deputy(0, 3, false);
        d.tick(t(8_000), &tol());
        assert_eq!(d.won(), None, "self-vote alone is 1 of 3");
        d.on_vote(1, 5, 0); // vote for someone else's term? no: term 1, us
        assert_eq!(d.won(), Some(1), "2 of 3 is a majority");
        // A single-deputy set wins on the stand itself.
        let mut solo = deputy(0, 1, false);
        solo.tick(t(8_000), &tol());
        assert_eq!(solo.won(), Some(1));
    }

    #[test]
    fn late_votes_for_other_terms_or_candidates_are_inert() {
        let mut d = deputy(0, 3, false);
        d.tick(t(8_000), &tol());
        d.on_vote(2, 1, 0); // wrong term
        d.on_vote(1, 1, 2); // wrong candidate
        assert_eq!(d.won(), None);
    }

    #[test]
    fn dueling_retry_backoff_restores_rank_order() {
        let cfg = tol();
        let mut d1 = deputy(1, 3, false);
        let mut d2 = deputy(2, 3, false);
        // Rank 0 is dead and the survivors' timer wakes aligned: both stand
        // in the same heartbeat slice, candidacies cross on the wire, and
        // each refuses the other (its own vote for the term is spent).
        assert!(!d1.tick(t(12_000), &cfg).is_empty());
        assert!(!d2.tick(t(12_000), &cfg).is_empty());
        assert!(d1.on_candidacy(1, 2, 0).is_empty(), "vote spent on self");
        assert!(d2.on_candidacy(1, 1, 0).is_empty(), "vote spent on self");
        // The retry backoff re-applies the stagger: rank 1 re-stands a full
        // stagger before rank 2 is allowed to, so its fresh-term candidacy
        // lands while rank 2 is still rate-limited — and collects the vote.
        let retry = t(12_000) + cfg.master_suspicion + cfg.election_stagger;
        assert!(!d1.tick(retry, &cfg).is_empty(), "rank 1 re-stands first");
        assert!(d2.tick(retry, &cfg).is_empty(), "rank 2 still rate-limited");
        let v = d2.on_candidacy(2, 1, 0);
        assert!(matches!(
            v[0],
            (
                1,
                Msg::Vote {
                    term: 2,
                    voter: 2,
                    candidate: 1
                }
            )
        ));
        d1.on_vote(2, 2, 1);
        assert_eq!(d1.won(), Some(2), "the duel breaks on the first retry");
    }

    #[test]
    fn restand_is_rate_limited_and_bumps_the_term() {
        let cfg = tol();
        let mut d = deputy(0, 3, false);
        assert!(!d.tick(t(8_000), &cfg).is_empty());
        assert!(d.tick(t(9_000), &cfg).is_empty(), "too soon to re-stand");
        let again = d.tick(t(16_000), &cfg);
        assert!(matches!(again[0].1, Msg::Candidacy { term: 2, .. }));
    }

    #[test]
    fn absorb_is_term_gated_and_keeps_the_newest_snapshot() {
        let mut d = deputy(1, 3, true);
        d.absorb(replica(1, 4, Some(3)), t(100));
        assert_eq!(
            d.effective_fresh(),
            3,
            "checkpointed freshness = held snapshot"
        );
        // A newer replica without a snapshot keeps the held one…
        d.absorb(replica(1, 6, None), t(200));
        assert_eq!(d.replica.invocation, 6);
        assert_eq!(d.effective_fresh(), 3);
        // …a stale-term replica is dropped wholesale…
        d.absorb(replica(0, 9, Some(9)), t(300));
        assert_eq!(d.replica.invocation, 6);
        // …and a newer snapshot replaces the held one.
        d.absorb(replica(1, 7, Some(5)), t(400));
        assert_eq!(d.effective_fresh(), 5);
    }

    #[test]
    fn independent_freshness_is_the_invocation_watermark() {
        let mut d = deputy(1, 3, false);
        d.absorb(replica(0, 7, None), t(100));
        assert_eq!(d.effective_fresh(), 7);
    }

    #[test]
    fn promotion_stands_down_outranked_candidacies_only() {
        let cfg = tol();
        let mut d = deputy(0, 3, false);
        d.tick(t(8_000), &cfg); // standing in term 1
        d.on_promoted(1, t(8_100));
        assert_eq!(d.won(), None, "stood down");
        assert!(d.tick(t(8_200), &cfg).is_empty(), "new master is live");
        // A *lower*-term promotion does not cancel a newer candidacy.
        let mut d = deputy(0, 3, false);
        d.term_seen = 4;
        d.tick(t(8_000), &cfg); // standing in term 5
        d.on_promoted(3, t(8_001));
        d.on_vote(5, 1, 0);
        assert_eq!(d.won(), Some(5));
    }

    #[test]
    fn seed_carries_the_replica_and_blackout_start() {
        let mut d = deputy(0, 3, true);
        d.absorb(replica(0, 4, Some(4)), t(1_000));
        d.master_ping(0, t(2_000));
        let seed = d.seed(3);
        assert_eq!(seed.term, 3);
        assert_eq!(seed.replica.invocation, 4);
        assert_eq!(seed.last_heard, t(2_000), "later of the two clocks");
    }
}
