//! The checkpoint bank: globally consistent snapshots, rollback sourcing,
//! and the adaptive checkpoint cadence.
//!
//! Checkpointed engines snapshot their units at every `stride`-th barrier;
//! the master banks partial snapshots per invocation and promotes one to
//! *best* once every unit id is covered. A rollback restarts the run from
//! the best snapshot (or from the initial state when none is complete yet).
//! Snapshots carry **no epoch**: unit values at a given invocation are
//! deterministic, so a snapshot banked before an eviction is still valid
//! after it — this is also what makes speculation from the bank sound.

use crate::msg::UnitData;
use dlb_sim::SimDuration;
use std::collections::BTreeMap;

/// Master-side bank of checkpoint fragments, keyed by invocation.
#[derive(Clone, Debug, Default)]
pub struct CheckpointBank {
    /// Partial snapshots still being assembled: invocation → unit id → data.
    bank: BTreeMap<u64, BTreeMap<usize, UnitData>>,
    /// The newest *complete* snapshot: every unit id present.
    best: Option<(u64, BTreeMap<usize, UnitData>)>,
}

impl CheckpointBank {
    pub fn new() -> CheckpointBank {
        CheckpointBank::default()
    }

    /// True when the best complete snapshot already covers `invocation` —
    /// a fragment for it carries no new information.
    pub fn covered(&self, invocation: u64) -> bool {
        self.best.as_ref().is_some_and(|(b, _)| *b >= invocation)
    }

    /// Invocation of the best complete snapshot, if any.
    pub fn best_invocation(&self) -> Option<u64> {
        self.best.as_ref().map(|(b, _)| *b)
    }

    /// The best complete snapshot as a unit list (ids ascending), for
    /// replication to a deputy. `None` until a snapshot completes.
    pub fn best_snapshot(&self) -> Option<(u64, Vec<(usize, UnitData)>)> {
        self.best
            .as_ref()
            .map(|(inv, units)| (*inv, units.iter().map(|(&id, d)| (id, d.clone())).collect()))
    }

    /// Bank a snapshot fragment from one slave. Returns `true` exactly when
    /// this fragment completed the snapshot for `invocation` (it was
    /// promoted to best and older fragments were discarded) — the caller
    /// counts `checkpoints_banked` on `true`.
    pub fn offer(
        &mut self,
        invocation: u64,
        units: Vec<(usize, UnitData)>,
        n_units: usize,
    ) -> bool {
        if self.covered(invocation) {
            return false;
        }
        let entry = self.bank.entry(invocation).or_default();
        for (id, data) in units {
            entry.insert(id, data);
        }
        if entry.len() == n_units {
            let full = self.bank.remove(&invocation).expect("entry just filled");
            self.best = Some((invocation, full));
            self.bank.retain(|&i, _| i > invocation);
            true
        } else {
            false
        }
    }

    /// The restart point for a rollback (also the seed for speculation):
    /// the best complete snapshot, or the initial state (invocation 0) when
    /// none is complete yet. Unit ids ascend.
    pub fn rollback_snapshot(
        &self,
        n_units: usize,
        init: &dyn Fn(usize) -> UnitData,
    ) -> (u64, Vec<(usize, UnitData)>) {
        match &self.best {
            Some((inv, units)) => (*inv, units.iter().map(|(&id, d)| (id, d.clone())).collect()),
            None => (0, (0..n_units).map(|id| (id, init(id))).collect()),
        }
    }
}

/// Adaptive checkpoint cadence: how many invocations apart the slaves
/// should snapshot, given the EMA of one invocation's virtual time.
///
/// The stride is the largest `k ≤ max_skip + 1` such that a rollback's
/// expected recompute (`k × ema`) stays within `loss_budget`; at least 1
/// (a checkpoint every barrier) and exactly 1 when the adaptation is
/// disabled (`max_skip == 0`) or no EMA is known yet.
pub fn checkpoint_stride(max_skip: u64, loss_budget: SimDuration, ema_s: f64) -> u64 {
    if max_skip == 0 || ema_s <= 0.0 {
        return 1;
    }
    ((loss_budget.as_secs_f64() / ema_s).floor() as u64).clamp(1, max_skip + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: f64) -> UnitData {
        vec![vec![v]]
    }

    #[test]
    fn fragments_assemble_into_a_complete_snapshot() {
        let mut b = CheckpointBank::new();
        assert!(!b.offer(1, vec![(0, unit(0.0)), (1, unit(1.0))], 3));
        assert_eq!(b.best_invocation(), None);
        assert!(b.offer(1, vec![(2, unit(2.0))], 3), "third id completes it");
        assert_eq!(b.best_invocation(), Some(1));
        assert!(b.covered(1));
        assert!(!b.covered(2));
    }

    #[test]
    fn promotion_discards_stale_fragments_and_dups_are_inert() {
        let mut b = CheckpointBank::new();
        b.offer(1, vec![(0, unit(0.0))], 2); // stays partial forever
        b.offer(2, vec![(0, unit(0.0)), (1, unit(1.0))], 2);
        assert_eq!(b.best_invocation(), Some(2));
        // A late fragment for a covered invocation must not regress best.
        assert!(!b.offer(1, vec![(1, unit(9.0))], 2));
        assert_eq!(b.best_invocation(), Some(2));
    }

    #[test]
    fn rollback_snapshot_falls_back_to_initial_state() {
        let b = CheckpointBank::new();
        let (inv, units) = b.rollback_snapshot(2, &|id| unit(id as f64));
        assert_eq!(inv, 0);
        assert_eq!(units, vec![(0, unit(0.0)), (1, unit(1.0))]);

        let mut b = CheckpointBank::new();
        b.offer(3, vec![(1, unit(10.0)), (0, unit(20.0))], 2);
        let (inv, units) = b.rollback_snapshot(2, &|_| unreachable!());
        assert_eq!(inv, 3);
        assert_eq!(units, vec![(0, unit(20.0)), (1, unit(10.0))]);
    }

    #[test]
    fn stride_respects_budget_and_bounds() {
        let budget = SimDuration::from_secs(2);
        assert_eq!(checkpoint_stride(0, budget, 0.1), 1, "disabled");
        assert_eq!(checkpoint_stride(4, budget, 0.0), 1, "no EMA yet");
        assert_eq!(checkpoint_stride(4, budget, 10.0), 1, "restarts expensive");
        assert_eq!(checkpoint_stride(4, budget, 0.7), 2);
        assert_eq!(checkpoint_stride(4, budget, 0.1), 5, "capped at skip+1");
        assert_eq!(checkpoint_stride(2, budget, 0.1), 3);
    }
}
